//! Crash simulation and whole-system restore (Figure 5 step ❼).
//!
//! `crash` models a power failure: it consumes the machine and keeps only
//! the persistent state (the NVM device plus the typed backup stores that
//! conceptually live in its slab space). `restore` then "rolls back the
//! whole system by reviving state of the backup capability tree": it
//! replays the allocator journal, walks the backup tree from the root
//! ORoot, rebuilds every runtime object, resets per-page state according
//! to the versioning rules of §4.2/§4.3.3, re-enqueues runnable threads,
//! and finally rebuilds the allocator via mark-and-sweep over the
//! reachable set ("malloc/free operations after the last checkpoint are
//! identified and rolled back").

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls_kernel::cap::{CapGroupBody, Capability};
use treesls_kernel::ipc::{IpcConnBody, IpcMsg};
use treesls_kernel::kernel::{KernelConfig, Persistent};
use treesls_kernel::notif::{IrqNotifBody, NotifBody};
use treesls_kernel::object::{KObject, ObjType, ObjectBody};
use treesls_kernel::oroot::{BackupObject, BkThreadState, ORoot};
use treesls_kernel::pmo::{PagePtr, Pmo, PmoKind};
use treesls_kernel::program::ProgramRegistry;
use treesls_kernel::thread::{BlockedOn, ThreadBody, ThreadState};
use treesls_kernel::types::{KernelError, ObjId, OrootId, Vpn};
use treesls_kernel::vm::{VmRegion, VmSpaceBody};
use treesls_kernel::Kernel;
use treesls_nvm::{FrameId, NvmDevice, ShardedStore};
use treesls_pmem_alloc::NvmAddr;

use crate::stats::{MinMax, ObjectTimeTable};

/// The persistent state surviving a power failure.
#[derive(Debug)]
pub struct CrashImage {
    /// The NVM device (frames + metadata arena).
    pub dev: Arc<NvmDevice>,
    /// Frame count (needed to re-derive the allocator layout).
    pub nvm_frames: u32,
    /// Backup object records.
    pub backups: ShardedStore<BackupObject>,
    /// The ORoot table.
    pub oroots: ShardedStore<ORoot>,
}

/// Simulates a power failure: consumes the kernel, returning only the
/// persistent state. All DRAM-side state — the runtime capability tree,
/// page tables, scheduler queues, the DRAM page cache, register state of
/// running threads — is dropped here.
///
/// The caller must have stopped all cores and any checkpoint timer first.
pub fn crash(kernel: Arc<Kernel>) -> CrashImage {
    let backups = ShardedStore::from_shards(kernel.pers.backups.take_shards());
    let oroots = ShardedStore::from_shards(kernel.pers.oroots.take_shards());
    CrashImage {
        dev: Arc::clone(&kernel.pers.dev),
        nvm_frames: kernel.config.nvm_frames,
        backups,
        oroots,
    }
}

/// One backup page whose every candidate image failed integrity checks:
/// the page is dropped from the revived PMO instead of serving torn or
/// bit-rotted bytes as if they were checkpoint data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedPage {
    /// The PMO's ORoot id.
    pub oroot: OrootId,
    /// Page index within the PMO.
    pub index: u64,
    /// The frame whose checksum failed.
    pub frame: FrameId,
}

/// Integrity outcomes of a recovery — the degraded-recovery evidence the
/// torn-write/media-fault model makes observable instead of silent.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Commit-record validation: did a torn commit force a fallback to
    /// generation N-1, and how many slots were invalid.
    pub commit: treesls_kernel::kernel::CommitRecovery,
    /// Backup page images whose CRC was checked and passed.
    pub pages_verified: usize,
    /// Pages restored from the *other* pair entry after the picked image
    /// failed its checksum (page-level generation fallback).
    pub pages_fell_back: usize,
    /// Pages dropped entirely: no candidate image passed validation.
    pub quarantined: Vec<QuarantinedPage>,
    /// Torn/corrupt allocator-journal tail records dropped during replay.
    pub journal_records_truncated: u64,
    /// Flight-recorder events that survived the crash, oldest first — the
    /// last N things the system did before the cut (post-crash forensics;
    /// see `treesls-obs`). A torn tail slot fails its CRC and is absent,
    /// never mis-parsed. Not consulted by [`is_clean`](Self::is_clean).
    pub flight_events: Vec<treesls_obs::FlightEvent>,
}

impl RecoveryReport {
    /// `true` when recovery was fully clean: no fallback of any kind, no
    /// quarantined pages, no truncated journal tail.
    pub fn is_clean(&self) -> bool {
        !self.commit.fell_back
            && self.commit.invalid_slots <= 1
            && self.pages_fell_back == 0
            && self.quarantined.is_empty()
            && self.journal_records_truncated == 0
    }
}

/// Outcome of a whole-system restore.
#[derive(Debug)]
pub struct RestoreReport {
    /// The committed version the system was restored to.
    pub version: u64,
    /// Runtime objects revived.
    pub objects: usize,
    /// Memory pages revived.
    pub pages: usize,
    /// End-to-end restore time.
    pub duration: Duration,
    /// Per-object-type restore times (Table 3 "Restore").
    pub per_type: HashMap<ObjType, MinMax>,
    /// Integrity outcomes (commit-record fallback, page checksums,
    /// quarantines, journal truncation).
    pub recovery: RecoveryReport,
}

/// Restores a whole system from a crash image.
///
/// `register_programs` is called before threads are revived so that every
/// thread's program name resolves (programs are "executables on disk" and
/// must be re-registered after reboot, as a real system reloads binaries).
pub fn restore(
    image: CrashImage,
    config: KernelConfig,
    register_programs: impl FnOnce(&ProgramRegistry),
) -> Result<(Arc<Kernel>, RestoreReport), KernelError> {
    let t0 = Instant::now();
    let CrashImage { dev, nvm_frames, backups, oroots } = image;
    // Journal replay makes the allocator metadata consistent; the global
    // metadata tells us which version committed.
    let pers = Persistent::recover(dev, nvm_frames, backups, oroots);
    let global = pers.global_version();
    let mut recovery = RecoveryReport {
        commit: pers.commit_recovery(),
        journal_records_truncated: pers.alloc.journal_truncated(),
        flight_events: pers.take_recovered_events(),
        ..RecoveryReport::default()
    };
    let root_oroot = pers
        .root_oroot()
        .ok_or(KernelError::InvalidState("no committed checkpoint to restore"))?;

    let kernel = Kernel::from_parts(pers, config);
    register_programs(&kernel.programs);

    let mut table = ObjectTimeTable::default();
    let mut pages_revived = 0usize;

    // ---- reachability over the backup graph --------------------------------
    let mut reachable: Vec<OrootId> = Vec::new();
    {
        let oroots = &kernel.pers.oroots;
        let backups = &kernel.pers.backups;
        let mut seen: HashMap<OrootId, ()> = HashMap::new();
        let mut stack = vec![root_oroot];
        while let Some(id) = stack.pop() {
            if seen.contains_key(&id) {
                continue;
            }
            let Some(vb) = oroots
                .with(id, |r| {
                    if !r.live_at(global) {
                        return None;
                    }
                    r.restore_pick(global).and_then(|keep| r.backups[keep])
                })
                .flatten()
            else {
                continue;
            };
            let Some(kids) = backups.with(vb.slot, record_children) else { continue };
            seen.insert(id, ());
            reachable.push(id);
            stack.extend(kids);
        }
    }

    // ---- pass A: placeholders ----------------------------------------------
    let mut map: HashMap<OrootId, ObjId> = HashMap::new();
    {
        let oroots = &kernel.pers.oroots;
        for &id in &reachable {
            let otype = oroots.with(id, |r| r.otype).expect("reachable oroot");
            let obj = kernel.insert_object(placeholder_body(otype));
            obj.set_oroot(id);
            oroots.with_mut(id, |r| r.runtime = Some(obj.id())).expect("reachable oroot");
            map.insert(id, obj.id());
        }
    }

    // ---- pass B: fill bodies ------------------------------------------------
    for &id in &reachable {
        let t_obj = Instant::now();
        let (otype, vb) = kernel
            .pers
            .oroots
            .with(id, |r| {
                let keep = r.restore_pick(global).expect("picked during walk");
                (r.otype, r.backups[keep].expect("picked during walk"))
            })
            .expect("reachable oroot");
        let record =
            kernel.pers.backups.get_cloned(vb.slot).expect("record present");
        let obj_id = map[&id];
        let obj = kernel.object(obj_id)?;
        let revived_pages = fill_body(&kernel, &obj, record, &map, global, &mut recovery)?;
        pages_revived += revived_pages;
        // The revived state equals the backup: the next checkpoint can
        // skip this object unless it is mutated again.
        obj.take_dirty();
        table.add_restore(otype, t_obj.elapsed());
    }

    // ---- derived state -------------------------------------------------------
    *kernel.root_cap_group.lock() = Some(map[&root_oroot]);
    // Rebuild the run queue "by adding all threads to the scheduler's
    // queue" (§3), and the IRQ line table.
    for &id in &reachable {
        let obj = kernel.object(map[&id])?;
        let body = obj.body.read();
        match &*body {
            ObjectBody::Thread(t) if t.state == ThreadState::Runnable => {
                kernel.sched.enqueue(obj.id());
            }
            ObjectBody::IrqNotification(irq) => {
                kernel.irq_lines.lock().insert(irq.line, obj.id());
            }
            _ => {}
        }
    }

    // ---- sweep unreachable persistent records --------------------------------
    {
        let keep: std::collections::HashSet<OrootId> = reachable.iter().copied().collect();
        let dead: Vec<OrootId> =
            kernel.pers.oroots.ids().into_iter().filter(|i| !keep.contains(i)).collect();
        for id in dead {
            let r = kernel.pers.oroots.remove(id).expect("listed");
            for vb in r.backups.into_iter().flatten() {
                kernel.pers.backups.remove(vb.slot);
            }
        }
        // Also drop non-kept backup slots' records? No: the two-slot
        // rotation keeps the *other* slot as the next overwrite target and
        // its slab accounting is carved below.
    }

    // ---- allocator mark-and-sweep --------------------------------------------
    let (blocks, slabs) = collect_reachable(&kernel);
    kernel.pers.alloc.rebuild(&blocks, &slabs)?;

    // The dirty queue filled with every revived object's insertion push,
    // but pass B consumed the flags (revived state equals the backup), so
    // the entries are stale; drop them. Reference counts and volatile
    // tombstone bookkeeping did not survive the crash either — force the
    // next checkpoint to run the healing full walk, which rewrites all
    // reachable records and rebuilds the counts from scratch.
    kernel.dirty_queue.clear();
    kernel.force_full_next.store(true, std::sync::atomic::Ordering::Release);

    // Log the recovery itself into the (persistent) flight recorder so the
    // *next* crash's forensics include this restore and its degradations.
    for q in &recovery.quarantined {
        kernel.pers.recorder().record(
            treesls_obs::EventKind::Quarantine,
            [q.oroot.to_raw(), q.index, q.frame.0 as u64, 0, 0, 0],
        );
    }
    if recovery.journal_records_truncated > 0 {
        kernel.pers.recorder().record(
            treesls_obs::EventKind::JournalTruncate,
            [recovery.journal_records_truncated, 0, 0, 0, 0, 0],
        );
    }
    kernel.pers.recorder().record(
        treesls_obs::EventKind::Restore,
        [
            global,
            reachable.len() as u64,
            pages_revived as u64,
            recovery.pages_fell_back as u64,
            0,
            0,
        ],
    );
    kernel.metrics.record_restore();

    let version = global;
    let report = RestoreReport {
        version,
        objects: reachable.len(),
        pages: pages_revived,
        duration: t0.elapsed(),
        per_type: table.restore,
        recovery,
    };
    Ok((kernel, report))
}

/// ORoot references held by a backup record (backup-graph edges).
fn record_children(record: &BackupObject) -> Vec<OrootId> {
    match record {
        BackupObject::CapGroup { caps, .. } => {
            caps.iter().flatten().map(|c| c.oroot).collect()
        }
        BackupObject::Thread { state, cap_group, vmspace, .. } => {
            let mut v = vec![*cap_group, *vmspace];
            match state {
                BkThreadState::BlockedNotification(o)
                | BkThreadState::BlockedIpcRecv(o)
                | BkThreadState::BlockedIpcReply(o) => v.push(*o),
                _ => {}
            }
            v
        }
        BackupObject::VmSpace { regions } => regions.iter().map(|r| r.pmo).collect(),
        BackupObject::Pmo { .. } => Vec::new(),
        BackupObject::IpcConnection { recv_waiter, queue, replies } => {
            let mut v: Vec<OrootId> = queue.iter().map(|(t, _)| *t).collect();
            v.extend(replies.iter().map(|(t, _)| *t));
            v.extend(*recv_waiter);
            v
        }
        BackupObject::Notification { waiters, .. } => waiters.clone(),
        BackupObject::IrqNotification { waiters, .. } => waiters.clone(),
    }
}

fn placeholder_body(otype: ObjType) -> ObjectBody {
    match otype {
        ObjType::CapGroup => ObjectBody::CapGroup(CapGroupBody::new("")),
        ObjType::Thread => ObjectBody::Thread(ThreadBody {
            ctx: Default::default(),
            state: ThreadState::Exited,
            program: String::new(),
            cap_group: ObjId::INVALID,
            vmspace: ObjId::INVALID,
            on_cpu: false,
        }),
        ObjType::VmSpace => ObjectBody::VmSpace(VmSpaceBody::new()),
        ObjType::Pmo => ObjectBody::Pmo(Pmo::new(0, PmoKind::Data)),
        ObjType::IpcConnection => ObjectBody::IpcConnection(IpcConnBody::new()),
        ObjType::Notification => ObjectBody::Notification(NotifBody::new()),
        ObjType::IrqNotification => ObjectBody::IrqNotification(IrqNotifBody::new(0)),
    }
}

/// Fills a placeholder object from its backup record, translating ORoot
/// references to revived runtime ids. Returns the number of pages revived
/// (PMOs only).
fn fill_body(
    kernel: &Arc<Kernel>,
    obj: &Arc<KObject>,
    record: BackupObject,
    map: &HashMap<OrootId, ObjId>,
    global: u64,
    recovery: &mut RecoveryReport,
) -> Result<usize, KernelError> {
    let resolve = |o: OrootId| -> Result<ObjId, KernelError> {
        map.get(&o).copied().ok_or(KernelError::DeadObject)
    };
    let mut pages = 0usize;
    let body: ObjectBody = match record {
        BackupObject::CapGroup { name, caps } => {
            let mut g = CapGroupBody::new(name);
            g.caps = caps
                .into_iter()
                .map(|c| {
                    c.map(|c| {
                        Ok::<Capability, KernelError>(Capability {
                            obj: resolve(c.oroot)?,
                            rights: c.rights,
                        })
                    })
                    .transpose()
                })
                .collect::<Result<_, _>>()?;
            ObjectBody::CapGroup(g)
        }
        BackupObject::Thread { ctx, state, program, cap_group, vmspace } => {
            if kernel.programs.get(&program).is_none() {
                return Err(KernelError::InvalidState(
                    "restored thread's program is not registered",
                ));
            }
            ObjectBody::Thread(ThreadBody {
                ctx,
                state: match state {
                    BkThreadState::Runnable => ThreadState::Runnable,
                    BkThreadState::Exited => ThreadState::Exited,
                    BkThreadState::BlockedNotification(o) => {
                        ThreadState::Blocked(BlockedOn::Notification(resolve(o)?))
                    }
                    BkThreadState::BlockedIpcRecv(o) => {
                        ThreadState::Blocked(BlockedOn::IpcRecv(resolve(o)?))
                    }
                    BkThreadState::BlockedIpcReply(o) => {
                        ThreadState::Blocked(BlockedOn::IpcReply(resolve(o)?))
                    }
                },
                program,
                cap_group: resolve(cap_group)?,
                vmspace: resolve(vmspace)?,
                on_cpu: false,
            })
        }
        BackupObject::VmSpace { regions } => {
            let mut vs = VmSpaceBody::new();
            for r in regions {
                let mapped = vs.map_region(VmRegion {
                    base: Vpn(r.base),
                    npages: r.npages,
                    pmo: resolve(r.pmo)?,
                    pmo_off: r.pmo_off,
                    perm: r.perm,
                });
                if !mapped {
                    return Err(KernelError::InvalidState("backup regions overlap"));
                }
            }
            // The page table starts empty (the paper rebuilds page tables
            // lazily through faults after recovery).
            ObjectBody::VmSpace(vs)
        }
        BackupObject::Pmo { npages, kind, pages: bk_pages, .. } => {
            let mut pmo = Pmo::new(npages, kind);
            let eternal = kind == PmoKind::Eternal;
            // Collect first: purged entries must free their frames, live
            // entries are normalized and inserted.
            let mut live = Vec::new();
            let mut dead = Vec::new();
            bk_pages.for_each(|idx, e| {
                if e.live_at(global) {
                    live.push((idx, Arc::clone(&e.slot)));
                } else {
                    dead.push(idx);
                }
            });
            // Dead entries (uncommitted additions or committed removals):
            // their frames simply stay out of the reachable set and return
            // to the free lists during the allocator rebuild. They must be
            // dropped from the backup radix so no stale Arc survives.
            let _ = dead;
            let oroot = obj.oroot().expect("set in pass A");
            // Returns `true` if a pair entry is an acceptable restore
            // image: checksummed images must match the frame content;
            // untagged (runtime, version-0) images have nothing to check.
            let validates = |p: &PagePtr| match p.crc {
                Some(expect) => kernel.pers.dev.page_crc(p.frame) == expect,
                None => true,
            };
            let mut kept = Vec::new();
            for (idx, slot) in &live {
                let mut meta = slot.meta.lock();
                // Epoch-concurrent leftovers from the crashed round first.
                // A whole-page capture holds the page's committed image (a
                // frozen page takes no writes between windows, so the
                // window-start content the capture froze *is* the last
                // committed content) while the runtime frame carries
                // post-flip writes: anchor the capture as the committed
                // backup so the pick/validate cascade below prefers it. An
                // in-line log rolls the post-flip writes back in place on
                // the runtime frame (every record carries its own CRC;
                // torn or corrupt tails parse as absent, and the already-
                // applied prefix still undoes the writes it logged).
                match meta.restore_image(global) {
                    // On checksum failure the capture falls to the `_`
                    // arm — dropped, and the cascade falls back to the
                    // pair entries.
                    treesls_kernel::pmo::RestoreImage::Capture(c) if global > 0 && validates(&c) => {
                        meta.pairs[0] = Some(PagePtr {
                            frame: c.frame,
                            version: c.version.min(global),
                            crc: c.crc,
                        });
                    }
                    treesls_kernel::pmo::RestoreImage::Log(log) => {
                        let rt = meta.pairs[1].expect("logged pages are non-migrated").frame;
                        let mut img = Box::new([0u8; treesls_nvm::PAGE_SIZE]);
                        kernel.pers.dev.read_page(rt, &mut img);
                        let mut raw = vec![0u8; log.used as usize];
                        kernel.pers.dev.read(log.frame, 0, &mut raw);
                        let recs = treesls_kernel::pmo::parse_undo_records(&raw);
                        treesls_kernel::pmo::apply_undo_records(&mut img, &recs);
                        kernel.pers.dev.write(rt, 0, &img[..]);
                        kernel.pers.dev.flush_frame(rt, 0, treesls_nvm::PAGE_SIZE);
                        kernel.pers.dev.fence();
                    }
                    _ => {}
                }
                meta.epoch_capture = None;
                meta.inline_log = None;
                let Some(picked) = meta.restore_pick(global) else { continue };
                // Integrity gate: verify the picked image's checksum; on
                // mismatch fall back to the other pair entry (the previous
                // generation's image) if it is committed and validates;
                // otherwise quarantine the page.
                let mut keep = picked;
                let chosen_ptr = meta.pairs[picked].expect("picked entry has a frame");
                if validates(&chosen_ptr) {
                    if chosen_ptr.crc.is_some() {
                        recovery.pages_verified += 1;
                    }
                } else {
                    let other = 1 - picked;
                    let fallback = meta.pairs[other]
                        .filter(|p| p.version <= global && validates(p));
                    match fallback {
                        Some(_) => {
                            keep = other;
                            recovery.pages_fell_back += 1;
                        }
                        None => {
                            recovery.quarantined.push(QuarantinedPage {
                                oroot,
                                index: *idx,
                                frame: chosen_ptr.frame,
                            });
                            continue;
                        }
                    }
                }
                // Normalize: the chosen image becomes the runtime NVM page
                // (pair slot 1, version 0); the other frame is kept as the
                // spare backup target.
                if keep == 0 {
                    meta.pairs.swap(0, 1);
                }
                let chosen = meta.pairs[1].expect("picked entry has a frame");
                meta.pairs[1] = Some(PagePtr::runtime(chosen.frame));
                if let Some(p) = meta.pairs[0].as_mut() {
                    // Stale data from before the restore point: mark it
                    // version 0 so no rule can ever prefer it.
                    p.version = 0;
                    p.crc = None;
                }
                meta.runtime_dram = None;
                meta.writable = eternal;
                meta.hotness = 0;
                meta.epoch_round = 0;
                meta.dirty = false;
                meta.on_active_list = false;
                meta.idle_rounds = 0;
                meta.eternal = eternal;
                pmo.insert(*idx, Arc::clone(slot));
                kept.push((*idx, Arc::clone(slot)));
                pages += 1;
            }
            // Rebuild the backup record's radix to exactly the kept set
            // with committed tags, and re-sync the structure tick.
            // Quarantined pages drop out here too, so their frames return
            // to the free lists during the allocator rebuild.
            let tick = pmo.structure_tick.load(std::sync::atomic::Ordering::Relaxed);
            {
                let vb = kernel
                    .pers
                    .oroots
                    .with(oroot, |r| r.backups[0])
                    .expect("live oroot")
                    .expect("PMO record exists");
                kernel.pers.backups.with_mut(vb.slot, |rec| {
                    if let BackupObject::Pmo { pages: bkp, synced_tick, .. } = rec {
                        let mut fresh = treesls_kernel::radix::Radix::new();
                        for (idx, slot) in &kept {
                            fresh.insert(
                                *idx,
                                treesls_kernel::oroot::BkPageEntry {
                                    slot: Arc::clone(slot),
                                    added: 0,
                                    removed: None,
                                },
                            );
                        }
                        *bkp = fresh;
                        *synced_tick = tick;
                    }
                });
            }
            ObjectBody::Pmo(pmo)
        }
        BackupObject::IpcConnection { recv_waiter, queue, replies } => {
            let mut c = IpcConnBody::new();
            c.recv_waiter = recv_waiter.map(resolve).transpose()?;
            c.queue = queue
                .into_iter()
                .map(|(t, d)| Ok::<_, KernelError>(IpcMsg { from: resolve(t)?, data: d }))
                .collect::<Result<_, _>>()?;
            c.replies = replies
                .into_iter()
                .map(|(t, d)| Ok::<_, KernelError>((resolve(t)?, d)))
                .collect::<Result<_, _>>()?;
            ObjectBody::IpcConnection(c)
        }
        BackupObject::Notification { count, waiters } => {
            let mut n = NotifBody::new();
            n.count = count;
            n.waiters = waiters.into_iter().map(resolve).collect::<Result<_, _>>()?;
            ObjectBody::Notification(n)
        }
        BackupObject::IrqNotification { line, count, waiters } => {
            let mut irq = IrqNotifBody::new(line);
            irq.inner.count = count;
            irq.inner.waiters = waiters.into_iter().map(resolve).collect::<Result<_, _>>()?;
            ObjectBody::IrqNotification(irq)
        }
    };
    *obj.body.write() = body;
    Ok(pages)
}

/// Reachable buddy blocks `(frame, order)` feeding the allocator rebuild.
type ReachableBlocks = Vec<(FrameId, u8)>;
/// Reachable slab objects `(addr, size)` feeding the allocator rebuild.
type ReachableSlabs = Vec<(NvmAddr, usize)>;

/// Collects the reachable buddy blocks and slab objects for the allocator
/// rebuild: every frame referenced by a (reachable) backup PMO record plus
/// every backup record's slab accounting.
fn collect_reachable(kernel: &Kernel) -> (ReachableBlocks, ReachableSlabs) {
    let mut blocks = Vec::new();
    let mut slabs = Vec::new();
    let mut pmo_slots = Vec::new();
    kernel.pers.oroots.for_each(|_, r| {
        for vb in r.backups.iter().flatten() {
            if let Some((addr, size)) = vb.slab {
                slabs.push((addr, size as usize));
            }
            pmo_slots.push(vb.slot);
        }
    });
    for slot in pmo_slots {
        kernel.pers.backups.with(slot, |record| {
            if let BackupObject::Pmo { pages, .. } = record {
                pages.for_each(|_, e| {
                    let meta = e.slot.meta.lock();
                    for p in meta.pairs.iter().flatten() {
                        blocks.push((p.frame, 0));
                    }
                });
            }
        });
    }
    (blocks, slabs)
}
