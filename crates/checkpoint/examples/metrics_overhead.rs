//! Measures the hot-path cost of the observability layer.
//!
//! Runs the same checkpoint loop twice-buildable: once with the `metrics`
//! feature (default) and once with `--no-default-features`, where every
//! registry hook and flight-recorder consumer above the raw ring compiles
//! to a no-op. Comparing the reported pause statistics between the two
//! builds gives the number EXPERIMENTS.md quotes:
//!
//! ```text
//! cargo run --release -p treesls-checkpoint --example metrics_overhead
//! cargo run --release -p treesls-checkpoint --example metrics_overhead \
//!     --no-default-features
//! ```

use std::sync::Arc;

use treesls_checkpoint::CheckpointManager;
use treesls_kernel::cap::CapRights;
use treesls_kernel::cores::StwController;
use treesls_kernel::pmo::PmoKind;
use treesls_kernel::types::{Vaddr, Vpn};
use treesls_kernel::{Kernel, KernelConfig};
use treesls_nvm::PAGE_SIZE;

const ROUNDS: usize = 2000;
const WARMUP: usize = 50;
const DIRTY_PAGES: usize = 64;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let config = KernelConfig { nvm_frames: 8192, dram_pages: 512, ..KernelConfig::default() };
    let kernel = Kernel::boot(config);
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&kernel), stw);

    let g = kernel.create_cap_group("overhead").unwrap();
    let vs = kernel.create_vmspace(g).unwrap();
    let pmo = kernel.create_pmo(g, 256, PmoKind::Data).unwrap();
    kernel.map_region(vs, Vpn(0), 256, pmo, 0, CapRights::ALL).unwrap();

    let mut pauses = Vec::with_capacity(ROUNDS);
    for round in 0..(WARMUP + ROUNDS) {
        // Dirty a fixed working set so every round does the same CoW work.
        for page in 0..DIRTY_PAGES {
            let addr = (page * PAGE_SIZE) as u64;
            kernel.vm_write(vs, Vaddr(addr), &(round as u64).to_le_bytes()).unwrap();
        }
        let breakdown = mgr.checkpoint().unwrap();
        if round >= WARMUP {
            pauses.push(breakdown.total_pause.as_nanos() as u64);
        }
    }

    pauses.sort_unstable();
    let sum: u64 = pauses.iter().sum();
    let metrics_state =
        if cfg!(feature = "metrics") { "metrics ON (default)" } else { "metrics OFF (no-default-features)" };
    println!("metrics_overhead: {metrics_state}");
    println!("  rounds          {ROUNDS} (after {WARMUP} warmup), {DIRTY_PAGES} dirty pages/round");
    println!("  pause mean      {} ns", sum / pauses.len() as u64);
    println!("  pause p50       {} ns", percentile(&pauses, 0.50));
    println!("  pause p95       {} ns", percentile(&pauses, 0.95));
    println!("  pause p99       {} ns", percentile(&pauses, 0.99));
    println!("  pause max       {} ns", pauses[pauses.len() - 1]);

    // With metrics on, cross-check the registry's histogram against the
    // exact samples: quantiles are log2-bucket upper bounds, so they must
    // bracket the exact values from above within one bucket.
    #[cfg(feature = "metrics")]
    {
        let stats = kernel.metrics.pause_histogram().stats();
        println!("  registry view   count={} mean={} ns p50<={} p95<={} p99<={} max={}",
            stats.count, stats.mean_ns, stats.p50_ns, stats.p95_ns, stats.p99_ns, stats.max_ns);
    }
}
