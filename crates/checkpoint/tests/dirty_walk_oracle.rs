//! Differential oracle: the dirty-queue tree walk must be restore-
//! equivalent to the forced full walk.
//!
//! The same seeded syscall workload (creates, signals, revocations,
//! re-grants, heap writes, interleaved checkpoints) runs twice — once
//! with `force_full_walk: true` (the O(objects) oracle) and once in pure
//! dirty-queue mode (`full_walk_interval: 0`, never a periodic full
//! round). Both runs crash and restore, and the restored capability
//! trees must produce identical normalized fingerprints: same shape,
//! same cap slots and rights, same notification counters, same heap
//! bytes. Any object the dirty walk failed to persist, tombstoned too
//! eagerly, or left dangling shows up as a fingerprint diff naming the
//! first divergent node.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treesls_checkpoint::{crash, restore, CheckpointManager};
use treesls_kernel::cap::CapRights;
use treesls_kernel::cores::StwController;
use treesls_kernel::object::{ObjType, ObjectBody};
use treesls_kernel::pmo::PmoKind;
use treesls_kernel::program::ProgramRegistry;
use treesls_kernel::types::{ObjId, Vaddr, Vpn};
use treesls_kernel::{Kernel, KernelConfig};

const HEAP_PAGES: u64 = 16;
const STEPS: usize = 220;

fn config(force_full: bool) -> KernelConfig {
    config_quiesce(force_full, false)
}

fn config_quiesce(force_full: bool, full_quiesce: bool) -> KernelConfig {
    config_modes(force_full, full_quiesce, true)
}

fn config_modes(force_full: bool, full_quiesce: bool, epoch: bool) -> KernelConfig {
    KernelConfig {
        nvm_frames: 4096,
        dram_pages: 128,
        force_full_walk: force_full,
        // The dirty-mode run must never fall back to a periodic full
        // round, or the oracle would be comparing full walks to full
        // walks.
        full_walk_interval: 0,
        force_full_quiesce: full_quiesce,
        epoch_concurrent: epoch,
        ..KernelConfig::default()
    }
}

fn no_programs(_r: &ProgramRegistry) {}

/// Finds the slot of `obj`'s capability in `group`.
fn find_cap_slot(kernel: &Arc<Kernel>, group: ObjId, obj: ObjId) -> usize {
    let g = kernel.object(group).unwrap();
    let body = g.body.read();
    let ObjectBody::CapGroup(cg) = &*body else { panic!("not a group") };
    let slot = cg.iter().find(|(_, c)| c.obj == obj).map(|(s, _)| s).expect("cap present");
    slot
}

/// Runs the seeded workload under the given walk mode and returns the
/// fingerprint of the crash-restored system.
fn run(seed: u64, force_full: bool) -> Vec<String> {
    run_quiesce(seed, force_full, false)
}

/// [`run`] with an explicit stop-the-world mode (`full_quiesce: true` =
/// the all-cores oracle; `false` = partial quiescence, the default).
fn run_quiesce(seed: u64, force_full: bool, full_quiesce: bool) -> Vec<String> {
    run_modes(seed, force_full, full_quiesce, true)
}

/// [`run_quiesce`] with an explicit epoch-concurrency mode: `epoch:
/// false` pins PR 6 partial quiescence (pause spans the copy phase) so
/// it stays available as a config oracle against the epoch-concurrent
/// default.
fn run_modes(seed: u64, force_full: bool, full_quiesce: bool, epoch: bool) -> Vec<String> {
    let kernel = Kernel::boot(config_modes(force_full, full_quiesce, epoch));
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&kernel), stw);

    // One process with a mapped heap for content checks.
    let app = kernel.create_cap_group("app").unwrap();
    let vs = kernel.create_vmspace(app).unwrap();
    let heap = kernel.create_pmo(app, HEAP_PAGES, PmoKind::Data).unwrap();
    kernel.map_region(vs, Vpn(0), HEAP_PAGES, heap, 0, CapRights::ALL).unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups: Vec<ObjId> = vec![app];
    // Live notifications as (owning group, object id); revoked ones move
    // to `graveyard` and may be re-granted later (the resurrect path).
    let mut notifs: Vec<(ObjId, ObjId)> = Vec::new();
    let mut graveyard: Vec<ObjId> = Vec::new();

    for step in 0..STEPS {
        match rng.gen_range(0..10u32) {
            0 | 1 => {
                let g = groups[rng.gen_range(0..groups.len())];
                let n = kernel.create_notification(g).unwrap();
                notifs.push((g, n));
            }
            2 => {
                let name = format!("g{step}");
                groups.push(kernel.create_cap_group(&name).unwrap());
            }
            3 | 4 if !notifs.is_empty() => {
                let (_, n) = notifs[rng.gen_range(0..notifs.len())];
                kernel.signal_object(n).unwrap();
            }
            5 if !notifs.is_empty() => {
                let (g, n) = notifs.swap_remove(rng.gen_range(0..notifs.len()));
                let slot = find_cap_slot(&kernel, g, n);
                kernel.revoke_cap(g, slot).unwrap();
                graveyard.push(n);
            }
            6 if !graveyard.is_empty() => {
                // Re-grant a previously revoked notification by raw id:
                // if its ORoot was already swept, the next walk must
                // rebuild it (and chase the fresh edge in the same
                // round).
                let n = graveyard.swap_remove(rng.gen_range(0..graveyard.len()));
                let g = groups[rng.gen_range(0..groups.len())];
                kernel.install_cap(g, n, CapRights::ALL).unwrap();
                notifs.push((g, n));
            }
            7 | 8 => {
                let page = rng.gen_range(0..HEAP_PAGES);
                let off = rng.gen_range(0..4096 - 8u64);
                let val: u64 = rng.gen();
                kernel
                    .vm_write(vs, Vaddr(page * 4096 + off), &val.to_le_bytes())
                    .unwrap();
            }
            _ => {
                mgr.checkpoint().unwrap();
            }
        }
        if step % 37 == 0 {
            mgr.checkpoint().unwrap();
        }
    }
    mgr.checkpoint().unwrap();
    mgr.verify_checkpoint().unwrap();

    let image = crash(kernel);
    let (k2, _) =
        restore(image, config_quiesce(force_full, full_quiesce), no_programs).unwrap();
    fingerprint(&k2)
}

/// Normalized BFS fingerprint of the runtime capability tree: object ids
/// are replaced by first-visit indices, so two trees with the same shape
/// and state fingerprint identically regardless of allocation order.
fn fingerprint(kernel: &Arc<Kernel>) -> Vec<String> {
    let root = kernel.root();
    let mut order: HashMap<ObjId, usize> = HashMap::new();
    let mut queue = VecDeque::new();
    order.insert(root, 0);
    queue.push_back(root);
    let mut lines = Vec::new();
    while let Some(id) = queue.pop_front() {
        let idx = order[&id];
        let obj = kernel.object(id).expect("reachable object restored");
        let body = obj.body.read();
        let line = match &*body {
            ObjectBody::CapGroup(g) => {
                let mut kids = Vec::new();
                for (slot, cap) in g.iter() {
                    let next = order.len();
                    let k = *order.entry(cap.obj).or_insert_with(|| {
                        queue.push_back(cap.obj);
                        next
                    });
                    kids.push(format!("{slot}>{k}/{:x}", cap.rights.0));
                }
                format!("{idx} group {} [{}]", g.name, kids.join(","))
            }
            ObjectBody::Notification(n) => {
                format!("{idx} notif count={} waiters={}", n.count, n.waiters.len())
            }
            ObjectBody::IrqNotification(irq) => {
                format!("{idx} irq line={} count={}", irq.line, irq.inner.count)
            }
            ObjectBody::VmSpace(v) => {
                let regions: Vec<String> = v
                    .regions
                    .iter()
                    .map(|r| format!("{}+{}@{}", r.base.0, r.npages, r.pmo_off))
                    .collect();
                format!("{idx} vms [{}]", regions.join(","))
            }
            ObjectBody::Pmo(p) => {
                let mut present = Vec::new();
                p.pages.for_each(|i, _| present.push(i));
                format!("{idx} pmo n={} kind={:?} mat={:?}", p.npages, p.kind, present)
            }
            ObjectBody::Thread(t) => format!("{idx} thread state={:?}", t.state),
            ObjectBody::IpcConnection(c) => {
                format!("{idx} ipc queued={} replies={}", c.queue.len(), c.replies.len())
            }
        };
        lines.push(line);
    }
    // Heap content: every mapped byte of the app process, FNV-hashed per
    // page so a diff names the page.
    let vs = find_app_vmspace(kernel);
    for page in 0..HEAP_PAGES {
        let mut buf = [0u8; 4096];
        kernel.vm_read(vs, Vaddr(page * 4096), &mut buf).unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in buf {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        lines.push(format!("heap page {page} fnv={h:x}"));
    }
    lines
}

fn find_app_vmspace(kernel: &Arc<Kernel>) -> ObjId {
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == "app")
        })
        .expect("app group restored");
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let vs = g
        .iter()
        .map(|(_, c)| c.obj)
        .find(|&o| kernel.object(o).is_ok_and(|o| o.otype == ObjType::VmSpace))
        .expect("app vmspace restored");
    vs
}

#[test]
fn dirty_walk_matches_forced_full_walk() {
    for seed in [7u64, 23, 99, 1234, 424242] {
        let dirty = run(seed, false);
        let full = run(seed, true);
        assert_eq!(
            dirty, full,
            "seed {seed}: dirty-queue walk diverged from the full-walk oracle"
        );
    }
}

#[test]
fn dirty_walk_oracle_holds_under_both_quiesce_modes() {
    // The same differential oracle swept across the stop-the-world mode:
    // partial quiescence (the default) and the forced all-cores oracle
    // must both keep dirty ≡ full, and the two quiesce modes must agree
    // with each other — the quiesce policy may change *who pauses*, never
    // *what commits*.
    for seed in [7u64, 1234] {
        let base = run_quiesce(seed, false, false);
        for (force_full, full_quiesce) in [(false, true), (true, false), (true, true)] {
            let other = run_quiesce(seed, force_full, full_quiesce);
            assert_eq!(
                base, other,
                "seed {seed}: walk mode force_full={force_full} / \
                 full_quiesce={full_quiesce} diverged from the partial-quiescence dirty run"
            );
        }
    }
}

#[test]
fn epoch_concurrent_image_matches_quiesce_oracles() {
    // The epoch-concurrent round (pause = epoch flip only; tree walk,
    // backup builds and page copies race live mutators) must commit a
    // round image *bit-identical* to the full-quiesce oracle, which
    // parks every core for the whole copy phase. PR 6 partial
    // quiescence (epoch off: dirty owners stay parked through the
    // copy) is kept as a second, independent oracle. Concurrency may
    // change *when cores run*, never *what commits*.
    for seed in [7u64, 23, 99, 1234, 424242] {
        let epoch = run_modes(seed, false, false, true);
        let full_quiesce = run_modes(seed, false, true, true);
        assert_eq!(
            epoch, full_quiesce,
            "seed {seed}: epoch-concurrent image diverged from the full-quiesce oracle"
        );
        let partial = run_modes(seed, false, false, false);
        assert_eq!(
            epoch, partial,
            "seed {seed}: epoch-concurrent image diverged from PR 6 partial quiescence"
        );
    }
}

#[test]
fn dirty_walk_survives_mid_workload_restores() {
    // Same oracle, but the dirty-mode run additionally crashes and
    // restores *mid-workload*: the post-restore self-heal (cleared queue
    // + forced full round) must resynchronize the dirty state, and the
    // final tree must still match a run that never relied on dirty
    // tracking at all.
    let seed = 31337u64;
    let kernel0 = Kernel::boot(config(false));
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&kernel0), stw);
    let app = kernel0.create_cap_group("app").unwrap();
    let vs = kernel0.create_vmspace(app).unwrap();
    let heap = kernel0.create_pmo(app, HEAP_PAGES, PmoKind::Data).unwrap();
    kernel0.map_region(vs, Vpn(0), HEAP_PAGES, heap, 0, CapRights::ALL).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for page in 0..HEAP_PAGES {
        let val: u64 = rng.gen();
        kernel0.vm_write(vs, Vaddr(page * 4096), &val.to_le_bytes()).unwrap();
    }
    let n = kernel0.create_notification(app).unwrap();
    kernel0.signal_object(n).unwrap();
    mgr.checkpoint().unwrap();

    // Crash + restore mid-workload, then keep mutating on the revived
    // kernel.
    let image = crash(kernel0);
    let (kernel, _) = restore(image, config(false), no_programs).unwrap();
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&kernel), stw);
    let vs = find_app_vmspace(&kernel);
    for page in 0..HEAP_PAGES {
        let val: u64 = rng.gen();
        kernel.vm_write(vs, Vaddr(page * 4096), &val.to_le_bytes()).unwrap();
    }
    mgr.checkpoint().unwrap();
    mgr.verify_checkpoint().unwrap();
    let image = crash(kernel);
    let (k2, _) = restore(image, config(false), no_programs).unwrap();

    // Reference: the same logical state built fresh under forced full
    // walks, no intermediate crash.
    let kref = Kernel::boot(config(true));
    let stw = Arc::new(StwController::new());
    let mref = CheckpointManager::new(Arc::clone(&kref), stw);
    let app = kref.create_cap_group("app").unwrap();
    let vsr = kref.create_vmspace(app).unwrap();
    let heapr = kref.create_pmo(app, HEAP_PAGES, PmoKind::Data).unwrap();
    kref.map_region(vsr, Vpn(0), HEAP_PAGES, heapr, 0, CapRights::ALL).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for page in 0..HEAP_PAGES {
        let val: u64 = rng.gen();
        kref.vm_write(vsr, Vaddr(page * 4096), &val.to_le_bytes()).unwrap();
    }
    let n = kref.create_notification(app).unwrap();
    kref.signal_object(n).unwrap();
    mref.checkpoint().unwrap();
    for page in 0..HEAP_PAGES {
        let val: u64 = rng.gen();
        kref.vm_write(vsr, Vaddr(page * 4096), &val.to_le_bytes()).unwrap();
    }
    mref.checkpoint().unwrap();
    let image = crash(kref);
    let (kref2, _) = restore(image, config(true), no_programs).unwrap();

    assert_eq!(fingerprint(&k2), fingerprint(&kref2));
}
