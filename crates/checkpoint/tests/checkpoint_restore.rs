//! End-to-end checkpoint → crash → restore tests.
//!
//! These tests exercise the whole persistence stack: the capability-tree
//! checkpoint (§4.1), per-page versioning (§4.2), hybrid copy (§4.3) and
//! the restore path (Figure 5 step ❼), verifying that a restored system is
//! exactly the committed checkpoint image.

use std::sync::Arc;

use treesls_checkpoint::{crash, restore, CheckpointManager};
use treesls_kernel::cap::CapRights;
use treesls_kernel::cores::StwController;
use treesls_kernel::object::{ObjType, ObjectBody};
use treesls_kernel::pmo::{PhysLoc, PmoKind};
use treesls_kernel::program::{Program, ProgramRegistry, StepOutcome, UserCtx};
use treesls_kernel::thread::{ThreadContext, ThreadState};
use treesls_kernel::types::{ObjId, Vaddr, Vpn};
use treesls_kernel::{Kernel, KernelConfig};

fn config() -> KernelConfig {
    KernelConfig { nvm_frames: 2048, dram_pages: 128, ..KernelConfig::default() }
}

fn boot() -> (Arc<Kernel>, Arc<CheckpointManager>) {
    let kernel = Kernel::boot(config());
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&kernel), stw);
    (kernel, mgr)
}

/// Creates a process with a 64-page data region mapped at vpn 0.
fn process(kernel: &Arc<Kernel>, name: &str) -> (ObjId, ObjId, ObjId) {
    let g = kernel.create_cap_group(name).unwrap();
    let vs = kernel.create_vmspace(g).unwrap();
    let pmo = kernel.create_pmo(g, 64, PmoKind::Data).unwrap();
    kernel.map_region(vs, Vpn(0), 64, pmo, 0, CapRights::ALL).unwrap();
    (g, vs, pmo)
}

fn no_programs(_r: &ProgramRegistry) {}

#[test]
fn checkpoint_increments_version_and_reports_breakdown() {
    let (kernel, mgr) = boot();
    assert_eq!(kernel.pers.global_version(), 0);
    let b1 = mgr.checkpoint().unwrap();
    assert_eq!(b1.version, 1);
    assert_eq!(kernel.pers.global_version(), 1);
    assert!(b1.objects_copied >= 1); // at least the root cap group
    let b2 = mgr.checkpoint().unwrap();
    assert_eq!(b2.version, 2);
    // Second round is incremental: nothing was re-dirtied, so the
    // dirty-queue walk does not even visit the clean root group.
    assert_eq!(b2.objects_copied, 0);
}

#[test]
fn restore_without_checkpoint_fails() {
    let (kernel, _mgr) = boot();
    let image = crash(kernel);
    assert!(restore(image, config(), no_programs).is_err());
}

#[test]
fn data_rolls_back_to_committed_checkpoint() {
    let (kernel, mgr) = boot();
    let (_g, vs, _pmo) = process(&kernel, "p");
    kernel.vm_write(vs, Vaddr(0), b"committed").unwrap();
    kernel.vm_write(vs, Vaddr(8192), &[7u8; 100]).unwrap();
    mgr.checkpoint().unwrap();
    // Post-checkpoint writes must vanish.
    kernel.vm_write(vs, Vaddr(0), b"uncommitt").unwrap();
    kernel.vm_write(vs, Vaddr(16384), b"new page").unwrap();

    let image = crash(kernel);
    let (k2, report) = restore(image, config(), no_programs).unwrap();
    assert_eq!(report.version, 1);
    assert!(report.pages >= 2);

    // Find the restored process's vmspace: walk the root group.
    let vs2 = find_vmspace(&k2, "p");
    let mut buf = [0u8; 9];
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(&buf, b"committed");
    let mut buf = [0u8; 100];
    k2.vm_read(vs2, Vaddr(8192), &mut buf).unwrap();
    assert_eq!(buf, [7u8; 100]);
    // The page created after the checkpoint reads as zero (fresh page).
    let mut buf = [0u8; 8];
    k2.vm_read(vs2, Vaddr(16384), &mut buf).unwrap();
    assert_eq!(buf, [0u8; 8]);
}

/// Finds the VM space of the process cap group named `name`.
fn find_vmspace(kernel: &Arc<Kernel>, name: &str) -> ObjId {
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == name)
        })
        .expect("process group");
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    for (_, cap) in g.iter() {
        if let Ok(o) = kernel.object(cap.obj) {
            if o.otype == ObjType::VmSpace {
                return cap.obj;
            }
        }
    }
    panic!("no vmspace in group {name}");
}

#[test]
fn repeated_checkpoint_crash_cycles_preserve_latest_commit() {
    let (mut kernel, mut mgr) = boot();
    let (_g, mut vs, _pmo) = process(&kernel, "p");
    for round in 0u64..5 {
        kernel.vm_write(vs, Vaddr(0), &round.to_le_bytes()).unwrap();
        mgr.checkpoint().unwrap();
        // Dirty the page after the commit; this write must not survive.
        kernel.vm_write(vs, Vaddr(0), &0xDEADu64.to_le_bytes()).unwrap();
        let image = crash(kernel);
        let (k2, report) = restore(image, config(), no_programs).unwrap();
        assert_eq!(report.version, round + 1);
        vs = find_vmspace(&k2, "p");
        let mut buf = [0u8; 8];
        k2.vm_read(vs, Vaddr(0), &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), round, "round {round}");
        kernel = k2;
        let stw = Arc::new(StwController::new());
        mgr = CheckpointManager::new(Arc::clone(&kernel), stw);
    }
}

#[test]
fn allocator_is_consistent_after_restore() {
    let (kernel, mgr) = boot();
    let (_g, vs, _pmo) = process(&kernel, "p");
    for i in 0..32u64 {
        kernel.vm_write(vs, Vaddr(i * 4096), &i.to_le_bytes()).unwrap();
    }
    mgr.checkpoint().unwrap();
    for i in 0..32u64 {
        kernel.vm_write(vs, Vaddr(i * 4096), &(i * 3).to_le_bytes()).unwrap();
    }
    mgr.checkpoint().unwrap();
    let free_before = kernel.pers.alloc.stats().free_frames;
    let image = crash(kernel);
    let (k2, _) = restore(image, config(), no_programs).unwrap();
    k2.pers.alloc.verify().unwrap();
    let free_after = k2.pers.alloc.stats().free_frames;
    // Rollback can only return frames (uncommitted allocations), never
    // leak them.
    assert!(free_after >= free_before, "restore leaked frames: {free_before} -> {free_after}");
    // The restored system keeps working.
    let vs2 = find_vmspace(&k2, "p");
    k2.vm_write(vs2, Vaddr(0), b"alive").unwrap();
    let mut b = [0u8; 5];
    k2.vm_read(vs2, Vaddr(0), &mut b).unwrap();
    assert_eq!(&b, b"alive");
}

/// A program that increments a counter in memory once per step.
struct Counter;
impl Program for Counter {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let target = ctx.reg(1);
        let done = ctx.reg(2);
        if done >= target {
            return StepOutcome::Exited;
        }
        let v = ctx.read_u64(0).unwrap();
        ctx.write_u64(0, v + 1).unwrap();
        ctx.set_reg(2, done + 1);
        StepOutcome::Ready
    }
}

fn register_counter(r: &ProgramRegistry) {
    r.register("counter", Arc::new(Counter));
}

#[test]
fn thread_context_resumes_exactly_from_checkpoint() {
    let (kernel, mgr) = boot();
    register_counter(&kernel.programs);
    let (g, vs, _pmo) = process(&kernel, "p");
    let mut ctx = ThreadContext::new();
    ctx.regs[1] = 1000;
    let tid = kernel.create_thread(g, vs, "counter", ctx).unwrap();

    // Run 300 steps by hand (single "core", no STW contention).
    let stw = StwController::new();
    for _ in 0..300 {
        treesls_kernel::cores::run_slice(&kernel, tid, 1, &stw);
        kernel.sched.next();
    }
    let mut buf = [0u8; 8];
    kernel.vm_read(vs, Vaddr(0), &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 300);

    mgr.checkpoint().unwrap();
    // 200 more steps after the checkpoint — lost on crash.
    for _ in 0..200 {
        treesls_kernel::cores::run_slice(&kernel, tid, 1, &stw);
        kernel.sched.next();
    }

    let image = crash(kernel);
    let (k2, _) = restore(image, config(), register_counter).unwrap();
    let vs2 = find_vmspace(&k2, "p");
    let mut buf = [0u8; 8];
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 300, "memory rolled back to checkpoint");

    // The revived thread is runnable and continues to exactly 1000.
    let tid2 = k2.sched.next().expect("runnable thread restored");
    let stw2 = StwController::new();
    let mut guard = 0;
    loop {
        treesls_kernel::cores::run_slice(&k2, tid2, 100, &stw2);
        let th = k2.object(tid2).unwrap();
        let done = matches!(
            &*th.body.read(),
            ObjectBody::Thread(t) if t.state == ThreadState::Exited
        );
        if done {
            break;
        }
        k2.sched.next();
        guard += 1;
        assert!(guard < 100, "thread did not finish");
    }
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 1000, "register state resumed mid-run");
}

#[test]
fn blocked_thread_and_notification_state_survive() {
    let (kernel, mgr) = boot();
    register_counter(&kernel.programs);
    let (g, vs, _pmo) = process(&kernel, "p");
    let notif = kernel.create_notification(g).unwrap();
    let slot = find_cap_slot(&kernel, g, notif);
    let tid = kernel.create_thread(g, vs, "counter", ThreadContext::new()).unwrap();
    // Block the thread on the notification.
    assert!(!kernel.notif_wait(tid, g, slot).unwrap());
    mgr.checkpoint().unwrap();

    let image = crash(kernel);
    let (k2, _) = restore(image, config(), register_counter).unwrap();
    // The blocked thread is not in the run queue...
    assert!(k2.sched.next().is_none());
    // ...but a signal wakes it.
    let g2 = find_group(&k2, "p");
    let notif2 = {
        let body = k2.object(g2).unwrap();
        let b = body.body.read();
        let ObjectBody::CapGroup(cg) = &*b else { unreachable!() };
        let found = cg
            .iter()
            .map(|(_, c)| c.obj)
            .find(|&o| k2.object(o).unwrap().otype == ObjType::Notification)
            .unwrap();
        drop(b);
        found
    };
    k2.signal_object(notif2).unwrap();
    assert!(k2.sched.next().is_some(), "woken thread enqueued after restore");
}

fn find_group(kernel: &Arc<Kernel>, name: &str) -> ObjId {
    let objects = kernel.objects.read();
    let id = objects
        .iter()
        .find(|(_, o)| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == name)
        })
        .map(|(id, _)| id)
        .expect("group");
    drop(objects);
    id
}

fn find_cap_slot(kernel: &Arc<Kernel>, group: ObjId, obj: ObjId) -> usize {
    let g = kernel.object(group).unwrap();
    let b = g.body.read();
    let ObjectBody::CapGroup(cg) = &*b else { panic!("not a group") };
    let slot = cg.iter().find(|(_, c)| c.obj == obj).map(|(s, _)| s).expect("cap present");
    drop(b);
    slot
}

#[test]
fn hybrid_copy_migrates_hot_pages_and_survives_crash() {
    let (kernel, mgr) = boot();
    let (_g, vs, pmo) = process(&kernel, "hot");
    // Make page 0 hot: fault it across several checkpoint rounds.
    for round in 0u64..6 {
        kernel.vm_write(vs, Vaddr(0), &round.to_le_bytes()).unwrap();
        mgr.checkpoint().unwrap();
    }
    // The page should now be DRAM-cached.
    let slot = {
        let o = kernel.object(pmo).unwrap();
        let b = o.body.read();
        let ObjectBody::Pmo(p) = &*b else { unreachable!() };
        Arc::clone(p.get(0).unwrap())
    };
    assert!(slot.meta.lock().is_migrated(), "hot page migrated to DRAM");
    assert!(matches!(slot.meta.lock().runtime_loc(), PhysLoc::Dram(_)));

    // Write through DRAM, checkpoint (speculative stop-and-copy), then
    // dirty it again and crash: the committed value must be restored.
    kernel.vm_write(vs, Vaddr(0), &0xAAAAu64.to_le_bytes()).unwrap();
    let b = mgr.checkpoint().unwrap();
    assert!(b.hybrid_busy.as_nanos() > 0, "hybrid copy did work");
    kernel.vm_write(vs, Vaddr(0), &0xBBBBu64.to_le_bytes()).unwrap();

    let image = crash(kernel);
    let (k2, _) = restore(image, config(), no_programs).unwrap();
    let vs2 = find_vmspace(&k2, "hot");
    let mut buf = [0u8; 8];
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 0xAAAA, "DRAM page restored from NVM backup");
}

#[test]
fn idle_hot_pages_are_evicted_back_to_nvm() {
    let mut cfg = config();
    cfg.idle_evict_rounds = 3;
    let kernel = Kernel::boot(cfg);
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&kernel), stw);
    let (_g, vs, pmo) = process(&kernel, "p");
    for round in 0u64..5 {
        kernel.vm_write(vs, Vaddr(0), &round.to_le_bytes()).unwrap();
        mgr.checkpoint().unwrap();
    }
    let slot = {
        let o = kernel.object(pmo).unwrap();
        let b = o.body.read();
        let ObjectBody::Pmo(p) = &*b else { unreachable!() };
        Arc::clone(p.get(0).unwrap())
    };
    assert!(slot.meta.lock().is_migrated());
    // Stop touching the page: after idle_evict_rounds checkpoints it
    // returns to NVM.
    for _ in 0..5 {
        mgr.checkpoint().unwrap();
    }
    assert!(!slot.meta.lock().is_migrated(), "idle page evicted");
    assert_eq!(kernel.tracker.active_len(), 0, "active list compacted");
    // Its content is intact.
    let mut buf = [0u8; 8];
    kernel.vm_read(vs, Vaddr(0), &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 4);
}

#[test]
fn eternal_pmo_is_not_rolled_back() {
    let (kernel, mgr) = boot();
    let g = kernel.create_cap_group("driver").unwrap();
    let vs = kernel.create_vmspace(g).unwrap();
    let epmo = kernel.create_pmo(g, 4, PmoKind::Eternal).unwrap();
    kernel.map_region(vs, Vpn(0), 4, epmo, 0, CapRights::ALL).unwrap();
    kernel.vm_write(vs, Vaddr(0), b"ring v1").unwrap();
    mgr.checkpoint().unwrap();
    // Post-checkpoint write to the eternal PMO: must SURVIVE the crash.
    kernel.vm_write(vs, Vaddr(0), b"ring v2").unwrap();
    let s = kernel.stats.snapshot();
    assert_eq!(s.write_faults, 0, "eternal pages never CoW-fault");

    let image = crash(kernel);
    let (k2, _) = restore(image, config(), no_programs).unwrap();
    let vs2 = find_vmspace(&k2, "driver");
    let mut buf = [0u8; 7];
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(&buf, b"ring v2", "eternal PMO kept its at-crash content");
}

#[test]
fn ipc_in_flight_messages_survive_restore() {
    let (kernel, mgr) = boot();
    register_counter(&kernel.programs);
    let (g, vs, _pmo) = process(&kernel, "srv");
    let client = kernel.create_thread(g, vs, "counter", ThreadContext::new()).unwrap();
    let (_conn, sslot, _cslot) = kernel.create_ipc_conn(g, g).unwrap();
    kernel.ipc_call(client, g, sslot, b"in-flight".to_vec()).unwrap();
    mgr.checkpoint().unwrap();

    let image = crash(kernel);
    let (k2, _) = restore(image, config(), register_counter).unwrap();
    // The revived server-side connection still has the queued request.
    let g2 = find_group(&k2, "srv");
    let conn2 = {
        let o = k2.object(g2).unwrap();
        let b = o.body.read();
        let ObjectBody::CapGroup(cg) = &*b else { unreachable!() };
        let found = cg
            .iter()
            .map(|(_, c)| c.obj)
            .find(|&o| k2.object(o).unwrap().otype == ObjType::IpcConnection)
            .unwrap();
        drop(b);
        found
    };
    let o = k2.object(conn2).unwrap();
    let b = o.body.read();
    let ObjectBody::IpcConnection(c) = &*b else { unreachable!() };
    assert_eq!(c.queue.len(), 1);
    assert_eq!(c.queue[0].data, b"in-flight");
    // The blocked client thread reference is consistent.
    let from = c.queue[0].from;
    let th = k2.object(from).unwrap();
    assert_eq!(th.otype, ObjType::Thread);
}

#[test]
fn unreferenced_objects_are_deleted_after_commit() {
    let (kernel, mgr) = boot();
    let g = kernel.create_cap_group("p").unwrap();
    let n = kernel.create_notification(g).unwrap();
    mgr.checkpoint().unwrap();
    let oroot_count_before = kernel.pers.oroots.len();
    // Revoke the only capability: the notification becomes unreachable.
    let slot = find_cap_slot(&kernel, g, n);
    {
        let go = kernel.object(g).unwrap();
        let mut b = go.body.write();
        let ObjectBody::CapGroup(cg) = &mut *b else { unreachable!() };
        cg.revoke(slot).unwrap();
        go.mark_dirty();
    }
    // First checkpoint marks the deletion; it is already committed at this
    // checkpoint's commit point, so the sweep reclaims it immediately.
    mgr.checkpoint().unwrap();
    let oroot_count_after = kernel.pers.oroots.len();
    assert!(
        oroot_count_after < oroot_count_before,
        "deleted object swept: {oroot_count_before} -> {oroot_count_after}"
    );
    // And a crash/restore does not revive it.
    let image = crash(kernel);
    let (k2, _) = restore(image, config(), no_programs).unwrap();
    let census = k2.census();
    assert_eq!(census.get(&ObjType::Notification).copied().unwrap_or(0), 0);
}

#[test]
fn census_and_ckpt_size_reporting() {
    let (kernel, mgr) = boot();
    let (_g, vs, _pmo) = process(&kernel, "p");
    for i in 0..16u64 {
        kernel.vm_write(vs, Vaddr(i * 4096), &[1u8; 4096]).unwrap();
    }
    mgr.checkpoint().unwrap();
    assert!(kernel.app_memory_bytes() >= 16 * 4096);
    // No page has been re-dirtied, so checkpoint size is just metadata
    // (runtime pages double as checkpoint data — the Table 2 point).
    let sz1 = mgr.ckpt_size_bytes();
    // Dirty all pages and checkpoint again: backups are created.
    for i in 0..16u64 {
        kernel.vm_write(vs, Vaddr(i * 4096), &[2u8; 4096]).unwrap();
    }
    mgr.checkpoint().unwrap();
    for i in 0..16u64 {
        kernel.vm_write(vs, Vaddr(i * 4096), &[3u8; 4096]).unwrap();
    }
    let sz2 = mgr.ckpt_size_bytes();
    assert!(sz2 > sz1, "CoW backups count toward checkpoint size: {sz1} -> {sz2}");
    assert!(sz2 >= 16 * 4096);
}

#[test]
fn removed_pages_are_tombstoned_then_reclaimed() {
    let (kernel, mgr) = boot();
    let (_g, vs, pmo) = process(&kernel, "p");
    for i in 0..8u64 {
        kernel.vm_write(vs, Vaddr(i * 4096), &[i as u8; 16]).unwrap();
    }
    mgr.checkpoint().unwrap(); // v1: 8 pages in the backup tree
    let free_v1 = kernel.pers.alloc.stats().free_frames;

    // Unmap + drop half the pages.
    kernel.unmap_region(vs, Vpn(0)).unwrap();
    for i in 0..4u64 {
        assert!(kernel.pmo_remove_page(pmo, i).unwrap());
        assert!(!kernel.pmo_remove_page(pmo, i).unwrap());
    }
    kernel.map_region(vs, Vpn(0), 64, pmo, 0, CapRights::ALL).unwrap();
    // v2 tombstones the removals; frames still held for restore-to-v1.
    mgr.checkpoint().unwrap();
    // v3 purges the committed tombstones and frees the frames.
    mgr.checkpoint().unwrap();
    let free_v3 = kernel.pers.alloc.stats().free_frames;
    assert!(
        free_v3 >= free_v1 + 4,
        "deferred reclamation did not return frames: {free_v1} -> {free_v3}"
    );
    kernel.pers.alloc.verify().unwrap();

    // Crash: restored PMO has only the surviving pages.
    let image = crash(kernel);
    let (k2, _) = restore(image, config(), no_programs).unwrap();
    let vs2 = find_vmspace(&k2, "p");
    let mut buf = [0u8; 16];
    k2.vm_read(vs2, Vaddr(5 * 4096), &mut buf).unwrap();
    assert_eq!(buf, [5u8; 16]);
    // The removed page reads as zero (fresh materialization).
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(buf, [0u8; 16]);
}

#[test]
fn verify_checkpoint_passes_and_detects_missing_backup() {
    let (kernel, mgr) = boot();
    let (_g, vs, _pmo) = process(&kernel, "p");
    kernel.vm_write(vs, Vaddr(0), b"check me").unwrap();
    assert!(mgr.verify_checkpoint().is_err(), "no commit yet");
    mgr.checkpoint().unwrap();
    let checked = mgr.verify_checkpoint().unwrap();
    assert!(checked >= 4, "only {checked} objects verified");
    // Corrupt the backup store: remove a record behind the ORoots' back.
    {
        let mut victim = None;
        kernel.pers.oroots.for_each(|_, r| {
            if victim.is_none() {
                victim = r.backups.iter().flatten().next().map(|vb| vb.slot);
            }
        });
        kernel.pers.backups.remove(victim.expect("some backup")).expect("removed");
    }
    assert!(mgr.verify_checkpoint().is_err(), "corruption went undetected");
}

#[test]
fn revoked_last_cap_deletes_object_at_next_commit() {
    let (kernel, mgr) = boot();
    let g = kernel.create_cap_group("p").unwrap();
    let n = kernel.create_notification(g).unwrap();
    mgr.checkpoint().unwrap();
    let before = kernel.pers.oroots.len();
    let slot = find_cap_slot(&kernel, g, n);
    kernel.revoke_cap(g, slot).unwrap();
    mgr.checkpoint().unwrap();
    let after = kernel.pers.oroots.len();
    assert!(after < before);
    mgr.verify_checkpoint().unwrap();
}

#[test]
fn crash_during_uncommitted_checkpoint_restores_previous_version() {
    // §4.2's core correctness claim: "a consistent view is always
    // persisted to deal with unexpected power failures". A crash after
    // all checkpoint work but before the commit point must restore the
    // previous version, ignoring every in-flight version tag.
    let (kernel, mgr) = boot();
    let (_g, vs, _pmo) = process(&kernel, "p");
    kernel.vm_write(vs, Vaddr(0), b"v1-data").unwrap();
    mgr.checkpoint().unwrap(); // v1 commits
    kernel.vm_write(vs, Vaddr(0), b"v2-data").unwrap();
    // The interrupted checkpoint writes backup records and page tags for
    // v2 — none of which may be visible after recovery.
    mgr.checkpoint_interrupted_before_commit().unwrap();
    kernel.vm_write(vs, Vaddr(4096), b"late").unwrap();

    let image = crash(kernel);
    let (k2, report) = restore(image, config(), no_programs).unwrap();
    assert_eq!(report.version, 1, "uncommitted checkpoint must not be restored");
    let vs2 = find_vmspace(&k2, "p");
    let mut buf = [0u8; 7];
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(&buf, b"v1-data");
    k2.pers.alloc.verify().unwrap();
}

#[test]
fn interrupted_then_completed_checkpoint_is_clean() {
    // An aborted round followed by a successful one: the successful
    // commit supersedes the in-flight tags and restores exactly.
    let (kernel, mgr) = boot();
    let (_g, vs, _pmo) = process(&kernel, "p");
    for round in 0u64..4 {
        kernel.vm_write(vs, Vaddr(0), &round.to_le_bytes()).unwrap();
        mgr.checkpoint_interrupted_before_commit().unwrap();
        kernel.vm_write(vs, Vaddr(0), &(round + 100).to_le_bytes()).unwrap();
        mgr.checkpoint().unwrap();
        mgr.verify_checkpoint().unwrap();
    }
    let committed = kernel.pers.global_version();
    let image = crash(kernel);
    let (k2, report) = restore(image, config(), no_programs).unwrap();
    assert_eq!(report.version, committed);
    let vs2 = find_vmspace(&k2, "p");
    let mut buf = [0u8; 8];
    k2.vm_read(vs2, Vaddr(0), &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 103);
}
