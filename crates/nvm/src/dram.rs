//! The volatile DRAM page pool.
//!
//! TreeSLS keeps two kinds of state in DRAM (Figure 3): rebuild-able
//! structures that are deliberately excluded from checkpoints (page tables),
//! and hot pages migrated out of NVM by hybrid copy for faster access. Both
//! are lost on power failure — the crash path simply drops the pool.

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::page::{zeroed_page, DramId, PageBuf, PAGE_SIZE};
use crate::stats::MemStats;

/// A fixed-capacity pool of volatile 4 KiB pages.
///
/// Allocation is a simple free-list; the pool never grows. Hybrid copy
/// treats pool exhaustion as "do not migrate" rather than an error, mirroring
/// a bounded DRAM cache.
#[derive(Debug)]
pub struct DramPool {
    pages: Vec<RwLock<PageBuf>>,
    free: Mutex<Vec<DramId>>,
    stats: MemStats,
}

impl DramPool {
    /// Creates a pool of `capacity` zeroed pages.
    pub fn new(capacity: usize) -> Self {
        let pages = (0..capacity).map(|_| RwLock::new(zeroed_page())).collect();
        // Hand out low ids first: pop from the back of a reversed list.
        let free = (0..capacity as u32).rev().map(DramId).collect();
        Self { pages, free: Mutex::new(free), stats: MemStats::new() }
    }

    /// Total number of pages in the pool.
    pub fn capacity(&self) -> usize {
        self.pages.len()
    }

    /// Number of currently free pages.
    pub fn free_count(&self) -> usize {
        self.free.lock().len()
    }

    /// Access statistics for the pool.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Allocates a page, returning `None` when the pool is exhausted.
    ///
    /// The returned page is zeroed.
    pub fn alloc(&self) -> Option<DramId> {
        let id = self.free.lock().pop()?;
        self.pages[id.index()].write().fill(0);
        Some(id)
    }

    /// Returns a page to the pool.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the page is double-freed.
    pub fn free(&self, id: DramId) {
        let mut free = self.free.lock();
        debug_assert!(!free.contains(&id), "double free of DRAM page {id:?}");
        free.push(id);
    }

    /// Reads `buf.len()` bytes from page `id` starting at `off`.
    pub fn read(&self, id: DramId, off: usize, buf: &mut [u8]) {
        self.stats.record_read(buf.len());
        let g = self.pages[id.index()].read();
        buf.copy_from_slice(&g[off..off + buf.len()]);
    }

    /// Writes `data` into page `id` starting at `off`.
    pub fn write(&self, id: DramId, off: usize, data: &[u8]) {
        self.stats.record_write(data.len());
        let mut g = self.pages[id.index()].write();
        g[off..off + data.len()].copy_from_slice(data);
    }

    /// Copies the full page into `out`.
    pub fn read_page(&self, id: DramId, out: &mut [u8; PAGE_SIZE]) {
        self.stats.record_read(PAGE_SIZE);
        out.copy_from_slice(&**self.pages[id.index()].read());
    }

    /// Overwrites the full page from `data`.
    pub fn write_page(&self, id: DramId, data: &[u8; PAGE_SIZE]) {
        self.stats.record_write(PAGE_SIZE);
        self.pages[id.index()].write().copy_from_slice(data);
    }

    /// Takes a shared lock on a page, for cross-device copy routines.
    pub fn lock_page(&self, id: DramId) -> RwLockReadGuard<'_, PageBuf> {
        self.pages[id.index()].read()
    }

    /// Takes an exclusive lock on a page, for cross-device copy routines.
    pub fn lock_page_mut(&self, id: DramId) -> RwLockWriteGuard<'_, PageBuf> {
        self.pages[id.index()].write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhausted() {
        let p = DramPool::new(3);
        assert_eq!(p.capacity(), 3);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        let c = p.alloc().unwrap();
        assert!(p.alloc().is_none());
        assert_eq!(p.free_count(), 0);
        p.free(b);
        assert_eq!(p.free_count(), 1);
        let b2 = p.alloc().unwrap();
        assert_eq!(b, b2);
        assert_ne!(a, c);
    }

    #[test]
    fn realloc_returns_zeroed_page() {
        let p = DramPool::new(1);
        let a = p.alloc().unwrap();
        p.write(a, 0, &[0xAA; 32]);
        p.free(a);
        let a2 = p.alloc().unwrap();
        let mut buf = [0xFFu8; 32];
        p.read(a2, 0, &mut buf);
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn read_write_roundtrip() {
        let p = DramPool::new(1);
        let a = p.alloc().unwrap();
        p.write(a, 1000, b"dram");
        let mut buf = [0u8; 4];
        p.read(a, 1000, &mut buf);
        assert_eq!(&buf, b"dram");
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let p = DramPool::new(1);
        let a = p.alloc().unwrap();
        p.free(a);
        p.free(a);
    }
}
