//! Calibrated extra-latency injection for NVM accesses.
//!
//! The paper's testbed pairs DDR4 DRAM with Intel Optane PMem. Optane writes
//! are roughly 3–4× slower than DRAM writes and reads roughly 2–3× slower;
//! synchronous persistence primitives (e.g. an `fsync` on Ext4-DAX used by
//! the Linux-WAL baseline) cost additional microseconds per call. Functional
//! tests run with injection disabled; the benchmark harness enables it so
//! the measured shapes reproduce the DRAM/NVM asymmetry.
//!
//! Injection uses a spin-wait rather than `thread::sleep` because the
//! injected delays are in the tens-to-hundreds of nanoseconds, far below
//! scheduler sleep resolution.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Extra latency charged to emulated-NVM accesses.
///
/// All fields are expressed in nanoseconds per 256-byte chunk (roughly an
/// Optane access granule / XPLine quarter), except [`flush_ns`] which is a
/// flat per-call cost modelling a synchronous persistence barrier.
///
/// [`flush_ns`]: Self::flush_ns
#[derive(Debug)]
pub struct LatencyModel {
    enabled: AtomicBool,
    /// Extra nanoseconds per 256 B written to NVM.
    pub write_ns_per_chunk: AtomicU64,
    /// Extra nanoseconds per 256 B read from NVM.
    pub read_ns_per_chunk: AtomicU64,
    /// Flat nanoseconds per explicit persistence barrier (e.g. WAL fsync).
    pub flush_ns: AtomicU64,
}

/// Chunk size used for latency accounting.
pub const CHUNK: usize = 256;

impl Default for LatencyModel {
    fn default() -> Self {
        Self::disabled()
    }
}

impl LatencyModel {
    /// Creates a model with injection turned off (all accesses are free).
    pub fn disabled() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            write_ns_per_chunk: AtomicU64::new(0),
            read_ns_per_chunk: AtomicU64::new(0),
            flush_ns: AtomicU64::new(0),
        }
    }

    /// Creates the calibrated model used by the benchmark harness.
    ///
    /// Defaults approximate published Optane DC PMem measurements: ~60 ns of
    /// extra write latency and ~40 ns of extra read latency per 256 B chunk,
    /// and a 1.5 µs synchronous flush (Ext4-DAX `fsync` round trip).
    pub fn optane() -> Self {
        Self {
            enabled: AtomicBool::new(true),
            write_ns_per_chunk: AtomicU64::new(60),
            read_ns_per_chunk: AtomicU64::new(40),
            flush_ns: AtomicU64::new(1500),
        }
    }

    /// Enables or disables injection at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns whether injection is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Charges the latency of writing `bytes` bytes to NVM.
    #[inline]
    pub fn charge_write(&self, bytes: usize) {
        if self.is_enabled() {
            let per = self.write_ns_per_chunk.load(Ordering::Relaxed);
            spin_for(Duration::from_nanos(per * chunks(bytes)));
        }
    }

    /// Charges the latency of reading `bytes` bytes from NVM.
    #[inline]
    pub fn charge_read(&self, bytes: usize) {
        if self.is_enabled() {
            let per = self.read_ns_per_chunk.load(Ordering::Relaxed);
            spin_for(Duration::from_nanos(per * chunks(bytes)));
        }
    }

    /// Charges one synchronous persistence barrier.
    #[inline]
    pub fn charge_flush(&self) {
        if self.is_enabled() {
            spin_for(Duration::from_nanos(self.flush_ns.load(Ordering::Relaxed)));
        }
    }
}

#[inline]
fn chunks(bytes: usize) -> u64 {
    bytes.div_ceil(CHUNK) as u64
}

/// Busy-waits for approximately `d`.
#[inline]
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_free() {
        let m = LatencyModel::disabled();
        let t = Instant::now();
        for _ in 0..1000 {
            m.charge_write(PAGE);
        }
        // 1000 free charges should take well under a millisecond.
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    const PAGE: usize = 4096;

    #[test]
    fn enabled_model_injects_delay() {
        let m = LatencyModel::optane();
        // One page write = 16 chunks * 60 ns ≈ 1 µs.
        let t = Instant::now();
        for _ in 0..100 {
            m.charge_write(PAGE);
        }
        assert!(t.elapsed() >= Duration::from_micros(90));
    }

    #[test]
    fn toggling_enabled_works() {
        let m = LatencyModel::optane();
        assert!(m.is_enabled());
        m.set_enabled(false);
        assert!(!m.is_enabled());
        let t = Instant::now();
        m.charge_flush();
        assert!(t.elapsed() < Duration::from_micros(500));
    }

    #[test]
    fn chunk_rounding_is_ceiling() {
        assert_eq!(chunks(0), 0);
        assert_eq!(chunks(1), 1);
        assert_eq!(chunks(256), 1);
        assert_eq!(chunks(257), 2);
        assert_eq!(chunks(4096), 16);
    }
}
