//! CRC-32 (IEEE 802.3) — the integrity tag used by every persistent
//! structure that must detect torn or bit-rotted data: checkpoint commit
//! records, backup page images, allocator-journal records and ext-sync
//! ring slots.
//!
//! Implemented in-crate (table-driven, reflected polynomial `0xEDB88320`)
//! so the workspace stays free of external dependencies.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (standard init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continues a CRC-32 computation: `crc32_update(crc32(a), b) == crc32(a ++ b)`.
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = (c >> 8) ^ TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn update_is_concatenation() {
        let whole = crc32(b"treesls-nvm");
        let split = crc32_update(crc32(b"treesls"), b"-nvm");
        assert_eq!(whole, split);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = vec![0xA5u8; 256];
        let c0 = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut mutated = base.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), c0, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
