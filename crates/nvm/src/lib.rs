//! Emulated non-volatile memory (NVM) and DRAM devices for TreeSLS.
//!
//! The paper runs on Intel Optane Persistent Memory with eADR: every store
//! that has reached the cache hierarchy is guaranteed durable, while CPU
//! registers, device registers and DRAM contents are lost on power failure.
//! This crate models exactly that boundary in user space:
//!
//! * [`NvmDevice`] — a page-granular, byte-addressable persistent device.
//!   Everything stored in it survives a simulated power failure ("crash").
//! * [`DramPool`] — a volatile page pool for page tables and hot-page
//!   caching. Its contents are *dropped* on crash.
//! * [`LatencyModel`] — optional calibrated extra latency for NVM accesses,
//!   so benchmarks reproduce the DRAM/NVM asymmetry of the paper's testbed.
//! * [`ObjectStore`] — a persistent slot arena used by the kernel for
//!   checkpointed (backup) kernel objects; conceptually it lives in NVM slab
//!   space managed by `treesls-pmem-alloc`.
//!
//! Crash semantics are enforced by ownership: the whole emulated machine is
//! consumed by `crash()` (in the `treesls` facade) and only the values that
//! are part of the persistent state — the `NvmDevice`, the backup object
//! store, and the checkpoint metadata — are returned to the recovery path.

pub mod crash;
pub mod crc32;
pub mod device;
pub mod dram;
pub mod latency;
pub mod meta;
pub mod page;
pub mod persist;
pub mod shard;
pub mod stats;
pub mod store;

pub use crash::{
    CrashPoint, CrashSchedule, InjectedCrash, SiteHit, WriteCounts, WriteFate, WriteKind, WriteRec,
};
pub use crc32::{crc32, crc32_update};
pub use persist::{DroppedLine, PersistMode, PersistModel, Space, CACHE_LINE};
pub use device::NvmDevice;
pub use dram::DramPool;
pub use latency::LatencyModel;
pub use meta::MetaArena;
pub use page::{DramId, FrameId, PageBuf, PAGE_SIZE};
pub use shard::ShardedStore;
pub use stats::MemStats;
pub use store::{ObjectStore, SlotId};
