//! Byte-addressable persistent metadata arena.
//!
//! TreeSLS keeps the checkpoint manager's state — buddy/slab allocator
//! metadata, the redo/undo journal, and the global checkpoint metadata
//! (version number, commit status, backup-tree root) — in a dedicated NVM
//! region (the "global metadata area" of Figure 3). [`MetaArena`] models
//! that region as a flat byte array with little-endian typed accessors, so
//! the allocator and journal can be laid out and recovered byte-for-byte,
//! exactly as they would be on a real persistent DIMM.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::crash::{CrashPoint, CrashSchedule, WriteFate};
use crate::latency::LatencyModel;
use crate::persist::{PersistModel, Space, CACHE_LINE};
use crate::stats::MemStats;

pub use crate::crash::InjectedCrash;

/// A persistent, byte-addressable metadata region.
///
/// All multi-byte accessors use little-endian encoding (the paper's testbed
/// is x86-64). Offsets are in bytes from the start of the arena.
///
/// Interior mutability: reads take a shared lock, writes an exclusive lock.
/// On the real hardware individual aligned stores are atomic; callers that
/// need a single-word commit point should use [`write_u64`] on an aligned
/// offset, which is what the checkpoint manager's version bump does. Under
/// the ADR persistence model a store additionally stays volatile until the
/// covering cache lines are [`flush`](Self::flush)ed and
/// [`fence`](Self::fence)d.
///
/// [`write_u64`]: Self::write_u64
#[derive(Debug)]
pub struct MetaArena {
    bytes: RwLock<Box<[u8]>>,
    latency: Arc<LatencyModel>,
    stats: Arc<MemStats>,
    /// Crash-schedule shared with the owning device's page-write paths.
    crash: Arc<CrashSchedule>,
    /// Durability model shared with the owning device.
    persist: Arc<PersistModel>,
}

impl MetaArena {
    /// Creates a zeroed arena of `len` bytes wired to `crash` and `persist`.
    pub fn new(
        len: usize,
        latency: Arc<LatencyModel>,
        stats: Arc<MemStats>,
        crash: Arc<CrashSchedule>,
        persist: Arc<PersistModel>,
    ) -> Self {
        Self {
            bytes: RwLock::new(vec![0u8; len].into_boxed_slice()),
            latency,
            stats,
            crash,
            persist,
        }
    }

    /// Arms a metadata-write crash fuse: after `writes_remaining` more
    /// metadata writes, the next one panics with [`InjectedCrash`] *before*
    /// mutating the arena, simulating a power failure at that exact point in
    /// the persistent write stream.
    ///
    /// Convenience wrapper over [`CrashSchedule::arm`] with
    /// [`CrashPoint::MetaWrite`], kept for the allocator/journal crash
    /// tests; production code never arms the fuse.
    pub fn arm_crash_after(&self, writes_remaining: u64) {
        self.crash.arm(CrashPoint::MetaWrite(writes_remaining));
    }

    /// Disarms the crash schedule.
    pub fn disarm_crash(&self) {
        self.crash.disarm();
    }

    /// The crash schedule shared with the owning device.
    pub fn crash_schedule(&self) -> &Arc<CrashSchedule> {
        &self.crash
    }

    /// Marks the byte range for write-back (`clwb`); durable after the
    /// next [`fence`](Self::fence). No-op under eADR.
    pub fn flush(&self, off: usize, len: usize) {
        self.persist.flush(Space::Meta, off, len);
    }

    /// Store fence: retires every flushed line (of both spaces) to media.
    pub fn fence(&self) {
        self.persist.fence();
    }

    /// Flush-everything-and-fence, the strongest ordering point.
    pub fn persist_barrier(&self) {
        self.persist.persist_barrier();
    }

    /// The common store path: ticks the crash schedule, tracks durability,
    /// and applies the bytes — in full, or torn at a cache-line boundary.
    fn apply_write(&self, off: usize, data: &[u8]) {
        match self.crash.on_meta_write(off, data.len()) {
            WriteFate::Apply => {
                let mut g = self.bytes.write();
                self.persist.note_write(Space::Meta, off, data.len(), |line| {
                    let mut l = [0u8; CACHE_LINE];
                    let end = (line + CACHE_LINE).min(g.len());
                    l[..end - line].copy_from_slice(&g[line..end]);
                    l
                });
                g[off..off + data.len()].copy_from_slice(data);
            }
            WriteFate::Torn { keep } => {
                if keep > 0 {
                    self.bytes.write()[off..off + keep].copy_from_slice(&data[..keep]);
                }
                self.persist.retire_prefix(Space::Meta, off, keep);
                self.crash.crash_now();
            }
        }
    }

    /// Reverts one cache line to its undo image (ADR settle path).
    pub(crate) fn revert_line(&self, line_off: usize, undo: &[u8; CACHE_LINE]) {
        let mut g = self.bytes.write();
        let end = (line_off + CACHE_LINE).min(g.len());
        g[line_off..end].copy_from_slice(&undo[..end - line_off]);
    }

    /// Flips one bit at `off` (media fault — no crash tick, no stats).
    pub(crate) fn flip_bit(&self, off: usize, bit: u8) {
        self.bytes.write()[off] ^= 1 << (bit & 7);
    }

    /// Returns the arena length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.read().len()
    }

    /// Returns `true` if the arena has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the number of metadata writes performed so far.
    pub fn write_tick(&self) -> u64 {
        self.crash.counts().meta
    }

    /// Reads a `u8` at `off`.
    pub fn read_u8(&self, off: usize) -> u8 {
        self.latency.charge_read(1);
        self.stats.record_read(1);
        self.bytes.read()[off]
    }

    /// Writes a `u8` at `off`.
    pub fn write_u8(&self, off: usize, v: u8) {
        self.latency.charge_write(1);
        self.stats.record_write(1);
        self.apply_write(off, &[v]);
    }

    /// Reads a little-endian `u32` at `off`.
    pub fn read_u32(&self, off: usize) -> u32 {
        self.latency.charge_read(4);
        self.stats.record_read(4);
        let g = self.bytes.read();
        u32::from_le_bytes(g[off..off + 4].try_into().expect("in-bounds u32 read"))
    }

    /// Writes a little-endian `u32` at `off`.
    pub fn write_u32(&self, off: usize, v: u32) {
        self.latency.charge_write(4);
        self.stats.record_write(4);
        self.apply_write(off, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `off`.
    pub fn read_u64(&self, off: usize) -> u64 {
        self.latency.charge_read(8);
        self.stats.record_read(8);
        let g = self.bytes.read();
        u64::from_le_bytes(g[off..off + 8].try_into().expect("in-bounds u64 read"))
    }

    /// Writes a little-endian `u64` at `off`.
    ///
    /// An aligned `u64` store is the arena's atomic store primitive: it
    /// never spans a cache line, so it can tear under no persistence model.
    pub fn write_u64(&self, off: usize, v: u64) {
        self.latency.charge_write(8);
        self.stats.record_write(8);
        self.apply_write(off, &v.to_le_bytes());
    }

    /// Copies `buf.len()` bytes starting at `off` into `buf`.
    pub fn read_bytes(&self, off: usize, buf: &mut [u8]) {
        self.latency.charge_read(buf.len());
        self.stats.record_read(buf.len());
        buf.copy_from_slice(&self.bytes.read()[off..off + buf.len()]);
    }

    /// Writes `data` starting at `off`.
    pub fn write_bytes(&self, off: usize, data: &[u8]) {
        self.latency.charge_write(data.len());
        self.stats.record_write(data.len());
        self.apply_write(off, data);
    }

    /// Zeroes `len` bytes starting at `off`.
    pub fn zero(&self, off: usize, len: usize) {
        self.latency.charge_write(len);
        self.stats.record_write(len);
        self.apply_write(off, &vec![0u8; len]);
    }

    /// Clones the full arena contents (used by crash-injection tests to
    /// snapshot persistent state at a cut point).
    pub fn dump(&self) -> Vec<u8> {
        self.bytes.read().to_vec()
    }

    /// Overwrites the full arena contents from a dump.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the arena length.
    pub fn restore_dump(&self, data: &[u8]) {
        let mut g = self.bytes.write();
        assert_eq!(data.len(), g.len(), "dump length must match arena length");
        g.copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(len: usize) -> MetaArena {
        MetaArena::new(
            len,
            Arc::new(LatencyModel::disabled()),
            Arc::new(MemStats::new()),
            Arc::new(CrashSchedule::new()),
            Arc::new(PersistModel::new()),
        )
    }

    #[test]
    fn typed_roundtrips() {
        let a = arena(64);
        a.write_u8(0, 0xAB);
        a.write_u32(4, 0xDEAD_BEEF);
        a.write_u64(8, 0x0123_4567_89AB_CDEF);
        assert_eq!(a.read_u8(0), 0xAB);
        assert_eq!(a.read_u32(4), 0xDEAD_BEEF);
        assert_eq!(a.read_u64(8), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn byte_slices_roundtrip() {
        let a = arena(32);
        a.write_bytes(3, b"hello");
        let mut buf = [0u8; 5];
        a.read_bytes(3, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn zero_clears_range() {
        let a = arena(16);
        a.write_bytes(0, &[0xFF; 16]);
        a.zero(4, 8);
        let mut buf = [0u8; 16];
        a.read_bytes(0, &mut buf);
        assert_eq!(&buf[..4], &[0xFF; 4]);
        assert_eq!(&buf[4..12], &[0u8; 8]);
        assert_eq!(&buf[12..], &[0xFF; 4]);
    }

    #[test]
    fn dump_and_restore() {
        let a = arena(16);
        a.write_u64(0, 42);
        let d = a.dump();
        a.write_u64(0, 99);
        a.restore_dump(&d);
        assert_eq!(a.read_u64(0), 42);
    }

    #[test]
    fn write_tick_counts_writes() {
        let a = arena(16);
        let t0 = a.write_tick();
        a.write_u8(0, 1);
        a.write_u64(8, 2);
        assert_eq!(a.write_tick(), t0 + 2);
    }

    #[test]
    fn torn_meta_write_applies_line_prefix() {
        let a = arena(256);
        a.crash_schedule().arm(crate::CrashPoint::TornWrite { skip: 0, cut: 1 });
        // 160-byte write at offset 32: boundaries at 64 and 128; cut 1
        // keeps 32 bytes.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.write_bytes(32, &[0x77u8; 160]);
        }));
        assert!(r.is_err());
        let mut buf = [0u8; 192];
        a.read_bytes(0, &mut buf);
        assert!(buf[32..64].iter().all(|&b| b == 0x77));
        assert!(buf[64..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "dump length")]
    fn restore_dump_rejects_bad_length() {
        let a = arena(16);
        a.restore_dump(&[0u8; 8]);
    }
}
