//! The emulated NVM device: persistent page frames plus the metadata arena.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::crash::{CrashSchedule, WriteFate};
use crate::crc32::crc32;
use crate::dram::DramPool;
use crate::latency::LatencyModel;
use crate::meta::MetaArena;
use crate::page::{zeroed_page, DramId, FrameId, PageBuf, PAGE_SIZE};
use crate::persist::{PersistMode, PersistModel, Space, CACHE_LINE};
use crate::stats::MemStats;

/// An emulated byte-addressable non-volatile memory device.
///
/// The device owns a fixed array of page frames (the data area handed to the
/// buddy allocator) and a [`MetaArena`] (the global metadata area of
/// Figure 3 of the paper, holding allocator state, the journal and the
/// checkpoint commit record).
///
/// Everything inside an `NvmDevice` survives a simulated power failure: the
/// crash path of the `treesls` facade drops all volatile state and threads
/// only this value (plus the typed backup-object stores, which conceptually
/// live in its slab space) into recovery.
///
/// Frames are individually locked so that non-leader cores can perform
/// speculative stop-and-copy of disjoint pages in parallel with the leader's
/// capability-tree checkpoint, as in step ❸ of the paper's Figure 5. Lock
/// ordering is by ascending frame id (and DRAM-before-NVM for cross-device
/// copies) to keep concurrent page copies deadlock-free.
///
/// Durability semantics are governed by the device's [`PersistModel`]: in
/// eADR mode (default, the paper's testbed) a store is durable on
/// execution; in ADR mode dirty cache lines stay volatile until
/// [`flush_frame`](Self::flush_frame)/[`flush_meta`](Self::flush_meta) +
/// [`fence`](Self::fence), and a simulated crash may drop any still-pending
/// subset ([`settle_crash`](Self::settle_crash)).
#[derive(Debug)]
pub struct NvmDevice {
    frames: Vec<RwLock<PageBuf>>,
    meta: MetaArena,
    latency: Arc<LatencyModel>,
    stats: Arc<MemStats>,
    /// Crash-injection schedule shared with the metadata arena: every page
    /// write ticks it *before* mutating the frame, so a scheduled crash
    /// lands between two persistent stores exactly like a power failure.
    crash: Arc<CrashSchedule>,
    /// Cache-line durability tracking shared with the metadata arena.
    persist: Arc<PersistModel>,
}

impl NvmDevice {
    /// Creates a device with `frame_count` zeroed page frames and a zeroed
    /// metadata arena of `meta_len` bytes.
    pub fn new(frame_count: usize, meta_len: usize, latency: Arc<LatencyModel>) -> Self {
        let stats = Arc::new(MemStats::new());
        let crash = Arc::new(CrashSchedule::new());
        let persist = Arc::new(PersistModel::new());
        let frames = (0..frame_count).map(|_| RwLock::new(zeroed_page())).collect();
        let meta = MetaArena::new(
            meta_len,
            Arc::clone(&latency),
            Arc::clone(&stats),
            Arc::clone(&crash),
            Arc::clone(&persist),
        );
        Self { frames, meta, latency, stats, crash, persist }
    }

    /// The crash-injection schedule covering this device's whole persistent
    /// write stream (metadata + page frames).
    pub fn crash_schedule(&self) -> &Arc<CrashSchedule> {
        &self.crash
    }

    /// The cache-line durability model shared with the metadata arena.
    pub fn persist_model(&self) -> &Arc<PersistModel> {
        &self.persist
    }

    /// Switches the persistence model (eADR / ADR). Pending lines are
    /// considered drained by the switch.
    pub fn set_persist_mode(&self, mode: PersistMode) {
        self.persist.set_mode(mode);
    }

    /// Marks the metadata range for write-back (`clwb`).
    pub fn flush_meta(&self, off: usize, len: usize) {
        self.persist.flush(Space::Meta, off, len);
    }

    /// Marks the frame byte range for write-back (`clwb`).
    pub fn flush_frame(&self, frame: FrameId, off: usize, len: usize) {
        self.persist.flush(Space::Frame(frame.0), off, len);
    }

    /// Store fence: retires every flushed line to media (`sfence`).
    pub fn fence(&self) {
        self.persist.fence();
    }

    /// Flush-everything-and-fence over both spaces — the strongest
    /// ordering point (wraps the checkpoint commit record).
    pub fn persist_barrier(&self) {
        self.persist.persist_barrier();
    }

    /// Simulates the ADR power-failure outcome: a `seed`-selected subset of
    /// the still-pending cache lines never drained and is reverted to its
    /// pre-write media content. Returns the number of dropped lines.
    /// (`seed == u64::MAX` drops every pending line.) No-op under eADR.
    pub fn settle_crash(&self, seed: u64) -> usize {
        let dropped = self.persist.settle_crash(seed);
        for d in &dropped {
            match d.space {
                Space::Meta => self.meta.revert_line(d.line_off, &d.undo),
                Space::Frame(f) => {
                    let mut g = self.frames[f as usize].write();
                    let end = (d.line_off + CACHE_LINE).min(g.len());
                    g[d.line_off..end].copy_from_slice(&d.undo[..end - d.line_off]);
                }
            }
        }
        dropped.len()
    }

    /// Number of page frames in the data area.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The persistent metadata arena.
    pub fn meta(&self) -> &MetaArena {
        &self.meta
    }

    /// The latency model shared by this device.
    pub fn latency(&self) -> &Arc<LatencyModel> {
        &self.latency
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> &Arc<MemStats> {
        &self.stats
    }

    /// The single internal store path: ticks the crash schedule, tracks
    /// durability, and applies the bytes — in full, or torn at a cache-line
    /// boundary when a [`CrashPoint::TornWrite`](crate::CrashPoint) fires.
    /// Latency/stats accounting stays with the public callers.
    fn frame_store(&self, frame: FrameId, off: usize, data: &[u8]) {
        let fate = self.crash.on_page_write(off, data.len());
        let space = Space::Frame(frame.0);
        match fate {
            WriteFate::Apply => {
                let mut g = self.frames[frame.index()].write();
                self.persist.note_write(space, off, data.len(), |line| {
                    let mut l = [0u8; CACHE_LINE];
                    let end = (line + CACHE_LINE).min(g.len());
                    l[..end - line].copy_from_slice(&g[line..end]);
                    l
                });
                g[off..off + data.len()].copy_from_slice(data);
            }
            WriteFate::Torn { keep } => {
                if keep > 0 {
                    let mut g = self.frames[frame.index()].write();
                    g[off..off + keep].copy_from_slice(&data[..keep]);
                }
                // The applied prefix is what defines the tear: those lines
                // reached media.
                self.persist.retire_prefix(space, off, keep);
                self.crash.crash_now();
            }
        }
    }

    /// Reads `buf.len()` bytes from `frame` starting at byte `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range `off..off + buf.len()` exceeds the page.
    pub fn read(&self, frame: FrameId, off: usize, buf: &mut [u8]) {
        self.latency.charge_read(buf.len());
        self.stats.record_read(buf.len());
        let g = self.frames[frame.index()].read();
        buf.copy_from_slice(&g[off..off + buf.len()]);
    }

    /// Writes `data` into `frame` starting at byte `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn write(&self, frame: FrameId, off: usize, data: &[u8]) {
        self.latency.charge_write(data.len());
        self.stats.record_write(data.len());
        self.frame_store(frame, off, data);
    }

    /// Reads a little-endian `u64` at byte `off` of `frame`.
    pub fn read_u64(&self, frame: FrameId, off: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(frame, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at byte `off` of `frame`.
    pub fn write_u64(&self, frame: FrameId, off: usize, v: u64) {
        self.write(frame, off, &v.to_le_bytes());
    }

    /// Copies the full content of `frame` into `out`.
    pub fn read_page(&self, frame: FrameId, out: &mut [u8; PAGE_SIZE]) {
        self.latency.charge_read(PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE);
        out.copy_from_slice(&**self.frames[frame.index()].read());
    }

    /// Overwrites the full content of `frame` from `data`.
    pub fn write_page(&self, frame: FrameId, data: &[u8; PAGE_SIZE]) {
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.frame_store(frame, 0, data);
    }

    /// Zeroes the full content of `frame`.
    pub fn zero_page(&self, frame: FrameId) {
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.frame_store(frame, 0, &[0u8; PAGE_SIZE]);
    }

    /// Copies one NVM page to another NVM page (`src` → `dst`).
    ///
    /// The source is snapshotted under its read lock, then stored through
    /// the common write path (so torn-write injection sees the copy as one
    /// page-sized store).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn copy_frame(&self, src: FrameId, dst: FrameId) {
        assert_ne!(src, dst, "copy_frame requires distinct frames");
        self.latency.charge_read(PAGE_SIZE);
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.stats.record_page_copy();
        let mut tmp = zeroed_page();
        tmp.copy_from_slice(&**self.frames[src.index()].read());
        self.frame_store(dst, 0, &tmp[..]);
    }

    /// Copies a DRAM page into an NVM frame (`src` → `dst`).
    pub fn copy_from_dram(&self, dram: &DramPool, src: DramId, dst: FrameId) {
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.stats.record_page_copy();
        let mut tmp = zeroed_page();
        tmp.copy_from_slice(&dram.lock_page(src)[..]);
        self.frame_store(dst, 0, &tmp[..]);
    }

    /// Copies an NVM frame into a DRAM page (`src` → `dst`).
    ///
    /// Cross-device lock order is DRAM before NVM.
    pub fn copy_to_dram(&self, src: FrameId, dram: &DramPool, dst: DramId) {
        self.latency.charge_read(PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE);
        let mut d = dram.lock_page_mut(dst);
        let s = self.frames[src.index()].read();
        d.copy_from_slice(&**s);
    }

    /// Returns `true` if the two frames hold identical bytes.
    pub fn pages_equal(&self, a: FrameId, b: FrameId) -> bool {
        if a == b {
            return true;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let ga = self.frames[lo.index()].read();
        let gb = self.frames[hi.index()].read();
        **ga == **gb
    }

    /// CRC-32 of the frame's full content — the integrity tag the
    /// checkpoint manager stores alongside each backup page image.
    pub fn page_crc(&self, frame: FrameId) -> u32 {
        self.latency.charge_read(PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE);
        crc32(&**self.frames[frame.index()].read())
    }

    // ------------------------------------------------------------------
    // Media-fault injection (bit rot / poisoned frames). These mutate the
    // media directly — no crash tick, no stats, no durability tracking —
    // exactly like a cosmic ray or a failing cell, not a CPU store.
    // ------------------------------------------------------------------

    /// Flips one bit of `frame` at `byte_off` (media fault, not a store).
    pub fn flip_frame_bit(&self, frame: FrameId, byte_off: usize, bit: u8) {
        self.frames[frame.index()].write()[byte_off] ^= 1 << (bit & 7);
    }

    /// Flips one bit of the metadata arena at `off` (media fault).
    pub fn flip_meta_bit(&self, off: usize, bit: u8) {
        self.meta.flip_bit(off, bit);
    }

    /// Poisons a whole frame with a recognizable rot pattern (media fault).
    pub fn poison_frame(&self, frame: FrameId) {
        self.frames[frame.index()].write().fill(0xDE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashPoint;
    use crate::InjectedCrash;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn dev(frames: usize) -> NvmDevice {
        NvmDevice::new(frames, 1024, Arc::new(LatencyModel::disabled()))
    }

    #[test]
    fn frames_start_zeroed() {
        let d = dev(4);
        let mut p = [0xFFu8; PAGE_SIZE];
        d.read_page(FrameId(0), &mut p);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn partial_read_write() {
        let d = dev(2);
        d.write(FrameId(1), 100, b"treesls");
        let mut b = [0u8; 7];
        d.read(FrameId(1), 100, &mut b);
        assert_eq!(&b, b"treesls");
    }

    #[test]
    fn u64_roundtrip() {
        let d = dev(1);
        d.write_u64(FrameId(0), 8, 0xFEED_FACE);
        assert_eq!(d.read_u64(FrameId(0), 8), 0xFEED_FACE);
    }

    #[test]
    fn copy_frame_both_directions() {
        let d = dev(3);
        d.write(FrameId(0), 0, b"abc");
        d.copy_frame(FrameId(0), FrameId(2));
        assert!(d.pages_equal(FrameId(0), FrameId(2)));
        d.write(FrameId(2), 0, b"xyz");
        d.copy_frame(FrameId(2), FrameId(1));
        let mut b = [0u8; 3];
        d.read(FrameId(1), 0, &mut b);
        assert_eq!(&b, b"xyz");
    }

    #[test]
    #[should_panic(expected = "distinct frames")]
    fn copy_frame_rejects_same_frame() {
        dev(1).copy_frame(FrameId(0), FrameId(0));
    }

    #[test]
    fn dram_round_trip() {
        let d = dev(2);
        let pool = DramPool::new(2);
        let page = pool.alloc().expect("dram page");
        d.write(FrameId(0), 0, b"hot");
        d.copy_to_dram(FrameId(0), &pool, page);
        pool.write(page, 3, b"ter");
        d.copy_from_dram(&pool, page, FrameId(1));
        let mut b = [0u8; 6];
        d.read(FrameId(1), 0, &mut b);
        assert_eq!(&b, b"hotter");
    }

    #[test]
    fn stats_track_copies() {
        let d = dev(2);
        d.copy_frame(FrameId(0), FrameId(1));
        assert_eq!(d.stats().snapshot().page_copies, 1);
    }

    #[test]
    fn concurrent_disjoint_copies() {
        let d = Arc::new(dev(64));
        for i in 0..32u32 {
            d.write(FrameId(i), 0, &i.to_le_bytes());
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in (t..32).step_by(4) {
                    d.copy_frame(FrameId(i as u32), FrameId(32 + i as u32));
                }
            }));
        }
        for h in handles {
            h.join().expect("copier thread");
        }
        for i in 0..32u32 {
            assert!(d.pages_equal(FrameId(i), FrameId(32 + i)));
        }
    }

    #[test]
    fn torn_page_write_applies_prefix_only() {
        let d = dev(2);
        d.crash_schedule().arm(CrashPoint::TornWrite { skip: 0, cut: 2 });
        let page = [0xABu8; PAGE_SIZE];
        let err = catch_unwind(AssertUnwindSafe(|| d.write_page(FrameId(0), &page)))
            .expect_err("torn write must crash");
        assert!(err.is::<InjectedCrash>());
        let mut out = [0u8; PAGE_SIZE];
        d.crash_schedule().disarm();
        d.read_page(FrameId(0), &mut out);
        assert!(out[..128].iter().all(|&b| b == 0xAB), "two lines applied");
        assert!(out[128..].iter().all(|&b| b == 0), "rest never reached media");
    }

    #[test]
    fn adr_settle_reverts_unflushed_lines() {
        let d = dev(2);
        d.set_persist_mode(PersistMode::Adr { reorder_window: 1024 });
        d.write(FrameId(0), 0, &[0x11u8; 128]);
        d.write(FrameId(0), 128, &[0x22u8; 64]);
        // Flush+fence only the first 128 bytes; the third line is pending.
        d.flush_frame(FrameId(0), 0, 128);
        d.fence();
        assert_eq!(d.settle_crash(u64::MAX), 1);
        let mut out = [0u8; PAGE_SIZE];
        d.read_page(FrameId(0), &mut out);
        assert!(out[..128].iter().all(|&b| b == 0x11), "fenced lines survive");
        assert!(out[128..192].iter().all(|&b| b == 0), "pending line reverted");
        d.set_persist_mode(PersistMode::Eadr);
    }

    #[test]
    fn persist_barrier_drains_everything() {
        let d = dev(1);
        d.set_persist_mode(PersistMode::Adr { reorder_window: 1024 });
        d.write(FrameId(0), 0, &[0x33u8; 256]);
        d.persist_barrier();
        assert_eq!(d.settle_crash(u64::MAX), 0);
        let mut out = [0u8; PAGE_SIZE];
        d.read_page(FrameId(0), &mut out);
        assert!(out[..256].iter().all(|&b| b == 0x33));
    }

    #[test]
    fn page_crc_detects_single_bit_rot() {
        let d = dev(1);
        d.write(FrameId(0), 0, b"integrity matters");
        let before = d.page_crc(FrameId(0));
        d.flip_frame_bit(FrameId(0), 5, 3);
        assert_ne!(d.page_crc(FrameId(0)), before);
        d.flip_frame_bit(FrameId(0), 5, 3);
        assert_eq!(d.page_crc(FrameId(0)), before);
    }
}
