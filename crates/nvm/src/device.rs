//! The emulated NVM device: persistent page frames plus the metadata arena.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::crash::CrashSchedule;
use crate::dram::DramPool;
use crate::latency::LatencyModel;
use crate::meta::MetaArena;
use crate::page::{zeroed_page, DramId, FrameId, PageBuf, PAGE_SIZE};
use crate::stats::MemStats;

/// An emulated byte-addressable non-volatile memory device.
///
/// The device owns a fixed array of page frames (the data area handed to the
/// buddy allocator) and a [`MetaArena`] (the global metadata area of
/// Figure 3 of the paper, holding allocator state, the journal and the
/// checkpoint commit record).
///
/// Everything inside an `NvmDevice` survives a simulated power failure: the
/// crash path of the `treesls` facade drops all volatile state and threads
/// only this value (plus the typed backup-object stores, which conceptually
/// live in its slab space) into recovery.
///
/// Frames are individually locked so that non-leader cores can perform
/// speculative stop-and-copy of disjoint pages in parallel with the leader's
/// capability-tree checkpoint, as in step ❸ of the paper's Figure 5. Lock
/// ordering is by ascending frame id (and DRAM-before-NVM for cross-device
/// copies) to keep concurrent page copies deadlock-free.
#[derive(Debug)]
pub struct NvmDevice {
    frames: Vec<RwLock<PageBuf>>,
    meta: MetaArena,
    latency: Arc<LatencyModel>,
    stats: Arc<MemStats>,
    /// Crash-injection schedule shared with the metadata arena: every page
    /// write ticks it *before* mutating the frame, so a scheduled crash
    /// lands between two persistent stores exactly like a power failure.
    crash: Arc<CrashSchedule>,
}

impl NvmDevice {
    /// Creates a device with `frame_count` zeroed page frames and a zeroed
    /// metadata arena of `meta_len` bytes.
    pub fn new(frame_count: usize, meta_len: usize, latency: Arc<LatencyModel>) -> Self {
        let stats = Arc::new(MemStats::new());
        let crash = Arc::new(CrashSchedule::new());
        let frames = (0..frame_count).map(|_| RwLock::new(zeroed_page())).collect();
        let meta =
            MetaArena::new(meta_len, Arc::clone(&latency), Arc::clone(&stats), Arc::clone(&crash));
        Self { frames, meta, latency, stats, crash }
    }

    /// The crash-injection schedule covering this device's whole persistent
    /// write stream (metadata + page frames).
    pub fn crash_schedule(&self) -> &Arc<CrashSchedule> {
        &self.crash
    }

    /// Number of page frames in the data area.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The persistent metadata arena.
    pub fn meta(&self) -> &MetaArena {
        &self.meta
    }

    /// The latency model shared by this device.
    pub fn latency(&self) -> &Arc<LatencyModel> {
        &self.latency
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> &Arc<MemStats> {
        &self.stats
    }

    /// Reads `buf.len()` bytes from `frame` starting at byte `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range `off..off + buf.len()` exceeds the page.
    pub fn read(&self, frame: FrameId, off: usize, buf: &mut [u8]) {
        self.latency.charge_read(buf.len());
        self.stats.record_read(buf.len());
        let g = self.frames[frame.index()].read();
        buf.copy_from_slice(&g[off..off + buf.len()]);
    }

    /// Writes `data` into `frame` starting at byte `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn write(&self, frame: FrameId, off: usize, data: &[u8]) {
        self.latency.charge_write(data.len());
        self.stats.record_write(data.len());
        self.crash.on_page_write();
        let mut g = self.frames[frame.index()].write();
        g[off..off + data.len()].copy_from_slice(data);
    }

    /// Reads a little-endian `u64` at byte `off` of `frame`.
    pub fn read_u64(&self, frame: FrameId, off: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(frame, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at byte `off` of `frame`.
    pub fn write_u64(&self, frame: FrameId, off: usize, v: u64) {
        self.write(frame, off, &v.to_le_bytes());
    }

    /// Copies the full content of `frame` into `out`.
    pub fn read_page(&self, frame: FrameId, out: &mut [u8; PAGE_SIZE]) {
        self.latency.charge_read(PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE);
        out.copy_from_slice(&**self.frames[frame.index()].read());
    }

    /// Overwrites the full content of `frame` from `data`.
    pub fn write_page(&self, frame: FrameId, data: &[u8; PAGE_SIZE]) {
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.crash.on_page_write();
        self.frames[frame.index()].write().copy_from_slice(data);
    }

    /// Zeroes the full content of `frame`.
    pub fn zero_page(&self, frame: FrameId) {
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.crash.on_page_write();
        self.frames[frame.index()].write().fill(0);
    }

    /// Copies one NVM page to another NVM page (`src` → `dst`).
    ///
    /// Locks are taken in ascending frame-id order so concurrent disjoint
    /// copies cannot deadlock.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn copy_frame(&self, src: FrameId, dst: FrameId) {
        assert_ne!(src, dst, "copy_frame requires distinct frames");
        self.latency.charge_read(PAGE_SIZE);
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.stats.record_page_copy();
        self.crash.on_page_write();
        if src < dst {
            let s = self.frames[src.index()].read();
            let mut d = self.frames[dst.index()].write();
            d.copy_from_slice(&**s);
        } else {
            let mut d = self.frames[dst.index()].write();
            let s = self.frames[src.index()].read();
            d.copy_from_slice(&**s);
        }
    }

    /// Copies a DRAM page into an NVM frame (`src` → `dst`).
    ///
    /// Cross-device lock order is DRAM before NVM.
    pub fn copy_from_dram(&self, dram: &DramPool, src: DramId, dst: FrameId) {
        self.latency.charge_write(PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE);
        self.stats.record_page_copy();
        self.crash.on_page_write();
        let s = dram.lock_page(src);
        let mut d = self.frames[dst.index()].write();
        d.copy_from_slice(&s[..]);
    }

    /// Copies an NVM frame into a DRAM page (`src` → `dst`).
    ///
    /// Cross-device lock order is DRAM before NVM.
    pub fn copy_to_dram(&self, src: FrameId, dram: &DramPool, dst: DramId) {
        self.latency.charge_read(PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE);
        let mut d = dram.lock_page_mut(dst);
        let s = self.frames[src.index()].read();
        d.copy_from_slice(&**s);
    }

    /// Returns `true` if the two frames hold identical bytes.
    pub fn pages_equal(&self, a: FrameId, b: FrameId) -> bool {
        if a == b {
            return true;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let ga = self.frames[lo.index()].read();
        let gb = self.frames[hi.index()].read();
        **ga == **gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(frames: usize) -> NvmDevice {
        NvmDevice::new(frames, 1024, Arc::new(LatencyModel::disabled()))
    }

    #[test]
    fn frames_start_zeroed() {
        let d = dev(4);
        let mut p = [0xFFu8; PAGE_SIZE];
        d.read_page(FrameId(0), &mut p);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn partial_read_write() {
        let d = dev(2);
        d.write(FrameId(1), 100, b"treesls");
        let mut b = [0u8; 7];
        d.read(FrameId(1), 100, &mut b);
        assert_eq!(&b, b"treesls");
    }

    #[test]
    fn u64_roundtrip() {
        let d = dev(1);
        d.write_u64(FrameId(0), 8, 0xFEED_FACE);
        assert_eq!(d.read_u64(FrameId(0), 8), 0xFEED_FACE);
    }

    #[test]
    fn copy_frame_both_directions() {
        let d = dev(3);
        d.write(FrameId(0), 0, b"abc");
        d.copy_frame(FrameId(0), FrameId(2));
        assert!(d.pages_equal(FrameId(0), FrameId(2)));
        d.write(FrameId(2), 0, b"xyz");
        d.copy_frame(FrameId(2), FrameId(1));
        let mut b = [0u8; 3];
        d.read(FrameId(1), 0, &mut b);
        assert_eq!(&b, b"xyz");
    }

    #[test]
    #[should_panic(expected = "distinct frames")]
    fn copy_frame_rejects_same_frame() {
        dev(1).copy_frame(FrameId(0), FrameId(0));
    }

    #[test]
    fn dram_round_trip() {
        let d = dev(2);
        let pool = DramPool::new(2);
        let page = pool.alloc().expect("dram page");
        d.write(FrameId(0), 0, b"hot");
        d.copy_to_dram(FrameId(0), &pool, page);
        pool.write(page, 3, b"ter");
        d.copy_from_dram(&pool, page, FrameId(1));
        let mut b = [0u8; 6];
        d.read(FrameId(1), 0, &mut b);
        assert_eq!(&b, b"hotter");
    }

    #[test]
    fn stats_track_copies() {
        let d = dev(2);
        d.copy_frame(FrameId(0), FrameId(1));
        assert_eq!(d.stats().snapshot().page_copies, 1);
    }

    #[test]
    fn concurrent_disjoint_copies() {
        let d = Arc::new(dev(64));
        for i in 0..32u32 {
            d.write(FrameId(i), 0, &i.to_le_bytes());
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in (t..32).step_by(4) {
                    d.copy_frame(FrameId(i as u32), FrameId(32 + i as u32));
                }
            }));
        }
        for h in handles {
            h.join().expect("copier thread");
        }
        for i in 0..32u32 {
            assert!(d.pages_equal(FrameId(i), FrameId(32 + i)));
        }
    }
}
