//! Access counters for the emulated memory devices.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative access statistics for a device.
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics; they are read by the benchmark harness after a run, never used
/// for synchronization.
#[derive(Debug, Default)]
pub struct MemStats {
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Whole-page copies performed on this device (as destination).
    pub page_copies: AtomicU64,
    /// Pages currently allocated (incremented by owners, not the device).
    pub pages_allocated: AtomicU64,
}

impl MemStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a write of `n` bytes.
    #[inline]
    pub fn record_write(&self, n: usize) {
        self.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records a read of `n` bytes.
    #[inline]
    pub fn record_read(&self, n: usize) {
        self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one whole-page copy landing on this device.
    #[inline]
    pub fn record_page_copy(&self) {
        self.page_copies.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns a point-in-time snapshot of the counters.
    pub fn snapshot(&self) -> MemStatsSnapshot {
        MemStatsSnapshot {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            page_copies: self.page_copies.load(Ordering::Relaxed),
            pages_allocated: self.pages_allocated.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`MemStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStatsSnapshot {
    /// Total bytes written at snapshot time.
    pub bytes_written: u64,
    /// Total bytes read at snapshot time.
    pub bytes_read: u64,
    /// Whole-page copies at snapshot time.
    pub page_copies: u64,
    /// Pages allocated at snapshot time.
    pub pages_allocated: u64,
}

impl MemStatsSnapshot {
    /// Returns the difference `self - earlier` field-wise.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is a later snapshot (counters are
    /// monotonic, so subtraction must not underflow).
    pub fn since(&self, earlier: &MemStatsSnapshot) -> MemStatsSnapshot {
        MemStatsSnapshot {
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            page_copies: self.page_copies - earlier.page_copies,
            pages_allocated: self.pages_allocated.saturating_sub(earlier.pages_allocated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = MemStats::new();
        s.record_write(100);
        s.record_write(28);
        s.record_read(4096);
        s.record_page_copy();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_written, 128);
        assert_eq!(snap.bytes_read, 4096);
        assert_eq!(snap.page_copies, 1);
    }

    #[test]
    fn snapshot_difference() {
        let s = MemStats::new();
        s.record_write(10);
        let a = s.snapshot();
        s.record_write(5);
        s.record_read(7);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_written, 5);
        assert_eq!(d.bytes_read, 7);
    }
}
