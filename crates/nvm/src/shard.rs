//! Lock-sharded wrapper around [`ObjectStore`].
//!
//! The checkpoint leader used to serialize every ORoot/backup access of a
//! round behind one global mutex — held across the whole tree walk, so
//! offloading independent backup-record builds to the quiesced non-leader
//! cores was impossible and the lock hold time grew with the store. A
//! [`ShardedStore`] splits the arena into `N` independently locked shards;
//! each operation locks exactly one shard for the duration of that
//! operation, so concurrent workers touching different records proceed in
//! parallel and contention is observable (a counter increments whenever a
//! lock was not immediately available).
//!
//! Mutation is confined to the checkpoint/restore critical sections (the
//! leader plus its offload workers). That confinement is what keeps the
//! non-snapshot iterators sound under **partial quiescence**, where free
//! cores keep running user code while the walk iterates — free cores
//! route conflicting page writes through the epoch fence and never touch
//! these arenas directly.
//!
//! Shard membership is encoded in the [`SlotId`] itself (high bits of the
//! 32-bit index), so ids remain plain, `to_raw`-persistable values and a
//! record's shard can be recomputed from its id alone — nothing about the
//! on-NVM id format changes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::store::{ObjectStore, SlotId};

/// Bit position where the shard index lives inside `SlotId::index`.
/// Leaves 2²⁸ slots per shard and up to 16 shards.
const SHARD_SHIFT: u32 = 28;
/// Mask extracting the per-shard local index.
const LOCAL_MASK: u32 = (1 << SHARD_SHIFT) - 1;

/// Default shard count (must be a power-of-two-free value ≤ 16; 8 keeps
/// per-shard contention negligible at the core counts the bench sweeps).
pub const DEFAULT_SHARDS: usize = 8;

/// A sharded generational arena: `N` independent [`ObjectStore`]s, each
/// behind its own short-held mutex.
#[derive(Debug)]
pub struct ShardedStore<T> {
    shards: Vec<Mutex<ObjectStore<T>>>,
    /// Round-robin insertion cursor (spreads records across shards).
    next: AtomicUsize,
    /// Times a shard lock was not immediately available.
    contention: AtomicU64,
}

impl<T> Default for ShardedStore<T> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl<T> ShardedStore<T> {
    /// Creates an empty store with `n` shards (1 ≤ n ≤ 16).
    pub fn new(n: usize) -> Self {
        assert!((1..=16).contains(&n), "shard count must be in 1..=16");
        Self {
            shards: (0..n).map(|_| Mutex::new(ObjectStore::new())).collect(),
            next: AtomicUsize::new(0),
            contention: AtomicU64::new(0),
        }
    }

    /// Rebuilds a store from per-shard arenas (recovery path). The vector
    /// must have the same length (and ordering) `take_shards` produced.
    pub fn from_shards(shards: Vec<ObjectStore<T>>) -> Self {
        assert!((1..=16).contains(&shards.len()), "shard count must be in 1..=16");
        Self {
            shards: shards.into_iter().map(Mutex::new).collect(),
            next: AtomicUsize::new(0),
            contention: AtomicU64::new(0),
        }
    }

    /// Detaches all shard arenas (crash path: the persistent image moves
    /// to the recovery side). The store is left empty but usable.
    pub fn take_shards(&self) -> Vec<ObjectStore<T>> {
        self.shards.iter().map(|s| std::mem::take(&mut *self.lock(s))).collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Times any shard lock was found contended since creation.
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    fn lock<'a>(&'a self, m: &'a Mutex<ObjectStore<T>>) -> parking_lot::MutexGuard<'a, ObjectStore<T>> {
        match m.try_lock() {
            Some(g) => g,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                m.lock()
            }
        }
    }

    fn shard_of(&self, id: SlotId) -> Option<&Mutex<ObjectStore<T>>> {
        self.shards.get((id.index() >> SHARD_SHIFT) as usize)
    }

    /// Translates a public id to the shard-local id.
    fn local(id: SlotId) -> SlotId {
        SlotId::from_raw(id.to_raw() & !u64::from(!LOCAL_MASK))
    }

    /// Translates a shard-local id to the public (shard-tagged) id.
    fn global(shard: usize, id: SlotId) -> SlotId {
        debug_assert_eq!(id.index() & !LOCAL_MASK, 0, "shard exceeded 2^28 slots");
        SlotId::from_raw(id.to_raw() | ((shard as u64) << SHARD_SHIFT))
    }

    /// Inserts a record into the next round-robin shard.
    pub fn insert(&self, val: T) -> SlotId {
        let s = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let local = self.lock(&self.shards[s]).insert(val);
        Self::global(s, local)
    }

    /// Removes a record, returning it if `id` was live.
    pub fn remove(&self, id: SlotId) -> Option<T> {
        let shard = self.shard_of(id)?;
        self.lock(shard).remove(Self::local(id))
    }

    /// Returns `true` if `id` refers to a live record.
    pub fn contains(&self, id: SlotId) -> bool {
        self.shard_of(id).is_some_and(|s| self.lock(s).contains(Self::local(id)))
    }

    /// Runs `f` on a shared reference to the record, if live.
    pub fn with<R>(&self, id: SlotId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let shard = self.shard_of(id)?;
        let guard = self.lock(shard);
        guard.get(Self::local(id)).map(f)
    }

    /// Runs `f` on an exclusive reference to the record, if live.
    pub fn with_mut<R>(&self, id: SlotId, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let shard = self.shard_of(id)?;
        let mut guard = self.lock(shard);
        guard.get_mut(Self::local(id)).map(f)
    }

    /// Clones the record out, if live.
    pub fn get_cloned(&self, id: SlotId) -> Option<T>
    where
        T: Clone,
    {
        self.with(id, T::clone)
    }

    /// Number of live records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).len()).sum()
    }

    /// Returns `true` if no shard holds a record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every live record, one shard lock at a time. The traversal
    /// is not a snapshot: records inserted into already-visited shards
    /// during the walk are missed. Callers must confine concurrent
    /// inserts to the checkpoint critical section itself (the leader and
    /// its offload workers) — under partial quiescence the machine is
    /// *not* globally stopped during the walk, and the free cores stay
    /// safe only because nothing outside that section mutates the store.
    pub fn for_each(&self, mut f: impl FnMut(SlotId, &T)) {
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = self.lock(shard);
            for (id, v) in guard.iter() {
                f(Self::global(s, id), v);
            }
        }
    }

    /// Visits every live record mutably, one shard lock at a time.
    pub fn for_each_mut(&self, mut f: impl FnMut(SlotId, &mut T)) {
        for (s, shard) in self.shards.iter().enumerate() {
            let mut guard = self.lock(shard);
            for (id, v) in guard.iter_mut() {
                f(Self::global(s, id), v);
            }
        }
    }

    /// Ids of every live record (one shard lock at a time).
    pub fn ids(&self) -> Vec<SlotId> {
        let mut out = Vec::new();
        self.for_each(|id, _| out.push(id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_spreads_and_roundtrips() {
        let s: ShardedStore<u32> = ShardedStore::new(4);
        let ids: Vec<_> = (0..16u32).map(|i| s.insert(i)).collect();
        assert_eq!(s.len(), 16);
        // Round-robin puts consecutive inserts in different shards.
        assert_ne!(ids[0].index() >> SHARD_SHIFT, ids[1].index() >> SHARD_SHIFT);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(s.get_cloned(*id), Some(i as u32));
        }
    }

    #[test]
    fn ids_survive_raw_roundtrip() {
        let s: ShardedStore<&str> = ShardedStore::new(8);
        let id = s.insert("x");
        let back = SlotId::from_raw(id.to_raw());
        assert_eq!(s.get_cloned(back), Some("x"));
    }

    #[test]
    fn remove_and_generational_safety() {
        let s: ShardedStore<u32> = ShardedStore::new(2);
        let a = s.insert(1);
        assert_eq!(s.remove(a), Some(1));
        assert_eq!(s.remove(a), None);
        assert!(!s.contains(a));
        // Fill until the same shard slot is reused; the stale id must not
        // alias.
        let b = loop {
            let b = s.insert(2);
            if b.index() == a.index() {
                break b;
            }
        };
        assert_ne!(a, b);
        assert_eq!(s.get_cloned(a), None);
        assert_eq!(s.get_cloned(b), Some(2));
    }

    #[test]
    fn with_mut_mutates_in_place() {
        let s: ShardedStore<Vec<u8>> = ShardedStore::new(3);
        let id = s.insert(vec![1]);
        s.with_mut(id, |v| v.push(2)).unwrap();
        assert_eq!(s.get_cloned(id), Some(vec![1, 2]));
    }

    #[test]
    fn for_each_sees_all_live() {
        let s: ShardedStore<u32> = ShardedStore::new(5);
        let ids: Vec<_> = (0..20u32).map(|i| s.insert(i)).collect();
        s.remove(ids[3]);
        let mut seen: Vec<u32> = Vec::new();
        s.for_each(|id, v| {
            assert!(s1_local_matches(id));
            seen.push(*v);
        });
        seen.sort();
        let expect: Vec<u32> = (0..20).filter(|&i| i != 3).collect();
        assert_eq!(seen, expect);
        assert_eq!(s.ids().len(), 19);
    }

    fn s1_local_matches(id: SlotId) -> bool {
        (id.index() >> SHARD_SHIFT) < 16
    }

    #[test]
    fn take_and_rebuild_preserves_ids() {
        let s: ShardedStore<u32> = ShardedStore::new(4);
        let ids: Vec<_> = (0..10u32).map(|i| s.insert(i)).collect();
        let shards = s.take_shards();
        assert!(s.is_empty());
        let r = ShardedStore::from_shards(shards);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(r.get_cloned(*id), Some(i as u32));
        }
    }

    #[test]
    fn concurrent_access_counts_contention() {
        use std::sync::Arc;
        let s: Arc<ShardedStore<u64>> = Arc::new(ShardedStore::new(1));
        let id = s.insert(0);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..5000 {
                        s.with_mut(id, |v| *v += 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.get_cloned(id), Some(20_000));
    }
}
