//! Generational slot arena for persistent typed records.
//!
//! The checkpoint manager stores backup kernel objects in slab space on NVM.
//! In this reproduction those records are typed Rust values rather than raw
//! bytes (see DESIGN.md, "Reproduction strategy"); [`ObjectStore`] provides
//! the stable-identity arena they live in. An `ObjectStore` placed on the
//! persistent side of the machine survives crashes together with the
//! [`NvmDevice`](crate::NvmDevice); one placed on the volatile side is
//! dropped, mirroring the runtime/backup split of the capability tree.
//!
//! Identifiers are generational: a [`SlotId`] from a removed entry never
//! aliases a later insertion, which turns use-after-free of kernel object
//! references into a detectable `None` instead of silent corruption.

/// Identifier of a record in an [`ObjectStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId {
    index: u32,
    gen: u32,
}

impl SlotId {
    /// A sentinel id that is never live in any store.
    pub const INVALID: SlotId = SlotId { index: u32::MAX, gen: u32::MAX };

    /// Packs the id into a `u64` (for persistence in NVM byte areas).
    pub fn to_raw(self) -> u64 {
        ((self.gen as u64) << 32) | self.index as u64
    }

    /// Unpacks an id previously produced by [`to_raw`](Self::to_raw).
    pub fn from_raw(raw: u64) -> SlotId {
        SlotId { index: raw as u32, gen: (raw >> 32) as u32 }
    }

    /// Returns the slot index (diagnostics only; not stable across removal).
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A generational arena with stable identifiers.
#[derive(Debug)]
pub struct ObjectStore<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for ObjectStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ObjectStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a record and returns its id.
    pub fn insert(&mut self, val: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            SlotId { index, gen: slot.gen }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot { gen: 0, val: Some(val) });
            SlotId { index, gen: 0 }
        }
    }

    /// Removes a record, returning it if `id` was live.
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen || slot.val.is_none() {
            return None;
        }
        let val = slot.val.take();
        // Bump the generation so stale ids cannot alias the next insert.
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        val
    }

    /// Returns a shared reference to the record, if live.
    pub fn get(&self, id: SlotId) -> Option<&T> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen == id.gen {
            slot.val.as_ref()
        } else {
            None
        }
    }

    /// Returns an exclusive reference to the record, if live.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen == id.gen {
            slot.val.as_mut()
        } else {
            None
        }
    }

    /// Returns `true` if `id` refers to a live record.
    pub fn contains(&self, id: SlotId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates over `(id, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val.as_ref().map(|v| (SlotId { index: i as u32, gen: s.gen }, v))
        })
    }

    /// Iterates mutably over `(id, record)` pairs of live records.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SlotId, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let gen = s.gen;
            s.val.as_mut().map(move |v| (SlotId { index: i as u32, gen }, v))
        })
    }

    /// Removes every record, keeping capacity.
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.val.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = ObjectStore::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_id_does_not_alias() {
        let mut s = ObjectStore::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // The slot index is reused but the generation differs.
        assert_eq!(b.index(), a.index());
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&2));
        assert_eq!(s.remove(a), None);
    }

    #[test]
    fn raw_roundtrip() {
        let mut s = ObjectStore::new();
        let a = s.insert(());
        s.remove(a);
        let b = s.insert(());
        assert_eq!(SlotId::from_raw(b.to_raw()), b);
        assert_ne!(SlotId::from_raw(a.to_raw()), b);
    }

    #[test]
    fn iter_sees_only_live() {
        let mut s = ObjectStore::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        s.remove(a);
        let vals: Vec<i32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![20]);
    }

    #[test]
    fn get_mut_mutates() {
        let mut s = ObjectStore::new();
        let a = s.insert(vec![1]);
        s.get_mut(a).unwrap().push(2);
        assert_eq!(s.get(a), Some(&vec![1, 2]));
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut s = ObjectStore::new();
        let ids: Vec<_> = (0..10).map(|i| s.insert(i)).collect();
        s.clear();
        assert!(s.is_empty());
        for id in ids {
            assert!(!s.contains(id));
        }
        // Reuse after clear works.
        let x = s.insert(99);
        assert_eq!(s.get(x), Some(&99));
    }

    #[test]
    fn invalid_sentinel_is_never_live() {
        let mut s = ObjectStore::new();
        for i in 0..100 {
            s.insert(i);
        }
        assert!(!s.contains(SlotId::INVALID));
    }
}
