//! Page-granule primitives shared by the NVM and DRAM devices.

/// Size of a physical memory page in bytes.
///
/// TreeSLS checkpoints, copies and migrates memory at page granularity,
/// matching the 4 KiB base pages of the paper's x86-64 testbed.
pub const PAGE_SIZE: usize = 4096;

/// A page-sized byte buffer.
///
/// Boxed so that page pools of hundreds of thousands of frames do not blow
/// the stack and so individual pages can be moved cheaply.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    // A `vec!` round-trip avoids a 4 KiB stack temporary.
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap_or_else(|_| unreachable!())
}

/// Identifier of a physical page frame on the NVM device.
///
/// Frame ids index into the device's frame array; they are stable for the
/// lifetime of the device and survive crashes (NVM is persistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

impl FrameId {
    /// Returns the frame id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a page in the volatile DRAM pool.
///
/// DRAM ids are only meaningful while the machine is powered: a crash drops
/// the whole pool and any `DramId` held across it is invalid by construction
/// (the recovery path never sees one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DramId(pub u32);

impl DramId {
    /// Returns the DRAM page id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = zeroed_page();
        assert!(p.iter().all(|&b| b == 0));
        assert_eq!(p.len(), PAGE_SIZE);
    }

    #[test]
    fn frame_id_roundtrip() {
        assert_eq!(FrameId(7).index(), 7);
        assert_eq!(DramId(9).index(), 9);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(FrameId(1) < FrameId(2));
        assert!(DramId(0) < DramId(10));
    }
}
