//! The crash-schedule engine: deterministic whole-stack fault injection.
//!
//! TreeSLS's correctness claim (§4.2/§4.3.3 of the paper) is that a power
//! failure at *any* instant restores the last committed checkpoint exactly.
//! This module generalizes the old metadata-only write fuse into a
//! [`CrashSchedule`] shared by the metadata arena and the page-frame device,
//! so a simulated crash can be scheduled at:
//!
//! * the Nth **metadata** write ([`CrashPoint::MetaWrite`]),
//! * the Nth **page-frame** write ([`CrashPoint::PageWrite`]),
//! * the Nth NVM write of **either** kind ([`CrashPoint::AnyWrite`]) — the
//!   unit the exhaustive enumerator sweeps over, or
//! * the Nth hit of a named **crash site** ([`CrashPoint::Site`]) — semantic
//!   hooks like `ckpt.pre_commit` placed throughout the checkpoint manager,
//!   allocator journal and external-synchrony callbacks via the
//!   [`crash_site!`](crate::crash_site) macro.
//!
//! The schedule panics with [`InjectedCrash`] *before* the triggering write
//! mutates NVM, exactly like a power failure between two stores. Drivers
//! catch the panic (`catch_unwind`), discard all volatile state through the
//! normal `crash()` path, and run recovery. A site trace can be recorded so
//! a failing write index can be reported alongside the nearest semantic
//! site, making failures reproducible from `(scenario, write index)` alone.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

/// Panic payload used by the crash-injection fuse.
///
/// Tests match on this to distinguish an injected crash from a real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash;

/// Where in the persistent write stream a crash is scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash on the metadata-arena write after `skip` more metadata writes
    /// (i.e. `skip` writes succeed, the next one powers off).
    MetaWrite(u64),
    /// Crash on the page-frame write after `skip` more page writes.
    PageWrite(u64),
    /// Crash on the NVM write (of either kind) after `skip` more writes.
    AnyWrite(u64),
    /// Crash at the `skip + 1`th hit of the named crash site.
    Site {
        /// Site name, e.g. `"ckpt.pre_commit"`.
        name: String,
        /// Number of matching hits to let pass before crashing.
        skip: u64,
    },
}

/// Trigger class currently armed (packed into an `AtomicU8`).
const KIND_NONE: u8 = 0;
const KIND_META: u8 = 1;
const KIND_PAGE: u8 = 2;
const KIND_ANY: u8 = 3;
const KIND_SITE: u8 = 4;

/// One recorded crash-site hit, for trace-assisted reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteHit {
    /// The site's name.
    pub name: &'static str,
    /// Total NVM writes (meta + page) performed before this hit.
    pub writes_before: u64,
}

/// Cumulative NVM write counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteCounts {
    /// Metadata-arena writes.
    pub meta: u64,
    /// Page-frame writes.
    pub page: u64,
}

impl WriteCounts {
    /// Total writes of both kinds.
    pub fn total(&self) -> u64 {
        self.meta + self.page
    }
}

/// The per-device crash schedule.
///
/// One instance is shared by a device's [`MetaArena`](crate::MetaArena) and
/// its page-frame write paths; kernel-level code reaches it through
/// `NvmDevice::crash_schedule`. All operations are cheap atomics when the
/// schedule is disarmed and not tracing, so production paths pay one relaxed
/// load per write.
#[derive(Debug, Default)]
pub struct CrashSchedule {
    kind: AtomicU8,
    /// Matching events left before the crash fires.
    fuse: AtomicU64,
    /// Site-name filter for [`CrashPoint::Site`].
    site: Mutex<Option<String>>,
    meta_writes: AtomicU64,
    page_writes: AtomicU64,
    /// When `Some`, every site hit is appended (enumeration dry runs).
    trace: Mutex<Option<Vec<SiteHit>>>,
}

impl CrashSchedule {
    /// Creates a disarmed schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the schedule. Any previously armed point is replaced.
    pub fn arm(&self, point: CrashPoint) {
        // Order matters: publish the fuse and filter before the kind so a
        // concurrent write cannot observe a half-armed schedule.
        match point {
            CrashPoint::MetaWrite(skip) => {
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_META, Ordering::SeqCst);
            }
            CrashPoint::PageWrite(skip) => {
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_PAGE, Ordering::SeqCst);
            }
            CrashPoint::AnyWrite(skip) => {
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_ANY, Ordering::SeqCst);
            }
            CrashPoint::Site { name, skip } => {
                *self.site.lock() = Some(name);
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_SITE, Ordering::SeqCst);
            }
        }
    }

    /// Disarms the schedule (recovery paths call this before touching NVM).
    pub fn disarm(&self) {
        self.kind.store(KIND_NONE, Ordering::SeqCst);
        *self.site.lock() = None;
    }

    /// Returns `true` if a crash point is currently armed.
    pub fn armed(&self) -> bool {
        self.kind.load(Ordering::SeqCst) != KIND_NONE
    }

    /// Current write counters.
    pub fn counts(&self) -> WriteCounts {
        WriteCounts {
            meta: self.meta_writes.load(Ordering::SeqCst),
            page: self.page_writes.load(Ordering::SeqCst),
        }
    }

    /// Starts recording crash-site hits (replacing any previous trace).
    pub fn start_trace(&self) {
        *self.trace.lock() = Some(Vec::new());
    }

    /// Stops recording and returns the collected trace.
    pub fn take_trace(&self) -> Vec<SiteHit> {
        self.trace.lock().take().unwrap_or_default()
    }

    /// Decrements the fuse; panics with [`InjectedCrash`] when it runs out.
    fn burn(&self) {
        // fetch_update keeps concurrent writers from double-spending one
        // remaining unit; exactly one of them observes zero and crashes.
        let fired = self
            .fuse
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_err();
        if fired {
            self.kind.store(KIND_NONE, Ordering::SeqCst);
            std::panic::panic_any(InjectedCrash);
        }
    }

    /// Called by the metadata arena before each write mutates the arena.
    #[inline]
    pub fn on_meta_write(&self) {
        self.meta_writes.fetch_add(1, Ordering::Relaxed);
        match self.kind.load(Ordering::Relaxed) {
            KIND_META | KIND_ANY => self.burn(),
            _ => {}
        }
    }

    /// Called by the device before each page-frame write mutates the frame.
    #[inline]
    pub fn on_page_write(&self) {
        self.page_writes.fetch_add(1, Ordering::Relaxed);
        match self.kind.load(Ordering::Relaxed) {
            KIND_PAGE | KIND_ANY => self.burn(),
            _ => {}
        }
    }

    /// Named crash-site hook; use via [`crash_site!`](crate::crash_site).
    ///
    /// Records the hit when tracing, and fires the fuse when armed with a
    /// matching [`CrashPoint::Site`].
    pub fn site(&self, name: &'static str) {
        if let Some(trace) = self.trace.lock().as_mut() {
            trace.push(SiteHit { name, writes_before: self.counts().total() });
        }
        if self.kind.load(Ordering::Relaxed) == KIND_SITE {
            let matches = self.site.lock().as_deref() == Some(name);
            if matches {
                self.burn();
            }
        }
    }
}

/// Declares a named crash site on a [`CrashSchedule`].
///
/// ```ignore
/// crash_site!(kernel.pers.dev.crash_schedule(), "ckpt.pre_commit");
/// ```
///
/// Expands to a plain [`CrashSchedule::site`] call; the macro exists so
/// sites are grep-able as a class and can later grow cfg-gating without
/// touching every call site.
#[macro_export]
macro_rules! crash_site {
    ($sched:expr, $name:literal) => {
        $sched.site($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn crashes(f: impl FnOnce()) -> bool {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => false,
            Err(e) => {
                assert!(e.is::<InjectedCrash>(), "panic must be the injected crash");
                true
            }
        }
    }

    #[test]
    fn meta_fuse_fires_after_skip() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::MetaWrite(2));
        assert!(!crashes(|| s.on_meta_write()));
        assert!(!crashes(|| s.on_meta_write()));
        assert!(crashes(|| s.on_meta_write()));
        // Fired fuse disarms itself.
        assert!(!s.armed());
        assert!(!crashes(|| s.on_meta_write()));
    }

    #[test]
    fn page_and_any_classes() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::PageWrite(0));
        assert!(!crashes(|| s.on_meta_write()), "meta writes don't burn a page fuse");
        assert!(crashes(|| s.on_page_write()));

        s.arm(CrashPoint::AnyWrite(1));
        assert!(!crashes(|| s.on_meta_write()));
        assert!(crashes(|| s.on_page_write()));
    }

    #[test]
    fn site_fuse_matches_by_name() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::Site { name: "ckpt.pre_commit".into(), skip: 1 });
        assert!(!crashes(|| crash_site!(s, "ckpt.post_commit")), "other sites pass");
        assert!(!crashes(|| crash_site!(s, "ckpt.pre_commit")), "skip=1 lets one pass");
        assert!(crashes(|| crash_site!(s, "ckpt.pre_commit")));
    }

    #[test]
    fn counters_and_trace() {
        let s = CrashSchedule::new();
        s.start_trace();
        s.on_meta_write();
        s.on_page_write();
        s.on_page_write();
        crash_site!(s, "here");
        let c = s.counts();
        assert_eq!((c.meta, c.page, c.total()), (1, 2, 3));
        let trace = s.take_trace();
        assert_eq!(trace, vec![SiteHit { name: "here", writes_before: 3 }]);
        // Trace is consumed.
        assert!(s.take_trace().is_empty());
    }

    #[test]
    fn disarm_clears_pending_point() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::AnyWrite(0));
        s.disarm();
        assert!(!crashes(|| s.on_page_write()));
    }
}
