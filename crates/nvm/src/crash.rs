//! The crash-schedule engine: deterministic whole-stack fault injection.
//!
//! TreeSLS's correctness claim (§4.2/§4.3.3 of the paper) is that a power
//! failure at *any* instant restores the last committed checkpoint exactly.
//! This module generalizes the old metadata-only write fuse into a
//! [`CrashSchedule`] shared by the metadata arena and the page-frame device,
//! so a simulated crash can be scheduled at:
//!
//! * the Nth **metadata** write ([`CrashPoint::MetaWrite`]),
//! * the Nth **page-frame** write ([`CrashPoint::PageWrite`]),
//! * the Nth NVM write of **either** kind ([`CrashPoint::AnyWrite`]) — the
//!   unit the exhaustive enumerator sweeps over,
//! * *mid-way through* the Nth NVM write ([`CrashPoint::TornWrite`]) — the
//!   write is applied only up to a chosen cache-line boundary, modelling
//!   the 64 B tear granularity of real persistent memory, or
//! * the Nth hit of a named **crash site** ([`CrashPoint::Site`]) — semantic
//!   hooks like `ckpt.pre_commit` placed throughout the checkpoint manager,
//!   allocator journal and external-synchrony callbacks via the
//!   [`crash_site!`](crate::crash_site) macro.
//!
//! For clean crash points the schedule panics with [`InjectedCrash`]
//! *before* the triggering write mutates NVM, exactly like a power failure
//! between two stores. For torn points the write path first applies the
//! prefix the schedule hands back in [`WriteFate::Torn`], then calls
//! [`CrashSchedule::crash_now`]. Drivers catch the panic (`catch_unwind`),
//! discard all volatile state through the normal `crash()` path, and run
//! recovery. A site trace can be recorded so a failing write index can be
//! reported alongside the nearest semantic site, and a *write trace*
//! records the `(kind, off, len)` of every NVM write so the torn
//! enumerator can compute how many distinct 64 B tear classes each write
//! admits.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

use crate::persist::CACHE_LINE;

/// Panic payload used by the crash-injection fuse.
///
/// Tests match on this to distinguish an injected crash from a real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash;

/// Where in the persistent write stream a crash is scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash on the metadata-arena write after `skip` more metadata writes
    /// (i.e. `skip` writes succeed, the next one powers off).
    MetaWrite(u64),
    /// Crash on the page-frame write after `skip` more page writes.
    PageWrite(u64),
    /// Crash on the NVM write (of either kind) after `skip` more writes.
    AnyWrite(u64),
    /// Crash *mid-way through* the NVM write (of either kind) after `skip`
    /// more writes: the write is applied only up to its `cut`-th interior
    /// 64 B cache-line boundary (`cut == 0` applies nothing, reproducing
    /// the clean [`AnyWrite`](Self::AnyWrite) semantics), then the fuse
    /// fires.
    TornWrite {
        /// Number of writes (of either kind) to let pass untouched.
        skip: u64,
        /// Tear class: how many interior cache-line boundaries of the
        /// targeted write are applied before the power fails.
        cut: u32,
    },
    /// Crash at the `skip + 1`th hit of the named crash site.
    Site {
        /// Site name, e.g. `"ckpt.pre_commit"`.
        name: String,
        /// Number of matching hits to let pass before crashing.
        skip: u64,
    },
}

/// What a write path must do with the triggering write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFate {
    /// Apply the write in full.
    Apply,
    /// Apply only the first `keep` bytes (ending on an absolute cache-line
    /// boundary), then call [`CrashSchedule::crash_now`]. `keep == 0`
    /// means the write never reached media at all.
    Torn {
        /// Bytes of the write to apply before powering off.
        keep: usize,
    },
}

/// Trigger class currently armed (packed into an `AtomicU8`).
const KIND_NONE: u8 = 0;
const KIND_META: u8 = 1;
const KIND_PAGE: u8 = 2;
const KIND_ANY: u8 = 3;
const KIND_SITE: u8 = 4;
const KIND_TORN: u8 = 5;

/// One recorded crash-site hit, for trace-assisted reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteHit {
    /// The site's name.
    pub name: &'static str,
    /// Total NVM writes (meta + page) performed before this hit.
    pub writes_before: u64,
}

/// Which space an NVM write targeted (for the write trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Metadata-arena write.
    Meta,
    /// Page-frame write.
    Page,
}

/// One recorded NVM write, for torn-crash enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRec {
    /// Meta or page write.
    pub kind: WriteKind,
    /// Byte offset within its space (frame-relative for page writes).
    pub off: usize,
    /// Length in bytes.
    pub len: usize,
}

impl WriteRec {
    /// Number of distinct *partial* tear classes this write admits beyond
    /// the clean `cut == 0` class — i.e. its interior 64 B boundaries.
    pub fn tear_cuts(&self) -> u32 {
        interior_line_boundaries(self.off, self.len)
    }
}

/// Counts the cache-line boundaries strictly inside `(off, off + len)`.
pub fn interior_line_boundaries(off: usize, len: usize) -> u32 {
    if len == 0 {
        return 0;
    }
    let first = off / CACHE_LINE * CACHE_LINE + CACHE_LINE;
    let end = off + len;
    if first >= end {
        0
    } else {
        (end - 1 - first) as u32 / CACHE_LINE as u32 + 1
    }
}

/// The prefix length (in bytes) a write at `off..off + len` keeps under
/// tear class `cut`: 0 for `cut == 0`, otherwise up to the `cut`-th
/// interior cache-line boundary (clamped to the full write).
pub fn torn_keep(off: usize, len: usize, cut: u32) -> usize {
    if cut == 0 {
        return 0;
    }
    let first = off / CACHE_LINE * CACHE_LINE + CACHE_LINE;
    let p = first + (cut as usize - 1) * CACHE_LINE;
    if p >= off + len {
        len
    } else {
        p - off
    }
}

/// Cumulative NVM write counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteCounts {
    /// Metadata-arena writes.
    pub meta: u64,
    /// Page-frame writes.
    pub page: u64,
}

impl WriteCounts {
    /// Total writes of both kinds.
    pub fn total(&self) -> u64 {
        self.meta + self.page
    }
}

/// The per-device crash schedule.
///
/// One instance is shared by a device's [`MetaArena`](crate::MetaArena) and
/// its page-frame write paths; kernel-level code reaches it through
/// `NvmDevice::crash_schedule`. All operations are cheap atomics when the
/// schedule is disarmed and not tracing, so production paths pay one relaxed
/// load per write.
#[derive(Debug, Default)]
pub struct CrashSchedule {
    kind: AtomicU8,
    /// Matching events left before the crash fires.
    fuse: AtomicU64,
    /// Tear class for [`CrashPoint::TornWrite`].
    cut: AtomicU32,
    /// Site-name filter for [`CrashPoint::Site`].
    site: Mutex<Option<String>>,
    meta_writes: AtomicU64,
    page_writes: AtomicU64,
    /// When `Some`, every site hit is appended (enumeration dry runs).
    trace: Mutex<Option<Vec<SiteHit>>>,
    /// When `Some`, every NVM write is appended (torn-enumeration dry runs).
    write_trace: Mutex<Option<Vec<WriteRec>>>,
}

impl CrashSchedule {
    /// Creates a disarmed schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the schedule. Any previously armed point is replaced.
    pub fn arm(&self, point: CrashPoint) {
        // Order matters: publish the fuse and filter before the kind so a
        // concurrent write cannot observe a half-armed schedule.
        match point {
            CrashPoint::MetaWrite(skip) => {
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_META, Ordering::SeqCst);
            }
            CrashPoint::PageWrite(skip) => {
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_PAGE, Ordering::SeqCst);
            }
            CrashPoint::AnyWrite(skip) => {
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_ANY, Ordering::SeqCst);
            }
            CrashPoint::TornWrite { skip, cut } => {
                self.cut.store(cut, Ordering::SeqCst);
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_TORN, Ordering::SeqCst);
            }
            CrashPoint::Site { name, skip } => {
                *self.site.lock() = Some(name);
                self.fuse.store(skip, Ordering::SeqCst);
                self.kind.store(KIND_SITE, Ordering::SeqCst);
            }
        }
    }

    /// Disarms the schedule (recovery paths call this before touching NVM).
    pub fn disarm(&self) {
        self.kind.store(KIND_NONE, Ordering::SeqCst);
        *self.site.lock() = None;
    }

    /// Returns `true` if a crash point is currently armed.
    pub fn armed(&self) -> bool {
        self.kind.load(Ordering::SeqCst) != KIND_NONE
    }

    /// Current write counters.
    pub fn counts(&self) -> WriteCounts {
        WriteCounts {
            meta: self.meta_writes.load(Ordering::SeqCst),
            page: self.page_writes.load(Ordering::SeqCst),
        }
    }

    /// Starts recording crash-site hits (replacing any previous trace).
    pub fn start_trace(&self) {
        *self.trace.lock() = Some(Vec::new());
    }

    /// Stops recording and returns the collected trace.
    pub fn take_trace(&self) -> Vec<SiteHit> {
        self.trace.lock().take().unwrap_or_default()
    }

    /// Starts recording every NVM write (replacing any previous trace).
    pub fn start_write_trace(&self) {
        *self.write_trace.lock() = Some(Vec::new());
    }

    /// Stops recording writes and returns the collected trace.
    pub fn take_write_trace(&self) -> Vec<WriteRec> {
        self.write_trace.lock().take().unwrap_or_default()
    }

    /// Panics with [`InjectedCrash`], disarming the schedule first. Write
    /// paths call this after applying the partial prefix of a torn write.
    pub fn crash_now(&self) -> ! {
        self.kind.store(KIND_NONE, Ordering::SeqCst);
        std::panic::panic_any(InjectedCrash);
    }

    /// Decrements the fuse; panics with [`InjectedCrash`] when it runs out.
    fn burn(&self) {
        // fetch_update keeps concurrent writers from double-spending one
        // remaining unit; exactly one of them observes zero and crashes.
        let fired = self
            .fuse
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_err();
        if fired {
            self.crash_now();
        }
    }

    /// Decrements the torn fuse; when it runs out, returns the partial
    /// prefix of the `off..off + len` write to apply before crashing.
    fn burn_torn(&self, off: usize, len: usize) -> WriteFate {
        let fired = self
            .fuse
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_err();
        if fired {
            let cut = self.cut.load(Ordering::SeqCst);
            WriteFate::Torn { keep: torn_keep(off, len, cut) }
        } else {
            WriteFate::Apply
        }
    }

    fn record_write(&self, kind: WriteKind, off: usize, len: usize) {
        if let Some(trace) = self.write_trace.lock().as_mut() {
            trace.push(WriteRec { kind, off, len });
        }
    }

    /// Called by the metadata arena before each write mutates the arena;
    /// tells the arena whether to apply the write in full or tear it.
    #[inline]
    pub fn on_meta_write(&self, off: usize, len: usize) -> WriteFate {
        self.meta_writes.fetch_add(1, Ordering::Relaxed);
        self.record_write(WriteKind::Meta, off, len);
        match self.kind.load(Ordering::Relaxed) {
            KIND_META | KIND_ANY => {
                self.burn();
                WriteFate::Apply
            }
            KIND_TORN => self.burn_torn(off, len),
            _ => WriteFate::Apply,
        }
    }

    /// Called by the device before each page-frame write mutates the frame;
    /// tells the device whether to apply the write in full or tear it.
    #[inline]
    pub fn on_page_write(&self, off: usize, len: usize) -> WriteFate {
        self.page_writes.fetch_add(1, Ordering::Relaxed);
        self.record_write(WriteKind::Page, off, len);
        match self.kind.load(Ordering::Relaxed) {
            KIND_PAGE | KIND_ANY => {
                self.burn();
                WriteFate::Apply
            }
            KIND_TORN => self.burn_torn(off, len),
            _ => WriteFate::Apply,
        }
    }

    /// Named crash-site hook; use via [`crash_site!`](crate::crash_site).
    ///
    /// Records the hit when tracing, and fires the fuse when armed with a
    /// matching [`CrashPoint::Site`].
    pub fn site(&self, name: &'static str) {
        if let Some(trace) = self.trace.lock().as_mut() {
            trace.push(SiteHit { name, writes_before: self.counts().total() });
        }
        if self.kind.load(Ordering::Relaxed) == KIND_SITE {
            let matches = self.site.lock().as_deref() == Some(name);
            if matches {
                self.burn();
            }
        }
    }
}

/// Declares a named crash site on a [`CrashSchedule`].
///
/// ```ignore
/// crash_site!(kernel.pers.dev.crash_schedule(), "ckpt.pre_commit");
/// ```
///
/// Expands to a plain [`CrashSchedule::site`] call; the macro exists so
/// sites are grep-able as a class and can later grow cfg-gating without
/// touching every call site.
#[macro_export]
macro_rules! crash_site {
    ($sched:expr, $name:literal) => {
        $sched.site($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn crashes(f: impl FnOnce()) -> bool {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => false,
            Err(e) => {
                assert!(e.is::<InjectedCrash>(), "panic must be the injected crash");
                true
            }
        }
    }

    #[test]
    fn meta_fuse_fires_after_skip() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::MetaWrite(2));
        assert!(!crashes(|| {
            s.on_meta_write(0, 8);
        }));
        assert!(!crashes(|| {
            s.on_meta_write(0, 8);
        }));
        assert!(crashes(|| {
            s.on_meta_write(0, 8);
        }));
        // Fired fuse disarms itself.
        assert!(!s.armed());
        assert!(!crashes(|| {
            s.on_meta_write(0, 8);
        }));
    }

    #[test]
    fn page_and_any_classes() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::PageWrite(0));
        assert!(
            !crashes(|| {
                s.on_meta_write(0, 8);
            }),
            "meta writes don't burn a page fuse"
        );
        assert!(crashes(|| {
            s.on_page_write(0, 8);
        }));

        s.arm(CrashPoint::AnyWrite(1));
        assert!(!crashes(|| {
            s.on_meta_write(0, 8);
        }));
        assert!(crashes(|| {
            s.on_page_write(0, 8);
        }));
    }

    #[test]
    fn torn_fuse_returns_partial_fate() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::TornWrite { skip: 1, cut: 2 });
        assert_eq!(s.on_page_write(0, 4096), WriteFate::Apply);
        // 300-byte write at offset 10 has boundaries at 64, 128, 192, 256;
        // cut 2 keeps up to byte 128 → 118 bytes of the write.
        assert_eq!(s.on_meta_write(10, 300), WriteFate::Torn { keep: 118 });
        // Armed until the write path calls crash_now.
        assert!(s.armed());
        assert!(crashes(|| s.crash_now()));
        assert!(!s.armed());
    }

    #[test]
    fn torn_cut_zero_keeps_nothing() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::TornWrite { skip: 0, cut: 0 });
        assert_eq!(s.on_page_write(0, 4096), WriteFate::Torn { keep: 0 });
    }

    #[test]
    fn tear_geometry() {
        // An aligned u64 store can never tear.
        assert_eq!(interior_line_boundaries(8, 8), 0);
        assert_eq!(interior_line_boundaries(64, 8), 0);
        // A full page write has 63 interior boundaries.
        assert_eq!(interior_line_boundaries(0, 4096), 63);
        // A write spanning one boundary.
        assert_eq!(interior_line_boundaries(60, 8), 1);
        assert_eq!(torn_keep(60, 8, 1), 4);
        // Cuts beyond the last boundary clamp to the whole write.
        assert_eq!(torn_keep(60, 8, 2), 8);
        assert_eq!(torn_keep(0, 4096, 63), 4032);
        assert_eq!(torn_keep(0, 4096, 1), 64);
    }

    #[test]
    fn site_fuse_matches_by_name() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::Site { name: "ckpt.pre_commit".into(), skip: 1 });
        assert!(!crashes(|| crash_site!(s, "ckpt.post_commit")), "other sites pass");
        assert!(!crashes(|| crash_site!(s, "ckpt.pre_commit")), "skip=1 lets one pass");
        assert!(crashes(|| crash_site!(s, "ckpt.pre_commit")));
    }

    #[test]
    fn counters_and_trace() {
        let s = CrashSchedule::new();
        s.start_trace();
        s.start_write_trace();
        s.on_meta_write(0, 8);
        s.on_page_write(0, 4096);
        s.on_page_write(100, 16);
        crash_site!(s, "here");
        let c = s.counts();
        assert_eq!((c.meta, c.page, c.total()), (1, 2, 3));
        let trace = s.take_trace();
        assert_eq!(trace, vec![SiteHit { name: "here", writes_before: 3 }]);
        // Trace is consumed.
        assert!(s.take_trace().is_empty());
        let writes = s.take_write_trace();
        assert_eq!(
            writes,
            vec![
                WriteRec { kind: WriteKind::Meta, off: 0, len: 8 },
                WriteRec { kind: WriteKind::Page, off: 0, len: 4096 },
                WriteRec { kind: WriteKind::Page, off: 100, len: 16 },
            ]
        );
        assert_eq!(writes[1].tear_cuts(), 63);
        assert_eq!(writes[2].tear_cuts(), 0, "a 16 B write at 100 stays inside one line");
    }

    #[test]
    fn disarm_clears_pending_point() {
        let s = CrashSchedule::new();
        s.arm(CrashPoint::AnyWrite(0));
        s.disarm();
        assert!(!crashes(|| {
            s.on_page_write(0, 8);
        }));
    }
}
