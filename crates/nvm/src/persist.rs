//! The configurable persistence model: eADR vs. ADR semantics.
//!
//! The paper's testbed uses Optane with **eADR**: every store that reached
//! the cache hierarchy is flushed by the platform on power failure, so a
//! store is durable the moment it executes. Older platforms offer only
//! **ADR**: the memory-controller write-pending queue is flushed, but CPU
//! caches are *not* — a dirty cache line survives a crash only if it was
//! explicitly written back (`clwb`) and ordered (`sfence`) before the
//! failure. Between the last fence and the crash, an arbitrary subset of
//! the dirty lines may or may not have drained, in any order.
//!
//! [`PersistModel`] emulates that boundary at cache-line (64 B)
//! granularity:
//!
//! * In [`PersistMode::Eadr`] every write is instantly durable and all
//!   flush/fence calls are no-ops (one relaxed atomic load each) — this is
//!   PR 1's behaviour and the default.
//! * In [`PersistMode::Adr`] each written line enters a *pending* set with
//!   an undo image of its pre-write media content. [`flush`] marks lines
//!   for write-back, [`fence`] retires marked lines to media, and the
//!   bounded `reorder_window` models the hardware draining old lines on
//!   its own. At a simulated crash, [`settle_crash`] deterministically
//!   drops a seed-selected subset of the still-pending lines — reverting
//!   them to their undo images — before recovery runs.
//!
//! The checkpoint manager, allocator journal and ext-sync rings call
//! `flush`/`fence` (via `NvmDevice::flush_*` / `fence` /
//! `persist_barrier`) at their ordering points; the crash enumerator then
//! proves those points are *sufficient* by running every crash cut under
//! ADR with adversarial line drops.
//!
//! [`flush`]: PersistModel::flush
//! [`fence`]: PersistModel::fence
//! [`settle_crash`]: PersistModel::settle_crash

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

use parking_lot::Mutex;

/// The persistence atomicity/ordering unit: one cache line.
pub const CACHE_LINE: usize = 64;

/// Which durability semantics the emulated NVM provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistMode {
    /// Extended ADR: stores are durable on execution (the paper's testbed).
    Eadr,
    /// ADR: dirty cache lines are volatile until flushed + fenced. At most
    /// `reorder_window` lines stay pending; older lines drain on their own
    /// (hardware eviction), matching a bounded write-pending queue.
    Adr {
        /// Maximum number of dirty lines held back before the oldest is
        /// considered drained to media.
        reorder_window: usize,
    },
}

/// A persistent address space tracked by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    /// The metadata arena.
    Meta,
    /// A data page frame (by frame index).
    Frame(u32),
}

/// One cache line that must be reverted because it never drained.
#[derive(Debug, Clone)]
pub struct DroppedLine {
    /// Which space the line belongs to.
    pub space: Space,
    /// Byte offset of the line start within the space.
    pub line_off: usize,
    /// The media content the line reverts to.
    pub undo: [u8; CACHE_LINE],
}

#[derive(Debug)]
struct LineState {
    undo: [u8; CACHE_LINE],
    flushed: bool,
}

#[derive(Debug, Default)]
struct Pending {
    lines: HashMap<(Space, usize), LineState>,
    /// Insertion order, oldest first (for window eviction). May contain
    /// stale keys for lines already retired; consumers re-check `lines`.
    order: VecDeque<(Space, usize)>,
}

const MODE_EADR: u8 = 0;
const MODE_ADR: u8 = 1;

/// Cache-line-granular durability tracking for one device.
///
/// All methods are no-ops (single atomic load) in eADR mode.
#[derive(Debug)]
pub struct PersistModel {
    mode: AtomicU8,
    window: Mutex<usize>,
    pending: Mutex<Pending>,
}

impl Default for PersistModel {
    fn default() -> Self {
        Self::new()
    }
}

impl PersistModel {
    /// Creates a model in eADR mode.
    pub fn new() -> Self {
        Self {
            mode: AtomicU8::new(MODE_EADR),
            window: Mutex::new(usize::MAX),
            pending: Mutex::new(Pending::default()),
        }
    }

    /// Switches mode. Everything currently pending is considered drained
    /// (the switch is a test-harness operation, not a crash).
    pub fn set_mode(&self, mode: PersistMode) {
        let mut p = self.pending.lock();
        p.lines.clear();
        p.order.clear();
        match mode {
            PersistMode::Eadr => self.mode.store(MODE_EADR, Ordering::SeqCst),
            PersistMode::Adr { reorder_window } => {
                *self.window.lock() = reorder_window.max(1);
                self.mode.store(MODE_ADR, Ordering::SeqCst);
            }
        }
    }

    /// Current mode.
    pub fn mode(&self) -> PersistMode {
        if self.mode.load(Ordering::SeqCst) == MODE_EADR {
            PersistMode::Eadr
        } else {
            PersistMode::Adr { reorder_window: *self.window.lock() }
        }
    }

    #[inline]
    fn is_eadr(&self) -> bool {
        self.mode.load(Ordering::Relaxed) == MODE_EADR
    }

    /// Number of lines currently pending (dirty, not yet drained).
    pub fn pending_lines(&self) -> usize {
        self.pending.lock().lines.len()
    }

    /// Records a write of `len` bytes at `off` in `space`, *before* the
    /// bytes are applied. `read_line` must return the current (pre-write)
    /// media content of the line starting at the given byte offset; it is
    /// only called for lines not already pending.
    #[inline]
    pub fn note_write(
        &self,
        space: Space,
        off: usize,
        len: usize,
        mut read_line: impl FnMut(usize) -> [u8; CACHE_LINE],
    ) {
        if self.is_eadr() || len == 0 {
            return;
        }
        let window = *self.window.lock();
        let mut p = self.pending.lock();
        let first = off / CACHE_LINE * CACHE_LINE;
        let mut line = first;
        while line < off + len {
            let key = (space, line);
            match p.lines.get_mut(&key) {
                Some(state) => {
                    // Re-dirtied: the line goes back to "not written back".
                    state.flushed = false;
                }
                None => {
                    p.lines.insert(key, LineState { undo: read_line(line), flushed: false });
                    p.order.push_back(key);
                }
            }
            line += CACHE_LINE;
        }
        // Bounded write-pending queue: the hardware drains the oldest
        // lines on its own once the window is full.
        while p.lines.len() > window {
            match p.order.pop_front() {
                Some(key) => {
                    p.lines.remove(&key);
                }
                None => break,
            }
        }
    }

    /// Marks the lines covering `off..off + len` for write-back (`clwb`).
    /// A later [`fence`](Self::fence) makes them durable.
    #[inline]
    pub fn flush(&self, space: Space, off: usize, len: usize) {
        if self.is_eadr() || len == 0 {
            return;
        }
        let mut p = self.pending.lock();
        let first = off / CACHE_LINE * CACHE_LINE;
        let mut line = first;
        while line < off + len {
            if let Some(state) = p.lines.get_mut(&(space, line)) {
                state.flushed = true;
            }
            line += CACHE_LINE;
        }
    }

    /// Retires every flushed line to media (`sfence` after `clwb`s).
    #[inline]
    pub fn fence(&self) {
        if self.is_eadr() {
            return;
        }
        let mut p = self.pending.lock();
        p.lines.retain(|_, state| !state.flushed);
        let Pending { lines, order } = &mut *p;
        order.retain(|key| lines.contains_key(key));
    }

    /// Flush-everything-and-fence: retires *all* pending lines. The
    /// strongest ordering point (used around the checkpoint commit).
    #[inline]
    pub fn persist_barrier(&self) {
        if self.is_eadr() {
            return;
        }
        let mut p = self.pending.lock();
        p.lines.clear();
        p.order.clear();
    }

    /// Declares the lines fully inside `off..off + keep` durable and
    /// removes them from the pending set — used for the applied prefix of
    /// a torn write, which the torn-crash model defines as having reached
    /// media (that is what makes the tear observable).
    pub fn retire_prefix(&self, space: Space, off: usize, keep: usize) {
        if self.is_eadr() || keep == 0 {
            return;
        }
        let mut p = self.pending.lock();
        let first = off / CACHE_LINE * CACHE_LINE;
        let mut line = first;
        while line < off + keep {
            p.lines.remove(&(space, line));
            line += CACHE_LINE;
        }
        let Pending { lines, order } = &mut *p;
        order.retain(|key| lines.contains_key(key));
    }

    /// Simulates the power failure for the pending set: a deterministic,
    /// seed-selected subset of the pending lines is *dropped* (never
    /// drained) and must be reverted to its undo image; the rest drained.
    /// Clears the pending set. Returns the dropped lines for the device to
    /// revert. `seed == !0` drops **every** pending line (the adversarial
    /// worst case); otherwise each line is dropped iff a hash of
    /// `(seed, space, line)` is odd.
    pub fn settle_crash(&self, seed: u64) -> Vec<DroppedLine> {
        if self.is_eadr() {
            return Vec::new();
        }
        let mut p = self.pending.lock();
        let mut dropped: Vec<DroppedLine> = Vec::new();
        for (&(space, line_off), state) in p.lines.iter() {
            let drop_it = seed == u64::MAX || {
                let tag = match space {
                    Space::Meta => 0u64,
                    Space::Frame(f) => 1 + f as u64,
                };
                splitmix64(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (line_off as u64)) & 1
                    == 1
            };
            if drop_it {
                dropped.push(DroppedLine { space, line_off, undo: state.undo });
            }
        }
        p.lines.clear();
        p.order.clear();
        // Deterministic revert order regardless of hash-map iteration.
        dropped.sort_by_key(|d| (d.space, d.line_off));
        dropped
    }
}

/// SplitMix64 finalizer — a tiny, dependency-free avalanche hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(byte: u8) -> [u8; CACHE_LINE] {
        [byte; CACHE_LINE]
    }

    #[test]
    fn eadr_is_all_noops() {
        let m = PersistModel::new();
        m.note_write(Space::Meta, 0, 128, |_| line(0));
        assert_eq!(m.pending_lines(), 0);
        assert!(m.settle_crash(u64::MAX).is_empty());
    }

    #[test]
    fn adr_tracks_lines_and_undo() {
        let m = PersistModel::new();
        m.set_mode(PersistMode::Adr { reorder_window: 64 });
        // A 100-byte write at offset 60 spans lines 0, 64 and 128.
        m.note_write(Space::Meta, 60, 100, |off| line((off / CACHE_LINE) as u8));
        assert_eq!(m.pending_lines(), 3);
        let dropped = m.settle_crash(u64::MAX);
        assert_eq!(dropped.len(), 3);
        assert_eq!(dropped[0].line_off, 0);
        assert_eq!(dropped[0].undo, line(0));
        assert_eq!(dropped[2].line_off, 128);
        assert_eq!(dropped[2].undo, line(2));
        assert_eq!(m.pending_lines(), 0, "settle clears the pending set");
    }

    #[test]
    fn flush_fence_retires_only_flushed() {
        let m = PersistModel::new();
        m.set_mode(PersistMode::Adr { reorder_window: 64 });
        m.note_write(Space::Meta, 0, 64, |_| line(1));
        m.note_write(Space::Meta, 64, 64, |_| line(2));
        m.flush(Space::Meta, 0, 64);
        m.fence();
        assert_eq!(m.pending_lines(), 1);
        let dropped = m.settle_crash(u64::MAX);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].line_off, 64);
    }

    #[test]
    fn rewrite_after_fence_recaptures_undo() {
        let m = PersistModel::new();
        m.set_mode(PersistMode::Adr { reorder_window: 64 });
        m.note_write(Space::Meta, 0, 64, |_| line(0xAA));
        m.flush(Space::Meta, 0, 64);
        m.fence();
        // The line drained holding its new content; dirty it again — the
        // undo image must be the *drained* content, not the original.
        m.note_write(Space::Meta, 0, 64, |_| line(0xBB));
        let dropped = m.settle_crash(u64::MAX);
        assert_eq!(dropped[0].undo, line(0xBB));
    }

    #[test]
    fn redirty_clears_flushed_mark() {
        let m = PersistModel::new();
        m.set_mode(PersistMode::Adr { reorder_window: 64 });
        m.note_write(Space::Meta, 0, 64, |_| line(1));
        m.flush(Space::Meta, 0, 64);
        m.note_write(Space::Meta, 0, 64, |_| line(2));
        m.fence();
        assert_eq!(m.pending_lines(), 1, "re-dirtied line is not retired by the fence");
    }

    #[test]
    fn window_drains_oldest() {
        let m = PersistModel::new();
        m.set_mode(PersistMode::Adr { reorder_window: 2 });
        m.note_write(Space::Meta, 0, 64, |_| line(1));
        m.note_write(Space::Meta, 64, 64, |_| line(2));
        m.note_write(Space::Meta, 128, 64, |_| line(3));
        assert_eq!(m.pending_lines(), 2);
        let dropped = m.settle_crash(u64::MAX);
        assert_eq!(dropped.iter().map(|d| d.line_off).collect::<Vec<_>>(), vec![64, 128]);
    }

    #[test]
    fn persist_barrier_clears_everything() {
        let m = PersistModel::new();
        m.set_mode(PersistMode::Adr { reorder_window: 64 });
        m.note_write(Space::Frame(3), 0, 4096, |_| line(0));
        assert_eq!(m.pending_lines(), 64);
        m.persist_barrier();
        assert_eq!(m.pending_lines(), 0);
    }

    #[test]
    fn settle_is_deterministic_per_seed() {
        let build = || {
            let m = PersistModel::new();
            m.set_mode(PersistMode::Adr { reorder_window: 256 });
            for i in 0..32 {
                m.note_write(Space::Frame(i % 4), (i as usize) * CACHE_LINE, CACHE_LINE, |_| {
                    line(i as u8)
                });
            }
            m
        };
        let a: Vec<_> =
            build().settle_crash(7).into_iter().map(|d| (d.space, d.line_off)).collect();
        let b: Vec<_> =
            build().settle_crash(7).into_iter().map(|d| (d.space, d.line_off)).collect();
        assert_eq!(a, b);
        let c: Vec<_> =
            build().settle_crash(8).into_iter().map(|d| (d.space, d.line_off)).collect();
        assert!(!c.is_empty() || !a.is_empty(), "some seed drops something");
    }

    #[test]
    fn retire_prefix_only_covers_whole_lines() {
        let m = PersistModel::new();
        m.set_mode(PersistMode::Adr { reorder_window: 64 });
        m.note_write(Space::Meta, 0, 192, |_| line(9));
        // Prefix of 128 bytes covers lines 0 and 64 fully.
        m.retire_prefix(Space::Meta, 0, 128);
        assert_eq!(m.pending_lines(), 1);
        assert_eq!(m.settle_crash(u64::MAX)[0].line_off, 128);
    }
}
