//! A single-process cluster harness: one primary [`System`] plus N
//! [`Replica`]s, each behind its own [`ReplChannel`] queue pair.
//!
//! The harness owns the drill levers the EXPERIMENTS.md cluster drill
//! pulls: partition/heal a link, kill/revive a replica, corrupt the next
//! delta frame on the wire, and promote a replica to primary after the
//! primary dies (bumping the epoch so the deposed primary's late frames
//! are fenced at the survivors).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use treesls::{ProgramRegistry, RestoreReport, System, SystemConfig};
use treesls_net::{NetFaultConfig, ReplChannel, VirtualNic};

use crate::replica::{promote, PromoteError, Replica};
use crate::ship::{ShipConfig, Shipper};

/// Cluster topology and replication tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Shipping/quorum behavior.
    pub ship: ShipConfig,
    /// Delta ring depth per replica.
    pub nslots: u64,
    /// Delta ring slot size (page frames need 4125 bytes + 24 header).
    pub slot_size: u64,
    /// Wire fault model applied to every replica link.
    pub fault: NetFaultConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            ship: ShipConfig::default(),
            nslots: 1024,
            slot_size: 8192,
            fault: NetFaultConfig::default(),
        }
    }
}

/// One primary plus its replicas.
pub struct Cluster {
    /// The primary-side shipper (its `health` is the NIC release gate).
    pub shipper: Arc<Shipper>,
    /// The replica machines, index-aligned with the shipper's peers.
    pub replicas: Vec<Arc<Replica>>,
    running: Arc<AtomicBool>,
    pollers: Mutex<Vec<JoinHandle<()>>>,
}

impl Cluster {
    /// Wires `cfg.replicas` replicas to `sys` and installs the shipper
    /// at the front of the checkpoint callback chain. Call
    /// [`attach_gate`](Self::attach_gate) on each NIC that must hold
    /// client-visible responses for quorum, then [`start`](Self::start).
    pub fn deploy(sys: &System, cfg: &ClusterConfig) -> Cluster {
        let channels: Vec<Arc<ReplChannel>> = (0..cfg.replicas)
            .map(|_| ReplChannel::new(cfg.nslots, cfg.slot_size, cfg.fault))
            .collect();
        let replicas = channels
            .iter()
            .enumerate()
            .map(|(i, ch)| Replica::new(i, Arc::clone(ch)))
            .collect();
        let shipper =
            Shipper::install(Arc::clone(sys.kernel()), sys.manager(), channels, cfg.ship.clone());
        Cluster {
            shipper,
            replicas,
            running: Arc::new(AtomicBool::new(false)),
            pollers: Mutex::new(Vec::new()),
        }
    }

    /// Points `nic`'s TX visibility barrier at the cluster's durability
    /// state: responses release only up to the quorum-durable round, and
    /// degraded mode sheds writes at admission.
    pub fn attach_gate(&self, nic: &VirtualNic) {
        nic.set_release_gate(Some(Arc::clone(&self.shipper.health) as _));
    }

    /// Spawns one poll thread per replica (the replica "machines").
    pub fn start(&self) {
        if self.running.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut pollers = self.pollers.lock();
        for replica in &self.replicas {
            let r = Arc::clone(replica);
            let running = Arc::clone(&self.running);
            pollers.push(std::thread::spawn(move || {
                while running.load(Ordering::SeqCst) {
                    if r.poll() == 0 {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }));
        }
    }

    /// Stops the replica poll threads (the mirrors stay intact).
    pub fn stop(&self) {
        self.running.store(false, Ordering::SeqCst);
        for h in self.pollers.lock().drain(..) {
            let _ = h.join();
        }
    }

    /// Partitions (or heals) the link to replica `id`, both directions.
    pub fn set_partitioned(&self, id: usize, on: bool) {
        self.replicas[id].channel.set_partitioned(on);
    }

    /// Crashes replica `id` (its in-flight staging is lost).
    pub fn kill(&self, id: usize) {
        self.replicas[id].kill();
    }

    /// Reboots replica `id`; it requests a resync.
    pub fn revive(&self, id: usize) {
        self.replicas[id].revive();
    }

    /// Flips a CRC-covered bit in the next delta frame replica `id` will
    /// read (corruption drill).
    pub fn corrupt_next_delta(&self, id: usize) {
        self.replicas[id].channel.corrupt_next_delta();
    }

    /// Fails over to replica `id` after the primary died: materializes
    /// the replica's mirror into a fresh [`System`] (stop the old
    /// primary's `System` first) and fences the surviving replicas
    /// against the deposed primary's epoch. The promoted system boots
    /// through the standard restore path; drive it with a fresh NIC
    /// deployment/attachment as after any reboot.
    pub fn promote(
        &self,
        id: usize,
        config: SystemConfig,
        register_programs: impl FnOnce(&ProgramRegistry),
    ) -> Result<(System, RestoreReport), PromoteError> {
        let store = self.replicas[id].store_snapshot();
        let result = promote(&store, config, register_programs)?;
        let new_epoch = self.shipper.epoch() + 1;
        for (i, replica) in self.replicas.iter().enumerate() {
            if i != id {
                replica.fence(new_epoch);
            }
        }
        Ok(result)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.stop();
    }
}
