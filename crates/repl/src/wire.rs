//! The checkpoint-shipping wire format.
//!
//! Every frame is a self-contained byte string pushed into one
//! [`treesls_net::ReplChannel`] slot (the slot codec adds its own CRC, so
//! a flipped bit on the wire surfaces as `RingError::Corrupt` before the
//! frame is ever decoded; the decoder here only has to deal with
//! *structurally* bad frames, e.g. from a software bug, and it does so
//! with errors, never panics).
//!
//! Backup records travel as [`WireRecord`]: the same shape as the
//! kernel's `BackupObject`, but with every `OrootId` flattened to its raw
//! `u64` (slot ids are machine-local — the receiving machine re-assigns
//! them on promotion) and the PMO page radix replaced by a page
//! *manifest* of `(index, version, crc)`. Page images travel in separate
//! [`Frame::Page`] frames so a delta only carries the pages whose content
//! actually changed.

/// A replication frame. Deltas stream as `DeltaBegin · (Record | Page |
/// Tombstone)* · DeltaCommit`; snapshots as `SnapBegin · (Record | Page)*
/// · SnapCommit`. `Ack` and `ResyncRequest` flow on the ack ring.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Opens the delta for `round`; the counts let the replica verify it
    /// saw every frame before applying (a dropped frame fails the check).
    DeltaBegin {
        /// Primary's shipping epoch (bumped on failover/promotion).
        epoch: u64,
        /// Checkpoint round the delta carries the state of.
        round: u64,
        /// Number of `Record` frames in the delta.
        records: u32,
        /// Number of `Tombstone` frames in the delta.
        tombstones: u32,
        /// Number of `Page` frames in the delta.
        pages: u32,
    },
    /// One rewritten backup record.
    Record {
        /// Raw ORoot id of the record on the primary.
        oroot: u64,
        /// The record body in wire form.
        rec: WireRecord,
    },
    /// One 4 KiB page image of a PMO record in the same round.
    Page {
        /// Raw ORoot id of the owning PMO.
        oroot: u64,
        /// Page index within the PMO.
        idx: u64,
        /// Checkpoint version of the image.
        version: u64,
        /// CRC of `data`, cross-checked against the PMO's page manifest.
        crc: u32,
        /// The page image.
        data: Box<[u8; 4096]>,
    },
    /// An ORoot deleted this round.
    Tombstone {
        /// Raw ORoot id being deleted.
        oroot: u64,
    },
    /// Closes the delta; `root` is the root cap group's raw ORoot id.
    /// Applying is atomic at this frame.
    DeltaCommit {
        /// Primary's shipping epoch.
        epoch: u64,
        /// Round being committed.
        round: u64,
        /// Raw ORoot id of the root cap group.
        root: u64,
    },
    /// Opens a full-state transfer (resync) at `round`.
    SnapBegin {
        /// Primary's shipping epoch.
        epoch: u64,
        /// Round the snapshot captures.
        round: u64,
        /// Number of `Record` frames in the snapshot.
        records: u32,
        /// Number of `Page` frames in the snapshot.
        pages: u32,
    },
    /// Closes a full-state transfer; replaces the replica's store whole.
    SnapCommit {
        /// Primary's shipping epoch.
        epoch: u64,
        /// Round the snapshot captures.
        round: u64,
        /// Raw ORoot id of the root cap group.
        root: u64,
    },
    /// Replica → primary: `round` is durably applied on this replica.
    Ack {
        /// Epoch the ack belongs to (stale-epoch acks are ignored).
        epoch: u64,
        /// Highest round durably applied.
        round: u64,
    },
    /// Replica → primary: the delta stream is unusable (gap, corruption,
    /// fresh boot); ship a snapshot.
    ResyncRequest {
        /// Epoch the request was issued under.
        epoch: u64,
        /// Round the replica last applied (0 for a fresh store).
        applied_round: u64,
    },
}

/// A backup record in wire form (raw ids, page manifest).
#[derive(Debug, Clone, PartialEq)]
pub enum WireRecord {
    /// A capability group: its name and its slots as
    /// `Option<(target_oroot, rights_bits)>`.
    CapGroup {
        /// Group name (process identity across promotion).
        name: String,
        /// Capability slots; `None` for empty slots.
        caps: Vec<Option<(u64, u32)>>,
    },
    /// A thread: full register file plus scheduling references.
    Thread {
        /// General-purpose registers.
        regs: [u64; 16],
        /// Program counter.
        pc: u64,
        /// Scheduling state (with raw blocked-on references).
        state: WireThreadState,
        /// Program name resolved through the registry on promotion.
        program: String,
        /// Raw ORoot id of the owning cap group.
        cap_group: u64,
        /// Raw ORoot id of the address space.
        vmspace: u64,
    },
    /// An address space as a list of mapped regions.
    VmSpace {
        /// The mapped regions.
        regions: Vec<WireRegion>,
    },
    /// A physical memory object: geometry plus the page manifest
    /// `(index, version, crc)` the delta's `Page` frames must satisfy.
    Pmo {
        /// Page count.
        npages: u64,
        /// Whether the PMO is eternal (NVM-direct, never rolled back).
        eternal: bool,
        /// Checkpoint tick of the PMO's last sync.
        synced_tick: u64,
        /// Per-page manifest entries `(index, version, crc)`.
        pages: Vec<(u64, u64, u32)>,
    },
    /// An IPC connection: queued messages and parked reply slots.
    IpcConnection {
        /// Thread blocked in `recv`, if any (raw ORoot id).
        recv_waiter: Option<u64>,
        /// Queued `(sender_thread, message)` pairs.
        queue: Vec<(u64, Vec<u8>)>,
        /// Parked `(sender_thread, reply)` pairs.
        replies: Vec<(u64, Vec<u8>)>,
    },
    /// A notification object: its count and blocked waiters.
    Notification {
        /// Pending signal count.
        count: u64,
        /// Raw ORoot ids of blocked waiter threads.
        waiters: Vec<u64>,
    },
    /// An IRQ notification object bound to a line.
    IrqNotification {
        /// Interrupt line number.
        line: u32,
        /// Pending signal count.
        count: u64,
        /// Raw ORoot ids of blocked waiter threads.
        waiters: Vec<u64>,
    },
}

/// Thread scheduling state with raw ORoot references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireThreadState {
    /// Runnable (or running; on-CPU state is not shipped).
    Runnable,
    /// Blocked waiting on a notification (raw ORoot id).
    BlockedNotification(u64),
    /// Blocked in IPC receive on a connection (raw ORoot id).
    BlockedIpcRecv(u64),
    /// Blocked awaiting an IPC reply on a connection (raw ORoot id).
    BlockedIpcReply(u64),
    /// Exited; kept for capability-table consistency.
    Exited,
}

/// A VM region with a raw PMO reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRegion {
    /// Base virtual page number.
    pub base: u64,
    /// Region length in pages.
    pub npages: u64,
    /// Raw ORoot id of the backing PMO.
    pub pmo: u64,
    /// Page offset into the PMO.
    pub pmo_off: u64,
    /// Permission bits (`CapRights`).
    pub perm: u32,
}

/// Structural decode failures (distinct from wire corruption, which the
/// ring slot CRC catches before decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before its structure did.
    Truncated,
    /// Unknown frame or record tag.
    BadTag(u8),
    /// Bytes left over after a complete decode.
    Trailing,
}

// Frame tags.
const T_DELTA_BEGIN: u8 = 1;
const T_RECORD: u8 = 2;
const T_PAGE: u8 = 3;
const T_TOMBSTONE: u8 = 4;
const T_DELTA_COMMIT: u8 = 5;
const T_SNAP_BEGIN: u8 = 6;
const T_SNAP_COMMIT: u8 = 7;
const T_ACK: u8 = 8;
const T_RESYNC: u8 = 9;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

/// A bounds-checked little-endian reader over a frame.
struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let v = *self.buf.get(self.off).ok_or(WireError::Truncated)?;
        self.off += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.buf.get(self.off..self.off + 4).ok_or(WireError::Truncated)?;
        self.off += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.buf.get(self.off..self.off + 8).ok_or(WireError::Truncated)?;
        self.off += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        let s = self.buf.get(self.off..self.off + n).ok_or(WireError::Truncated)?;
        self.off += n;
        Ok(s.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::Truncated)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.off == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

impl Frame {
    /// Serializes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        match self {
            Frame::DeltaBegin { epoch, round, records, tombstones, pages } => {
                b.push(T_DELTA_BEGIN);
                put_u64(&mut b, *epoch);
                put_u64(&mut b, *round);
                put_u32(&mut b, *records);
                put_u32(&mut b, *tombstones);
                put_u32(&mut b, *pages);
            }
            Frame::Record { oroot, rec } => {
                b.push(T_RECORD);
                put_u64(&mut b, *oroot);
                rec.encode_into(&mut b);
            }
            Frame::Page { oroot, idx, version, crc, data } => {
                b.reserve(4096 + 32);
                b.push(T_PAGE);
                put_u64(&mut b, *oroot);
                put_u64(&mut b, *idx);
                put_u64(&mut b, *version);
                put_u32(&mut b, *crc);
                b.extend_from_slice(&data[..]);
            }
            Frame::Tombstone { oroot } => {
                b.push(T_TOMBSTONE);
                put_u64(&mut b, *oroot);
            }
            Frame::DeltaCommit { epoch, round, root } => {
                b.push(T_DELTA_COMMIT);
                put_u64(&mut b, *epoch);
                put_u64(&mut b, *round);
                put_u64(&mut b, *root);
            }
            Frame::SnapBegin { epoch, round, records, pages } => {
                b.push(T_SNAP_BEGIN);
                put_u64(&mut b, *epoch);
                put_u64(&mut b, *round);
                put_u32(&mut b, *records);
                put_u32(&mut b, *pages);
            }
            Frame::SnapCommit { epoch, round, root } => {
                b.push(T_SNAP_COMMIT);
                put_u64(&mut b, *epoch);
                put_u64(&mut b, *round);
                put_u64(&mut b, *root);
            }
            Frame::Ack { epoch, round } => {
                b.push(T_ACK);
                put_u64(&mut b, *epoch);
                put_u64(&mut b, *round);
            }
            Frame::ResyncRequest { epoch, applied_round } => {
                b.push(T_RESYNC);
                put_u64(&mut b, *epoch);
                put_u64(&mut b, *applied_round);
            }
        }
        b
    }

    /// Decodes one frame, rejecting truncation and trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader { buf, off: 0 };
        let frame = match r.u8()? {
            T_DELTA_BEGIN => Frame::DeltaBegin {
                epoch: r.u64()?,
                round: r.u64()?,
                records: r.u32()?,
                tombstones: r.u32()?,
                pages: r.u32()?,
            },
            T_RECORD => {
                let oroot = r.u64()?;
                let rec = WireRecord::decode_from(&mut r)?;
                Frame::Record { oroot, rec }
            }
            T_PAGE => {
                let oroot = r.u64()?;
                let idx = r.u64()?;
                let version = r.u64()?;
                let crc = r.u32()?;
                let s = r.buf.get(r.off..r.off + 4096).ok_or(WireError::Truncated)?;
                let mut data = Box::new([0u8; 4096]);
                data.copy_from_slice(s);
                r.off += 4096;
                Frame::Page { oroot, idx, version, crc, data }
            }
            T_TOMBSTONE => Frame::Tombstone { oroot: r.u64()? },
            T_DELTA_COMMIT => {
                Frame::DeltaCommit { epoch: r.u64()?, round: r.u64()?, root: r.u64()? }
            }
            T_SNAP_BEGIN => Frame::SnapBegin {
                epoch: r.u64()?,
                round: r.u64()?,
                records: r.u32()?,
                pages: r.u32()?,
            },
            T_SNAP_COMMIT => {
                Frame::SnapCommit { epoch: r.u64()?, round: r.u64()?, root: r.u64()? }
            }
            T_ACK => Frame::Ack { epoch: r.u64()?, round: r.u64()? },
            T_RESYNC => Frame::ResyncRequest { epoch: r.u64()?, applied_round: r.u64()? },
            t => return Err(WireError::BadTag(t)),
        };
        r.done()?;
        Ok(frame)
    }
}

// Record tags follow `ObjType::ALL` order.
const R_CAP_GROUP: u8 = 1;
const R_THREAD: u8 = 2;
const R_VMSPACE: u8 = 3;
const R_PMO: u8 = 4;
const R_IPC: u8 = 5;
const R_NOTIF: u8 = 6;
const R_IRQ: u8 = 7;

const TS_RUNNABLE: u8 = 0;
const TS_NOTIF: u8 = 1;
const TS_RECV: u8 = 2;
const TS_REPLY: u8 = 3;
const TS_EXITED: u8 = 4;

impl WireRecord {
    fn encode_into(&self, b: &mut Vec<u8>) {
        match self {
            WireRecord::CapGroup { name, caps } => {
                b.push(R_CAP_GROUP);
                put_bytes(b, name.as_bytes());
                put_u32(b, caps.len() as u32);
                for c in caps {
                    match c {
                        Some((oroot, rights)) => {
                            b.push(1);
                            put_u64(b, *oroot);
                            put_u32(b, *rights);
                        }
                        None => b.push(0),
                    }
                }
            }
            WireRecord::Thread { regs, pc, state, program, cap_group, vmspace } => {
                b.push(R_THREAD);
                for r in regs {
                    put_u64(b, *r);
                }
                put_u64(b, *pc);
                match state {
                    WireThreadState::Runnable => b.push(TS_RUNNABLE),
                    WireThreadState::BlockedNotification(o) => {
                        b.push(TS_NOTIF);
                        put_u64(b, *o);
                    }
                    WireThreadState::BlockedIpcRecv(o) => {
                        b.push(TS_RECV);
                        put_u64(b, *o);
                    }
                    WireThreadState::BlockedIpcReply(o) => {
                        b.push(TS_REPLY);
                        put_u64(b, *o);
                    }
                    WireThreadState::Exited => b.push(TS_EXITED),
                }
                put_bytes(b, program.as_bytes());
                put_u64(b, *cap_group);
                put_u64(b, *vmspace);
            }
            WireRecord::VmSpace { regions } => {
                b.push(R_VMSPACE);
                put_u32(b, regions.len() as u32);
                for rg in regions {
                    put_u64(b, rg.base);
                    put_u64(b, rg.npages);
                    put_u64(b, rg.pmo);
                    put_u64(b, rg.pmo_off);
                    put_u32(b, rg.perm);
                }
            }
            WireRecord::Pmo { npages, eternal, synced_tick, pages } => {
                b.push(R_PMO);
                put_u64(b, *npages);
                b.push(u8::from(*eternal));
                put_u64(b, *synced_tick);
                put_u32(b, pages.len() as u32);
                for (idx, version, crc) in pages {
                    put_u64(b, *idx);
                    put_u64(b, *version);
                    put_u32(b, *crc);
                }
            }
            WireRecord::IpcConnection { recv_waiter, queue, replies } => {
                b.push(R_IPC);
                match recv_waiter {
                    Some(o) => {
                        b.push(1);
                        put_u64(b, *o);
                    }
                    None => b.push(0),
                }
                for list in [queue, replies] {
                    put_u32(b, list.len() as u32);
                    for (o, msg) in list {
                        put_u64(b, *o);
                        put_bytes(b, msg);
                    }
                }
            }
            WireRecord::Notification { count, waiters } => {
                b.push(R_NOTIF);
                put_u64(b, *count);
                put_u32(b, waiters.len() as u32);
                for w in waiters {
                    put_u64(b, *w);
                }
            }
            WireRecord::IrqNotification { line, count, waiters } => {
                b.push(R_IRQ);
                put_u32(b, *line);
                put_u64(b, *count);
                put_u32(b, waiters.len() as u32);
                for w in waiters {
                    put_u64(b, *w);
                }
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<WireRecord, WireError> {
        Ok(match r.u8()? {
            R_CAP_GROUP => {
                let name = r.string()?;
                let n = r.u32()?;
                let mut caps = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    caps.push(match r.u8()? {
                        0 => None,
                        _ => Some((r.u64()?, r.u32()?)),
                    });
                }
                WireRecord::CapGroup { name, caps }
            }
            R_THREAD => {
                let mut regs = [0u64; 16];
                for reg in &mut regs {
                    *reg = r.u64()?;
                }
                let pc = r.u64()?;
                let state = match r.u8()? {
                    TS_RUNNABLE => WireThreadState::Runnable,
                    TS_NOTIF => WireThreadState::BlockedNotification(r.u64()?),
                    TS_RECV => WireThreadState::BlockedIpcRecv(r.u64()?),
                    TS_REPLY => WireThreadState::BlockedIpcReply(r.u64()?),
                    TS_EXITED => WireThreadState::Exited,
                    t => return Err(WireError::BadTag(t)),
                };
                let program = r.string()?;
                WireRecord::Thread {
                    regs,
                    pc,
                    state,
                    program,
                    cap_group: r.u64()?,
                    vmspace: r.u64()?,
                }
            }
            R_VMSPACE => {
                let n = r.u32()?;
                let mut regions = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    regions.push(WireRegion {
                        base: r.u64()?,
                        npages: r.u64()?,
                        pmo: r.u64()?,
                        pmo_off: r.u64()?,
                        perm: r.u32()?,
                    });
                }
                WireRecord::VmSpace { regions }
            }
            R_PMO => {
                let npages = r.u64()?;
                let eternal = r.u8()? != 0;
                let synced_tick = r.u64()?;
                let n = r.u32()?;
                let mut pages = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    pages.push((r.u64()?, r.u64()?, r.u32()?));
                }
                WireRecord::Pmo { npages, eternal, synced_tick, pages }
            }
            R_IPC => {
                let recv_waiter = match r.u8()? {
                    0 => None,
                    _ => Some(r.u64()?),
                };
                let mut lists = [Vec::new(), Vec::new()];
                for list in &mut lists {
                    let n = r.u32()?;
                    for _ in 0..n {
                        list.push((r.u64()?, r.bytes()?));
                    }
                }
                let [queue, replies] = lists;
                WireRecord::IpcConnection { recv_waiter, queue, replies }
            }
            R_NOTIF => {
                let count = r.u64()?;
                let n = r.u32()?;
                let mut waiters = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    waiters.push(r.u64()?);
                }
                WireRecord::Notification { count, waiters }
            }
            R_IRQ => {
                let line = r.u32()?;
                let count = r.u64()?;
                let n = r.u32()?;
                let mut waiters = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    waiters.push(r.u64()?);
                }
                WireRecord::IrqNotification { line, count, waiters }
            }
            t => return Err(WireError::BadTag(t)),
        })
    }

    /// Every raw ORoot id this record references (edges of the shipped
    /// tree; promotion translates each through the id map).
    pub fn refs(&self) -> Vec<u64> {
        match self {
            WireRecord::CapGroup { caps, .. } => {
                caps.iter().flatten().map(|(o, _)| *o).collect()
            }
            WireRecord::Thread { state, cap_group, vmspace, .. } => {
                let mut v = vec![*cap_group, *vmspace];
                match state {
                    WireThreadState::BlockedNotification(o)
                    | WireThreadState::BlockedIpcRecv(o)
                    | WireThreadState::BlockedIpcReply(o) => v.push(*o),
                    WireThreadState::Runnable | WireThreadState::Exited => {}
                }
                v
            }
            WireRecord::VmSpace { regions } => regions.iter().map(|r| r.pmo).collect(),
            WireRecord::Pmo { .. } => Vec::new(),
            WireRecord::IpcConnection { recv_waiter, queue, replies } => {
                let mut v: Vec<u64> = recv_waiter.iter().copied().collect();
                v.extend(queue.iter().map(|(o, _)| *o));
                v.extend(replies.iter().map(|(o, _)| *o));
                v
            }
            WireRecord::Notification { waiters, .. } => waiters.clone(),
            WireRecord::IrqNotification { waiters, .. } => waiters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f, "roundtrip failed");
    }

    #[test]
    fn control_frames_roundtrip() {
        roundtrip(Frame::DeltaBegin { epoch: 1, round: 7, records: 3, tombstones: 1, pages: 9 });
        roundtrip(Frame::Tombstone { oroot: 0xdead });
        roundtrip(Frame::DeltaCommit { epoch: 1, round: 7, root: 42 });
        roundtrip(Frame::SnapBegin { epoch: 2, round: 9, records: 100, pages: 400 });
        roundtrip(Frame::SnapCommit { epoch: 2, round: 9, root: 42 });
        roundtrip(Frame::Ack { epoch: 2, round: 9 });
        roundtrip(Frame::ResyncRequest { epoch: 2, applied_round: 4 });
    }

    #[test]
    fn page_frame_roundtrips() {
        let mut data = Box::new([0u8; 4096]);
        data[0] = 0xab;
        data[4095] = 0xcd;
        roundtrip(Frame::Page { oroot: 5, idx: 17, version: 3, crc: 0x1234_5678, data });
    }

    #[test]
    fn every_record_variant_roundtrips() {
        let records = vec![
            WireRecord::CapGroup {
                name: "root".into(),
                caps: vec![Some((1, 0b111)), None, Some((9, 0b1))],
            },
            WireRecord::Thread {
                regs: [7; 16],
                pc: 3,
                state: WireThreadState::BlockedIpcReply(12),
                program: "kv-server".into(),
                cap_group: 1,
                vmspace: 2,
            },
            WireRecord::VmSpace {
                regions: vec![WireRegion { base: 0x1000, npages: 4, pmo: 8, pmo_off: 0, perm: 3 }],
            },
            WireRecord::Pmo {
                npages: 16,
                eternal: true,
                synced_tick: 5,
                pages: vec![(0, 3, 0xaa), (7, 2, 0xbb)],
            },
            WireRecord::IpcConnection {
                recv_waiter: Some(4),
                queue: vec![(5, vec![1, 2, 3])],
                replies: vec![(6, vec![]), (7, vec![9])],
            },
            WireRecord::Notification { count: 2, waiters: vec![10, 11] },
            WireRecord::IrqNotification { line: 33, count: 0, waiters: vec![] },
        ];
        for rec in records {
            roundtrip(Frame::Record { oroot: 99, rec });
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_errors_not_panics() {
        let full = Frame::DeltaCommit { epoch: 1, round: 2, root: 3 }.encode();
        for cut in 0..full.len() {
            assert!(Frame::decode(&full[..cut]).is_err());
        }
        assert_eq!(Frame::decode(&[0xff]), Err(WireError::BadTag(0xff)));
        let mut trailing = full.clone();
        trailing.push(0);
        assert_eq!(Frame::decode(&trailing), Err(WireError::Trailing));
    }

    #[test]
    fn refs_cover_every_edge() {
        let rec = WireRecord::Thread {
            regs: [0; 16],
            pc: 0,
            state: WireThreadState::BlockedNotification(5),
            program: String::new(),
            cap_group: 1,
            vmspace: 2,
        };
        assert_eq!(rec.refs(), vec![1, 2, 5]);
    }
}
