//! The replica side: applying shipped deltas, quarantining damage, and
//! promoting the mirror into a bootable kernel after primary failure.
//!
//! A replica is a logical mirror, not a byte mirror: it holds the
//! shipped wire records and page images keyed by the *primary's* raw
//! ORoot ids. Promotion re-materializes a real persistent tree from the
//! mirror (slot ids are machine-local, so every reference is translated
//! through a fresh id map), commits it, and then routes the image through
//! the ordinary crash-restore path — the promoted machine is validated by
//! the exact same code that validates a local reboot.
//!
//! Damage handling is uniform: a CRC-corrupt slot, an undecodable frame,
//! a round gap, or a count mismatch at commit all *quarantine* the
//! in-flight round (drop staging, count it, request a resync) and never
//! panic. Until the snapshot lands the replica keeps acking nothing, so
//! the primary's quorum accounting sees it as behind — which it is.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use treesls::{ProgramRegistry, RestoreReport, System, SystemConfig};
use treesls_kernel::cap::CapRights;
use treesls_kernel::kernel::{Kernel, Persistent};
use treesls_kernel::object::ObjType;
use treesls_kernel::oroot::{
    BackupObject, BkCap, BkPageEntry, BkRegion, BkThreadState, ORoot, VersionedBackup,
};
use treesls_kernel::pmo::{PagePtr, PageSlot, PmoKind};
use treesls_kernel::radix::Radix;
use treesls_kernel::thread::ThreadContext;
use treesls_kernel::types::{KernelError, OrootId};
use treesls_net::ReplChannel;
use treesls_obs::MetricsRegistry;
use treesls_pmem_alloc::AllocError;

use crate::wire::{Frame, WireRecord, WireThreadState};

/// One shipped 4 KiB page image.
#[derive(Debug, Clone, PartialEq)]
pub struct PageImage {
    /// Checkpoint version the image belongs to.
    pub version: u64,
    /// CRC of `data` as computed on the primary.
    pub crc: u32,
    /// The page bytes.
    pub data: Box<[u8; 4096]>,
}

/// The replica's durable mirror: the primary's tree in wire form, keyed
/// by the primary's raw ORoot ids.
#[derive(Debug, Clone, Default)]
pub struct ReplicaStore {
    /// Primary epoch this state was shipped under.
    pub epoch: u64,
    /// Last atomically applied round.
    pub applied_round: u64,
    /// Raw id of the root cap group as of `applied_round`.
    pub root: u64,
    /// Record per live ORoot.
    pub records: HashMap<u64, WireRecord>,
    /// Page images keyed by `(oroot, page index)`. Cumulative: a delta
    /// only ships changed pages, unchanged ones stay from prior rounds.
    pub pages: HashMap<(u64, u64), PageImage>,
}

/// An in-flight round being staged; applied atomically at the commit
/// frame, discarded whole on any damage.
#[derive(Debug, Default)]
struct Staging {
    snapshot: bool,
    epoch: u64,
    round: u64,
    expect_records: u32,
    expect_tombstones: u32,
    expect_pages: u32,
    records: HashMap<u64, WireRecord>,
    pages: HashMap<(u64, u64), PageImage>,
    tombstones: HashSet<u64>,
}

#[derive(Debug, Default)]
struct ReplicaState {
    store: ReplicaStore,
    staging: Option<Staging>,
    /// Set after quarantine: ignore delta frames until a snapshot lands.
    awaiting_snapshot: bool,
    /// Frames below this epoch are from a deposed primary; ignore them.
    min_epoch: u64,
}

/// A replica machine consuming one [`ReplChannel`] from the primary.
pub struct Replica {
    /// Replica index within the cluster (stable; used in logs/metrics).
    pub id: usize,
    /// The queue pair shared with the primary.
    pub channel: Arc<ReplChannel>,
    /// The replica machine's own metrics registry.
    pub metrics: Arc<MetricsRegistry>,
    state: Mutex<ReplicaState>,
    alive: AtomicBool,
    /// Frames ignored due to epoch fencing (deposed-primary writes).
    pub fenced_frames: AtomicU64,
}

impl Replica {
    /// Creates a fresh (empty) replica on `channel`. A fresh replica at
    /// round 0 accepts the primary's first delta (round 1) directly; a
    /// replica attached later gap-detects and resyncs.
    pub fn new(id: usize, channel: Arc<ReplChannel>) -> Arc<Self> {
        Arc::new(Self {
            id,
            channel,
            metrics: Arc::new(MetricsRegistry::new()),
            state: Mutex::new(ReplicaState::default()),
            alive: AtomicBool::new(true),
            fenced_frames: AtomicU64::new(0),
        })
    }

    /// Whether the replica machine is up.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Crashes the replica machine: polling stops and the volatile
    /// staging area (any half-applied round) is lost. The durable mirror
    /// (`ReplicaStore`) survives, as NVM would.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
        let mut st = self.state.lock();
        st.staging = None;
    }

    /// Reboots the replica. It cannot know which frames it missed while
    /// down, so it conservatively requests a resync.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::SeqCst);
        let mut st = self.state.lock();
        st.staging = None;
        st.awaiting_snapshot = true;
        let req = Frame::ResyncRequest {
            epoch: st.store.epoch,
            applied_round: st.store.applied_round,
        };
        drop(st);
        let _ = self.channel.send_ack(&req.encode());
    }

    /// Fences out frames below `epoch` (called when a peer is promoted:
    /// the deposed primary may still be shipping).
    pub fn fence(&self, epoch: u64) {
        self.state.lock().min_epoch = epoch;
    }

    /// Last atomically applied round.
    pub fn applied_round(&self) -> u64 {
        self.state.lock().store.applied_round
    }

    /// Whether the replica is quarantined and waiting for a snapshot.
    pub fn is_awaiting_snapshot(&self) -> bool {
        self.state.lock().awaiting_snapshot
    }

    /// A clone of the durable mirror (promotion input).
    pub fn store_snapshot(&self) -> ReplicaStore {
        self.state.lock().store.clone()
    }

    /// Drains every available delta frame. Returns frames consumed.
    pub fn poll(&self) -> usize {
        self.poll_limit(usize::MAX)
    }

    /// Drains at most `max` frames (deterministic mid-round crash drills
    /// stop a replica between two frames of one delta).
    pub fn poll_limit(&self, max: usize) -> usize {
        if !self.is_alive() {
            return 0;
        }
        let mut n = 0;
        while n < max {
            match self.channel.recv_delta() {
                Ok(None) => break,
                Ok(Some((_tag, bytes))) => {
                    n += 1;
                    match Frame::decode(&bytes) {
                        Ok(frame) => self.handle(frame),
                        Err(_) => self.quarantine(),
                    }
                }
                Err(_corrupt) => {
                    // The slot was consumed by the channel; the stream
                    // now has a hole, so the round cannot apply.
                    n += 1;
                    self.quarantine();
                }
            }
        }
        n
    }

    fn handle(&self, frame: Frame) {
        let mut st = self.state.lock();
        let frame_epoch = match &frame {
            Frame::DeltaBegin { epoch, .. }
            | Frame::DeltaCommit { epoch, .. }
            | Frame::SnapBegin { epoch, .. }
            | Frame::SnapCommit { epoch, .. } => Some(*epoch),
            _ => None,
        };
        if let Some(e) = frame_epoch {
            if e < st.min_epoch {
                self.fenced_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        match frame {
            Frame::DeltaBegin { epoch, round, records, tombstones, pages } => {
                if st.awaiting_snapshot {
                    return;
                }
                // A duplicated frame of an already-applied round is not
                // damage; the application was atomic, so ignore it.
                if round <= st.store.applied_round {
                    return;
                }
                if round != st.store.applied_round + 1 {
                    // Round gap: a delta was dropped or superseded.
                    drop(st);
                    self.quarantine();
                    return;
                }
                st.staging = Some(Staging {
                    snapshot: false,
                    epoch,
                    round,
                    expect_records: records,
                    expect_tombstones: tombstones,
                    expect_pages: pages,
                    ..Staging::default()
                });
            }
            Frame::Record { oroot, rec } => {
                if let Some(s) = st.staging.as_mut() {
                    s.records.insert(oroot, rec);
                }
            }
            Frame::Page { oroot, idx, version, crc, data } => {
                if let Some(s) = st.staging.as_mut() {
                    s.pages.insert((oroot, idx), PageImage { version, crc, data });
                }
            }
            Frame::Tombstone { oroot } => {
                if let Some(s) = st.staging.as_mut() {
                    s.tombstones.insert(oroot);
                }
            }
            Frame::DeltaCommit { epoch, round, root } => {
                let ok = st.staging.as_ref().is_some_and(|s| {
                    !s.snapshot
                        && s.epoch == epoch
                        && s.round == round
                        && s.records.len() == s.expect_records as usize
                        && s.tombstones.len() == s.expect_tombstones as usize
                        && s.pages.len() == s.expect_pages as usize
                });
                if st.awaiting_snapshot {
                    return;
                }
                if !ok {
                    // A duplicate commit for a round that already applied
                    // atomically is harmless; anything else is damage.
                    let stale = round <= st.store.applied_round;
                    drop(st);
                    if !stale {
                        self.quarantine();
                    }
                    return;
                }
                let s = st.staging.take().expect("checked above");
                if !s.tombstones.is_empty() {
                    for t in &s.tombstones {
                        st.store.records.remove(t);
                    }
                    st.store.pages.retain(|(o, _), _| !s.tombstones.contains(o));
                }
                st.store.records.extend(s.records);
                st.store.pages.extend(s.pages);
                st.store.root = root;
                st.store.applied_round = round;
                st.store.epoch = epoch;
                drop(st);
                let _ = self.channel.send_ack(&Frame::Ack { epoch, round }.encode());
            }
            Frame::SnapBegin { epoch, round, records, pages } => {
                st.staging = Some(Staging {
                    snapshot: true,
                    epoch,
                    round,
                    expect_records: records,
                    expect_pages: pages,
                    ..Staging::default()
                });
            }
            Frame::SnapCommit { epoch, round, root } => {
                let ok = st.staging.as_ref().is_some_and(|s| {
                    s.snapshot
                        && s.epoch == epoch
                        && s.round == round
                        && s.records.len() == s.expect_records as usize
                        && s.pages.len() == s.expect_pages as usize
                });
                if !ok {
                    let stale = round <= st.store.applied_round;
                    drop(st);
                    if !stale {
                        self.quarantine();
                    }
                    return;
                }
                let s = st.staging.take().expect("checked above");
                st.store = ReplicaStore {
                    epoch,
                    applied_round: round,
                    root,
                    records: s.records,
                    pages: s.pages,
                };
                st.awaiting_snapshot = false;
                self.metrics.record_repl_resync();
                drop(st);
                let _ = self.channel.send_ack(&Frame::Ack { epoch, round }.encode());
            }
            Frame::Ack { .. } | Frame::ResyncRequest { .. } => {
                // Primary-bound control frames never appear on the delta
                // ring; treat as damage.
                drop(st);
                self.quarantine();
            }
        }
    }

    /// Drops the in-flight round and requests a full-state transfer.
    /// Never panics: damage is an expected input, not a bug.
    fn quarantine(&self) {
        self.metrics.record_repl_quarantine();
        let mut st = self.state.lock();
        st.staging = None;
        st.awaiting_snapshot = true;
        let req = Frame::ResyncRequest {
            epoch: st.store.epoch,
            applied_round: st.store.applied_round,
        };
        drop(st);
        let _ = self.channel.send_ack(&req.encode());
    }
}

/// Failures while materializing a promoted kernel from a mirror.
#[derive(Debug)]
pub enum PromoteError {
    /// Nothing to promote (no round ever applied).
    EmptyStore,
    /// The shipped root id has no record.
    MissingRoot,
    /// A record references an id with no record (`from → to`).
    MissingRef {
        /// Raw ORoot id of the referencing record.
        from: u64,
        /// Raw ORoot id the reference points at.
        to: u64,
    },
    /// A PMO manifest entry has no page image.
    MissingPage {
        /// Raw ORoot id of the PMO.
        oroot: u64,
        /// Missing page index.
        idx: u64,
    },
    /// A page image's CRC does not match the manifest.
    PageMismatch {
        /// Raw ORoot id of the PMO.
        oroot: u64,
        /// Mismatching page index.
        idx: u64,
    },
    /// NVM allocation failed while materializing.
    Alloc(AllocError),
    /// Restore of the materialized image failed.
    Kernel(KernelError),
}

impl From<AllocError> for PromoteError {
    fn from(e: AllocError) -> Self {
        PromoteError::Alloc(e)
    }
}

impl From<KernelError> for PromoteError {
    fn from(e: KernelError) -> Self {
        PromoteError::Kernel(e)
    }
}

/// Promotes a replica mirror into a running [`System`]: materializes a
/// persistent tree on a fresh NVM device (translating every raw id to
/// this machine's slot ids), commits it at the mirror's round, and boots
/// through the standard crash-restore path so the §4.4 validation
/// (type checks, page CRC verification, quarantine) applies to the
/// promoted image exactly as to a local reboot.
pub fn promote(
    store: &ReplicaStore,
    config: SystemConfig,
    register_programs: impl FnOnce(&ProgramRegistry),
) -> Result<(System, RestoreReport), PromoteError> {
    if store.applied_round == 0 || store.records.is_empty() {
        return Err(PromoteError::EmptyStore);
    }
    let pers = Persistent::format(&config.kernel);
    let kernel = Kernel::from_parts(pers, config.kernel.clone());
    let round = store.applied_round;

    // Pass 1: allocate an ORoot per mirrored record; build the id map.
    let mut map: HashMap<u64, OrootId> = HashMap::with_capacity(store.records.len());
    for (&raw, rec) in &store.records {
        let otype = match rec {
            WireRecord::CapGroup { .. } => ObjType::CapGroup,
            WireRecord::Thread { .. } => ObjType::Thread,
            WireRecord::VmSpace { .. } => ObjType::VmSpace,
            WireRecord::Pmo { .. } => ObjType::Pmo,
            WireRecord::IpcConnection { .. } => ObjType::IpcConnection,
            WireRecord::Notification { .. } => ObjType::Notification,
            WireRecord::IrqNotification { .. } => ObjType::IrqNotification,
        };
        let id = kernel.pers.oroots.insert(ORoot {
            otype,
            runtime: None,
            backups: [None, None],
            ckpt_round: 0,
            deleted_at: None,
            // Healed by the restore-time full walk.
            inrefs: 0,
        });
        map.insert(raw, id);
    }

    // Pass 2: materialize each record with translated references.
    for (&raw, rec) in &store.records {
        let backup = materialize(&kernel, store, raw, rec, &map)?;
        let size = backup.approx_size();
        let slot = kernel.pers.backups.insert(backup);
        let slab_addr = kernel.pers.alloc.slab_alloc(size)?;
        kernel.pers.oroots.with_mut(map[&raw], |o| {
            o.backups[0] = Some(VersionedBackup {
                slot,
                version: round,
                slab: Some((slab_addr, size as u32)),
            });
            o.ckpt_round = round;
        });
    }

    let root = *map.get(&store.root).ok_or(PromoteError::MissingRoot)?;
    kernel.pers.set_root_oroot(root);
    kernel.pers.commit_version(round);

    // Boot through the ordinary crash-restore path.
    let image = treesls_checkpoint::restore::crash(kernel);
    Ok(System::recover(image, config, register_programs)?)
}

fn translate(map: &HashMap<u64, OrootId>, from: u64, to: u64) -> Result<OrootId, PromoteError> {
    map.get(&to).copied().ok_or(PromoteError::MissingRef { from, to })
}

fn materialize(
    kernel: &Arc<Kernel>,
    store: &ReplicaStore,
    raw: u64,
    rec: &WireRecord,
    map: &HashMap<u64, OrootId>,
) -> Result<BackupObject, PromoteError> {
    Ok(match rec {
        WireRecord::CapGroup { name, caps } => BackupObject::CapGroup {
            name: name.clone(),
            caps: caps
                .iter()
                .map(|c| {
                    c.map(|(oroot, rights)| {
                        Ok(BkCap {
                            oroot: translate(map, raw, oroot)?,
                            rights: CapRights(rights),
                        })
                    })
                    .transpose()
                })
                .collect::<Result<_, PromoteError>>()?,
        },
        WireRecord::Thread { regs, pc, state, program, cap_group, vmspace } => {
            BackupObject::Thread {
                ctx: ThreadContext { regs: *regs, pc: *pc },
                state: match state {
                    WireThreadState::Runnable => BkThreadState::Runnable,
                    WireThreadState::BlockedNotification(o) => {
                        BkThreadState::BlockedNotification(translate(map, raw, *o)?)
                    }
                    WireThreadState::BlockedIpcRecv(o) => {
                        BkThreadState::BlockedIpcRecv(translate(map, raw, *o)?)
                    }
                    WireThreadState::BlockedIpcReply(o) => {
                        BkThreadState::BlockedIpcReply(translate(map, raw, *o)?)
                    }
                    WireThreadState::Exited => BkThreadState::Exited,
                },
                program: program.clone(),
                cap_group: translate(map, raw, *cap_group)?,
                vmspace: translate(map, raw, *vmspace)?,
            }
        }
        WireRecord::VmSpace { regions } => BackupObject::VmSpace {
            regions: regions
                .iter()
                .map(|r| {
                    Ok(BkRegion {
                        base: r.base,
                        npages: r.npages,
                        pmo: translate(map, raw, r.pmo)?,
                        pmo_off: r.pmo_off,
                        perm: CapRights(r.perm),
                    })
                })
                .collect::<Result<_, PromoteError>>()?,
        },
        WireRecord::Pmo { npages, eternal, synced_tick, pages } => {
            let mut radix = Radix::new();
            for &(idx, version, crc) in pages {
                let img = store
                    .pages
                    .get(&(raw, idx))
                    .ok_or(PromoteError::MissingPage { oroot: raw, idx })?;
                if img.crc != crc {
                    return Err(PromoteError::PageMismatch { oroot: raw, idx });
                }
                let frame = kernel.pers.alloc.alloc_page()?;
                kernel.pers.dev.write_page(frame, &img.data);
                let slot = PageSlot::new(idx, frame);
                {
                    let mut meta = slot.meta.lock();
                    meta.pairs = [Some(PagePtr::backup(frame, version, crc)), None];
                    meta.writable = false;
                    meta.eternal = *eternal;
                }
                radix.insert(idx, BkPageEntry { slot, added: 0, removed: None });
            }
            BackupObject::Pmo {
                npages: *npages,
                kind: if *eternal { PmoKind::Eternal } else { PmoKind::Data },
                pages: radix,
                synced_tick: *synced_tick,
            }
        }
        WireRecord::IpcConnection { recv_waiter, queue, replies } => {
            BackupObject::IpcConnection {
                recv_waiter: recv_waiter
                    .map(|o| translate(map, raw, o))
                    .transpose()?,
                queue: queue
                    .iter()
                    .map(|(o, m)| Ok((translate(map, raw, *o)?, m.clone())))
                    .collect::<Result<_, PromoteError>>()?,
                replies: replies
                    .iter()
                    .map(|(o, m)| Ok((translate(map, raw, *o)?, m.clone())))
                    .collect::<Result<_, PromoteError>>()?,
            }
        }
        WireRecord::Notification { count, waiters } => BackupObject::Notification {
            count: *count,
            waiters: waiters
                .iter()
                .map(|&o| translate(map, raw, o))
                .collect::<Result<_, PromoteError>>()?,
        },
        WireRecord::IrqNotification { line, count, waiters } => {
            BackupObject::IrqNotification {
                line: *line,
                count: *count,
                waiters: waiters
                    .iter()
                    .map(|&o| translate(map, raw, o))
                    .collect::<Result<_, PromoteError>>()?,
            }
        }
    })
}
