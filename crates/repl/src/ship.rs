//! The primary side: shipping each committed round's delta to every
//! replica and holding the NIC's visibility barrier at the
//! quorum-durable round.
//!
//! The dirty-queue drain *is* the delta ([`RoundDelta`]): the shipper
//! serializes only the records the round rewrote plus the page images
//! whose CRC changed since they were last shipped, so wire bytes scale
//! with the change rate, not the tree size (the same O(changes) argument
//! as the checkpoint itself). A replica that misses anything — drop,
//! reorder past the window, corruption, its own crash — requests a
//! resync and receives a full snapshot instead of the next delta.
//!
//! External synchrony across machines: the shipper runs *before* the
//! NIC's checkpoint callback (`register_callback_front`), waits up to
//! `ack_timeout` for the round to be durable on `quorum` machines
//! (counting the primary), and publishes the result through
//! [`ReplHealth`], the [`ReleaseGate`] the NIC consults. Quorum met →
//! the barrier releases through this round. Quorum lost → the barrier
//! stays at the last durable round (responses for newer state are held,
//! not dropped), new writes are shed with `Busy`, reads keep flowing,
//! and the health flips to degraded until a later round reaches quorum.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use treesls_checkpoint::{CheckpointManager, CkptCallback, RoundDelta};
use treesls_kernel::kernel::Kernel;
use treesls_kernel::oroot::{BackupObject, BkThreadState};
use treesls_net::repl::ReleaseGate;
use treesls_net::{ReplChannel, ShipError};
use treesls_nvm::crash_site;
use treesls_obs::EventKind;

use crate::wire::{Frame, WireRecord, WireRegion, WireThreadState};

/// Replication tunables.
#[derive(Debug, Clone)]
pub struct ShipConfig {
    /// Machines (including the primary) that must hold a round durably
    /// before the visibility barrier releases it. `1` = no remote wait:
    /// single-box behavior, the compatibility oracle.
    pub quorum: usize,
    /// How long to wait for quorum before declaring degraded mode.
    pub ack_timeout: Duration,
    /// Per-frame push retries when a replica's ring is full.
    pub max_retries: u32,
    /// Base retry backoff; doubles per attempt up to `backoff_cap`.
    pub backoff: Duration,
    /// Retry backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ShipConfig {
    fn default() -> Self {
        Self {
            quorum: 1,
            ack_timeout: Duration::from_millis(50),
            max_retries: 6,
            backoff: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
        }
    }
}

/// Classifies a request payload as a write (`true`) for degraded-mode
/// shedding.
pub type WriteClassifier = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// Cluster durability state; implements the [`ReleaseGate`] the NIC
/// consults on every checkpoint and every admitted request.
pub struct ReplHealth {
    durable: AtomicU64,
    degraded: AtomicBool,
    /// Degraded-mode write classifier. `None` sheds everything while
    /// degraded (conservative).
    write_classifier: Mutex<Option<WriteClassifier>>,
}

impl ReplHealth {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            durable: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            write_classifier: Mutex::new(None),
        })
    }

    /// Highest round durable on a quorum of machines.
    pub fn durable_round(&self) -> u64 {
        self.durable.load(Ordering::SeqCst)
    }

    /// Whether the cluster is below quorum (writes shed, barrier held).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Installs the payload classifier degraded mode uses to shed writes
    /// while still admitting reads.
    pub fn set_write_classifier(&self, f: WriteClassifier) {
        *self.write_classifier.lock() = Some(f);
    }
}

impl ReleaseGate for ReplHealth {
    fn release_bound(&self, committed: u64) -> u64 {
        committed.min(self.durable.load(Ordering::SeqCst))
    }

    fn admit(&self, payload: &[u8]) -> bool {
        if !self.degraded.load(Ordering::SeqCst) {
            return true;
        }
        match self.write_classifier.lock().clone() {
            Some(is_write) => !is_write(payload),
            None => false,
        }
    }
}

struct Peer {
    id: usize,
    ch: Arc<ReplChannel>,
    /// Highest round this peer has acked under the current epoch.
    acked: u64,
    /// Ship a full snapshot instead of the next delta.
    needs_snapshot: bool,
}

/// Per-round shipping telemetry (consumed by the bench harness).
#[derive(Debug, Clone, Default)]
pub struct ShipStats {
    /// Checkpoint round the stats cover.
    pub round: u64,
    /// Backup records shipped in the round's delta.
    pub records: u64,
    /// Tombstones shipped.
    pub tombstones: u64,
    /// Page images shipped.
    pub pages: u64,
    /// Encoded frame bytes shipped (all peers).
    pub bytes: u64,
    /// Peers that received a snapshot this round.
    pub snapshots: u64,
    /// Nanoseconds spent waiting for quorum.
    pub wait_ns: u64,
    /// Machines durable at this round when the wait ended.
    pub durable: u64,
    /// Whether the round ended below quorum (degraded mode).
    pub degraded: bool,
}

struct BuiltFrames {
    frames: Vec<Vec<u8>>,
    records: u64,
    tombstones: u64,
    pages: u64,
    bytes: u64,
}

/// The checkpoint-shipping callback installed on the primary.
pub struct Shipper {
    kernel: Arc<Kernel>,
    mgr: Weak<CheckpointManager>,
    cfg: ShipConfig,
    /// The gate the primary's NIC consults (install with
    /// [`VirtualNic::set_release_gate`](treesls_net::VirtualNic::set_release_gate)).
    pub health: Arc<ReplHealth>,
    epoch: AtomicU64,
    peers: Mutex<Vec<Peer>>,
    /// Last shipped CRC per `(oroot, page idx)`: pages whose content did
    /// not change since the previous ship are elided from deltas.
    page_crc: Mutex<HashMap<(u64, u64), u32>>,
    /// Eternal PMOs seen by any ship. Host clients write eternal rings
    /// directly — no fault ever fires, so nothing marks them dirty and
    /// they would silently drop out of every delta. They are instead
    /// re-serialized every round; the CRC cache keeps unchanged ring
    /// pages off the wire.
    eternal: Mutex<HashSet<u64>>,
    /// Telemetry of the most recent round.
    pub last_ship: Mutex<ShipStats>,
}

impl Shipper {
    /// Creates a shipper over one channel per replica and registers it at
    /// the *front* of `mgr`'s callback chain (it must run before the
    /// NIC's visibility barrier).
    pub fn install(
        kernel: Arc<Kernel>,
        mgr: &Arc<CheckpointManager>,
        channels: Vec<Arc<ReplChannel>>,
        cfg: ShipConfig,
    ) -> Arc<Self> {
        let shipper = Arc::new(Self {
            kernel,
            mgr: Arc::downgrade(mgr),
            cfg,
            health: ReplHealth::new(),
            epoch: AtomicU64::new(1),
            peers: Mutex::new(
                channels
                    .into_iter()
                    .enumerate()
                    .map(|(id, ch)| Peer { id, ch, acked: 0, needs_snapshot: false })
                    .collect(),
            ),
            page_crc: Mutex::new(HashMap::new()),
            eternal: Mutex::new(HashSet::new()),
            last_ship: Mutex::new(ShipStats::default()),
        });
        mgr.register_callback_front(Arc::clone(&shipper) as Arc<dyn CkptCallback>);
        shipper
    }

    /// The primary's current epoch (bumped by failover).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Highest round acked by peer `id` under the current epoch.
    pub fn peer_acked(&self, id: usize) -> u64 {
        self.peers.lock().iter().find(|p| p.id == id).map_or(0, |p| p.acked)
    }

    /// Drains the ack rings: acks raise the peer's durable round, resync
    /// requests flag the peer for a snapshot.
    fn drain_acks(&self) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut peers = self.peers.lock();
        for peer in peers.iter_mut() {
            loop {
                match peer.ch.recv_ack() {
                    Ok(None) => break,
                    Ok(Some(bytes)) => match Frame::decode(&bytes) {
                        Ok(Frame::Ack { epoch: e, round }) if e == epoch => {
                            if round > peer.acked {
                                peer.acked = round;
                                self.kernel.metrics.record_repl_ack();
                                self.kernel.pers.recorder().record(
                                    EventKind::ReplAck,
                                    [epoch, round, peer.id as u64, 0, 0, 0],
                                );
                            }
                        }
                        Ok(Frame::ResyncRequest { applied_round, .. }) => {
                            if !peer.needs_snapshot {
                                peer.needs_snapshot = true;
                                self.kernel.metrics.record_repl_resync();
                                self.kernel.pers.recorder().record(
                                    EventKind::ReplResync,
                                    [epoch, applied_round, peer.id as u64, 0, 0, 0],
                                );
                            }
                        }
                        // Stale-epoch acks and anything else: ignore.
                        Ok(_) | Err(_) => {}
                    },
                    // A corrupt ack slot was consumed; the next ack
                    // supersedes it.
                    Err(_) => {}
                }
            }
        }
    }

    /// Serializes one backup record; PMO page images whose CRC changed
    /// since the last ship are appended to `pages` (pass `ship_all` to
    /// bypass the cache for snapshots).
    fn wire_of(
        &self,
        raw: u64,
        rec: &BackupObject,
        round: u64,
        ship_all: bool,
        pages: &mut Vec<Frame>,
    ) -> WireRecord {
        let to_raw = |id: treesls_kernel::types::OrootId| id.to_raw();
        match rec {
            BackupObject::CapGroup { name, caps } => WireRecord::CapGroup {
                name: name.clone(),
                caps: caps
                    .iter()
                    .map(|c| c.map(|bk| (to_raw(bk.oroot), bk.rights.0)))
                    .collect(),
            },
            BackupObject::Thread { ctx, state, program, cap_group, vmspace } => {
                WireRecord::Thread {
                    regs: ctx.regs,
                    pc: ctx.pc,
                    state: match state {
                        BkThreadState::Runnable => WireThreadState::Runnable,
                        BkThreadState::BlockedNotification(o) => {
                            WireThreadState::BlockedNotification(to_raw(*o))
                        }
                        BkThreadState::BlockedIpcRecv(o) => {
                            WireThreadState::BlockedIpcRecv(to_raw(*o))
                        }
                        BkThreadState::BlockedIpcReply(o) => {
                            WireThreadState::BlockedIpcReply(to_raw(*o))
                        }
                        BkThreadState::Exited => WireThreadState::Exited,
                    },
                    program: program.clone(),
                    cap_group: to_raw(*cap_group),
                    vmspace: to_raw(*vmspace),
                }
            }
            BackupObject::VmSpace { regions } => WireRecord::VmSpace {
                regions: regions
                    .iter()
                    .map(|r| WireRegion {
                        base: r.base,
                        npages: r.npages,
                        pmo: to_raw(r.pmo),
                        pmo_off: r.pmo_off,
                        perm: r.perm.0,
                    })
                    .collect(),
            },
            BackupObject::Pmo { npages, kind, pages: radix, synced_tick } => {
                if matches!(kind, treesls_kernel::pmo::PmoKind::Eternal) {
                    self.eternal.lock().insert(raw);
                }
                let mut manifest = Vec::new();
                let mut cache = self.page_crc.lock();
                radix.for_each(|idx, entry| {
                    if !entry.live_at(round) {
                        return;
                    }
                    let meta = entry.slot.meta.lock();
                    // The shipped bytes must be the *frozen* round image,
                    // not the live runtime — under epoch-concurrent
                    // checkpointing a page's round image may live in a
                    // not-yet-folded whole-page capture, or be
                    // reconstructible only as runtime ⊖ its in-line undo
                    // log (mutators kept writing through the copy phase).
                    use treesls_kernel::pmo::RestoreImage;
                    let mut data = Box::new([0u8; 4096]);
                    let (version, stored_crc) = match meta.restore_image(round) {
                        RestoreImage::Capture(c) => {
                            self.kernel.pers.dev.read_page(c.frame, &mut data);
                            (c.version.min(round), c.crc)
                        }
                        RestoreImage::Log(log) => {
                            let rt = meta.pairs[1]
                                .expect("logged pages are non-migrated")
                                .frame;
                            self.kernel.pers.dev.read_page(rt, &mut data);
                            let mut raw_log = vec![0u8; log.used as usize];
                            self.kernel.pers.dev.read(log.frame, 0, &mut raw_log);
                            let recs = treesls_kernel::pmo::parse_undo_records(&raw_log);
                            treesls_kernel::pmo::apply_undo_records(&mut data, &recs);
                            (round, None)
                        }
                        // Version 0 ("the runtime page is the image")
                        // travels as-is: it is round-independent, so
                        // re-serializing an unchanged record at a later
                        // round yields identical bytes, and the promotion
                        // path accepts it (a v0 backup is picked by the
                        // (Some, None) fallthrough).
                        RestoreImage::Pair(pick) => {
                            let ptr = meta.pairs[pick].expect("picked pair exists");
                            self.kernel.pers.dev.read_page(ptr.frame, &mut data);
                            (ptr.version, ptr.crc)
                        }
                        RestoreImage::None => return,
                    };
                    // Backup pages are frozen, so their stored CRC matches
                    // the bytes read. A runtime page (no stored CRC) may be
                    // an eternal ring a host client is writing right now,
                    // and a log reconstruction is computed on the fly:
                    // hash the bytes we actually read, not the frame again.
                    let crc = stored_crc.unwrap_or_else(|| treesls_nvm::crc32(&data[..]));
                    manifest.push((idx, version, crc));
                    if ship_all || cache.get(&(raw, idx)) != Some(&crc) {
                        pages.push(Frame::Page { oroot: raw, idx, version, crc, data });
                    }
                    cache.insert((raw, idx), crc);
                });
                WireRecord::Pmo {
                    npages: *npages,
                    eternal: matches!(kind, treesls_kernel::pmo::PmoKind::Eternal),
                    synced_tick: *synced_tick,
                    pages: manifest,
                }
            }
            BackupObject::IpcConnection { recv_waiter, queue, replies } => {
                WireRecord::IpcConnection {
                    recv_waiter: recv_waiter.map(to_raw),
                    queue: queue.iter().map(|(o, m)| (to_raw(*o), m.clone())).collect(),
                    replies: replies.iter().map(|(o, m)| (to_raw(*o), m.clone())).collect(),
                }
            }
            BackupObject::Notification { count, waiters } => WireRecord::Notification {
                count: *count,
                waiters: waiters.iter().copied().map(to_raw).collect(),
            },
            BackupObject::IrqNotification { line, count, waiters } => {
                WireRecord::IrqNotification {
                    line: *line,
                    count: *count,
                    waiters: waiters.iter().copied().map(to_raw).collect(),
                }
            }
        }
    }

    /// The record a raw id maps to at `round`, if it is live and
    /// restorable (a rewritten-then-deleted id yields `None`).
    fn live_record(&self, id: treesls_kernel::types::OrootId, round: u64) -> Option<BackupObject> {
        let oroot = self.kernel.pers.oroots.get_cloned(id)?;
        if !oroot.live_at(round) {
            return None;
        }
        let pick = oroot.restore_pick(round)?;
        self.kernel.pers.backups.get_cloned(oroot.backups[pick]?.slot)
    }

    fn build_delta(&self, delta: &RoundDelta, epoch: u64, root: u64) -> BuiltFrames {
        let round = delta.round;
        let mut tombs: HashSet<u64> =
            delta.tombstoned.iter().map(|id| id.to_raw()).collect();
        let mut records = Vec::new();
        let mut pages = Vec::new();
        let mut shipped: HashSet<u64> = HashSet::new();
        for id in &delta.rewritten {
            let raw = id.to_raw();
            if tombs.contains(&raw) || !shipped.insert(raw) {
                continue;
            }
            match self.live_record(*id, round) {
                Some(rec) => {
                    let wire = self.wire_of(raw, &rec, round, false, &mut pages);
                    records.push(Frame::Record { oroot: raw, rec: wire });
                }
                // Rewritten then deleted before the callbacks ran: the
                // store no longer has it, so it is a tombstone.
                None => {
                    tombs.insert(raw);
                }
            }
        }
        // Eternal PMOs ride along every round (see the `eternal` field):
        // host writes to them never fault, so the dirty queue cannot
        // know about their content changes.
        let eternal: Vec<u64> = self.eternal.lock().iter().copied().collect();
        for raw in eternal {
            if tombs.contains(&raw) || shipped.contains(&raw) {
                continue;
            }
            let id = treesls_kernel::types::OrootId::from_raw(raw);
            match self.live_record(id, round) {
                Some(rec) => {
                    shipped.insert(raw);
                    let wire = self.wire_of(raw, &rec, round, false, &mut pages);
                    records.push(Frame::Record { oroot: raw, rec: wire });
                }
                None => {
                    self.eternal.lock().remove(&raw);
                }
            }
        }
        {
            // Deleted objects keep no page state worth deduplicating.
            let mut cache = self.page_crc.lock();
            cache.retain(|(o, _), _| !tombs.contains(o));
            self.eternal.lock().retain(|o| !tombs.contains(o));
        }
        let mut frames = Vec::with_capacity(records.len() + pages.len() + tombs.len() + 2);
        frames.push(
            Frame::DeltaBegin {
                epoch,
                round,
                records: records.len() as u32,
                tombstones: tombs.len() as u32,
                pages: pages.len() as u32,
            }
            .encode(),
        );
        let (nrec, npg, ntomb) = (records.len() as u64, pages.len() as u64, tombs.len() as u64);
        for f in records.into_iter().chain(pages) {
            frames.push(f.encode());
        }
        for t in &tombs {
            frames.push(Frame::Tombstone { oroot: *t }.encode());
        }
        frames.push(Frame::DeltaCommit { epoch, round, root }.encode());
        let bytes = frames.iter().map(|f| f.len() as u64).sum();
        BuiltFrames { frames, records: nrec, tombstones: ntomb, pages: npg, bytes }
    }

    /// A full-state transfer: every live, restorable record and every
    /// live page image at `round`.
    fn build_snapshot(&self, epoch: u64, round: u64, root: u64) -> BuiltFrames {
        let mut records = Vec::new();
        let mut pages = Vec::new();
        for id in self.kernel.pers.oroots.ids() {
            if let Some(rec) = self.live_record(id, round) {
                let raw = id.to_raw();
                let wire = self.wire_of(raw, &rec, round, true, &mut pages);
                records.push(Frame::Record { oroot: raw, rec: wire });
            }
        }
        let mut frames = Vec::with_capacity(records.len() + pages.len() + 2);
        frames.push(
            Frame::SnapBegin {
                epoch,
                round,
                records: records.len() as u32,
                pages: pages.len() as u32,
            }
            .encode(),
        );
        let (nrec, npg) = (records.len() as u64, pages.len() as u64);
        for f in records.into_iter().chain(pages) {
            frames.push(f.encode());
        }
        frames.push(Frame::SnapCommit { epoch, round, root }.encode());
        let bytes = frames.iter().map(|f| f.len() as u64).sum();
        BuiltFrames { frames, records: nrec, tombstones: 0, pages: npg, bytes }
    }

    /// Pushes `frames` to one peer with bounded retry and capped
    /// exponential backoff. Returns `false` (and flags the peer for a
    /// snapshot) if the ring stayed full through every retry.
    fn ship_to(&self, peer: &mut Peer, round: u64, frames: &[Vec<u8>], first_peer: bool) -> bool {
        let sched = self.kernel.pers.dev.crash_schedule();
        let last = frames.len().saturating_sub(1);
        for (i, frame) in frames.iter().enumerate() {
            if first_peer && i == last {
                // Crash with the delta's data shipped but its commit
                // frame not: the replica must hold the round in staging
                // and never apply it.
                crash_site!(sched, "repl.mid_ship");
            }
            let mut backoff = self.cfg.backoff;
            let mut attempt = 0;
            loop {
                match peer.ch.send_delta(round, frame) {
                    Ok(()) => break,
                    Err(ShipError::Backpressure) if attempt < self.cfg.max_retries => {
                        attempt += 1;
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.cfg.backoff_cap);
                    }
                    Err(_) => {
                        peer.needs_snapshot = true;
                        return false;
                    }
                }
            }
        }
        peer.ch.flush_wire();
        true
    }

    /// Machines (including the primary) durable at `round`.
    fn durable_at(&self, round: u64) -> usize {
        1 + self.peers.lock().iter().filter(|p| p.acked >= round).count()
    }
}

impl CkptCallback for Shipper {
    fn on_checkpoint(&self, version: u64) {
        let sched = self.kernel.pers.dev.crash_schedule();
        let epoch = self.epoch.load(Ordering::SeqCst);
        self.drain_acks();
        crash_site!(sched, "repl.pre_ship");

        let Some(root) = self.kernel.pers.root_oroot().map(|r| r.to_raw()) else {
            return;
        };
        let delta = self
            .mgr
            .upgrade()
            .and_then(|m| m.take_round_delta())
            .filter(|d| d.round == version)
            .map(|d| self.build_delta(&d, epoch, root));

        let mut stats = ShipStats { round: version, ..ShipStats::default() };
        if let Some(b) = &delta {
            stats.records = b.records;
            stats.tombstones = b.tombstones;
            stats.pages = b.pages;
        }

        // Ship: peers in good standing get the delta; flagged peers (or
        // everyone, if the round's delta is unavailable, e.g. right after
        // a restore) get a snapshot.
        let mut snapshot: Option<BuiltFrames> = None;
        {
            let mut peers = self.peers.lock();
            let mut first = true;
            for peer in peers.iter_mut() {
                let built = match &delta {
                    Some(d) if !peer.needs_snapshot => d,
                    _ => {
                        if snapshot.is_none() {
                            snapshot = Some(self.build_snapshot(epoch, version, root));
                        }
                        stats.snapshots += 1;
                        peer.needs_snapshot = false;
                        snapshot.as_ref().expect("built above")
                    }
                };
                stats.bytes += built.bytes;
                self.ship_to(peer, version, &built.frames, first);
                first = false;
            }
        }
        self.kernel.metrics.record_repl_ship(stats.records, stats.pages, stats.bytes);

        // Quorum wait: the visibility barrier may only release rounds
        // durable on `quorum` machines.
        let wait_start = Instant::now();
        let deadline = wait_start + self.cfg.ack_timeout;
        let mut durable = self.durable_at(version);
        while durable < self.cfg.quorum && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(20));
            self.drain_acks();
            durable = self.durable_at(version);
        }
        stats.wait_ns = wait_start.elapsed().as_nanos() as u64;
        stats.durable = durable as u64;
        crash_site!(sched, "repl.post_ack");

        if durable >= self.cfg.quorum {
            self.health.durable.store(version, Ordering::SeqCst);
            if self.health.degraded.swap(false, Ordering::SeqCst) {
                self.kernel.pers.recorder().record(
                    EventKind::ReplDegraded,
                    [epoch, version, 0, durable as u64, 0, 0],
                );
            }
        } else if !self.health.degraded.swap(true, Ordering::SeqCst) {
            self.kernel.metrics.record_repl_degraded();
            self.kernel.pers.recorder().record(
                EventKind::ReplDegraded,
                [epoch, version, 1, durable as u64, 0, 0],
            );
        }
        stats.degraded = self.health.is_degraded();

        let min_acked =
            self.peers.lock().iter().map(|p| p.acked).min().unwrap_or(version);
        self.kernel
            .metrics
            .set_repl_gauges(min_acked, version.saturating_sub(self.health.durable_round()));
        self.kernel.pers.recorder().record(
            EventKind::ReplShip,
            [version, stats.records, stats.pages, stats.bytes, stats.snapshots, durable as u64],
        );
        *self.last_ship.lock() = stats;
    }

    fn on_restore(&self, version: u64) {
        // The machine rebooted into `version`; its delta continuity is
        // gone, so every peer resyncs. The restored round is durable
        // locally by construction.
        self.health.durable.store(version, Ordering::SeqCst);
        self.health.degraded.store(false, Ordering::SeqCst);
        self.page_crc.lock().clear();
        self.eternal.lock().clear();
        for peer in self.peers.lock().iter_mut() {
            peer.needs_snapshot = true;
            peer.acked = 0;
        }
    }
}
