//! `treesls-repl` — checkpoint-shipping replication: survive the
//! machine, not just the power cord.
//!
//! TreeSLS makes a single box persistent: every checkpoint survives a
//! power cut because it lives in NVM. This crate extends the same
//! guarantee across machine failure by *shipping* each checkpoint
//! round's delta — the dirty-queue drain the checkpoint already computed
//! — over a dedicated [`ReplChannel`](treesls_net::ReplChannel) queue
//! pair to replica machines, which mirror the tree and ack by round.
//!
//! The external-synchrony story composes: the NIC's commit-gated TX
//! barrier (§5) already holds client-visible responses until the round
//! covering their state commits locally; with replication installed it
//! holds them until the round is durable on a configurable *quorum* of
//! machines ([`ReplHealth`] is the NIC's
//! [`ReleaseGate`](treesls_net::ReleaseGate)). `quorum = 1` degenerates
//! to exactly the single-box behavior — the compatibility oracle the
//! tests pin.
//!
//! * [`wire`] — CRC-checked frame codec (records with raw ids, page
//!   images, delta/snapshot bracketing, acks, resync requests).
//! * [`ship`] — the primary-side checkpoint callback: O(changes) delta
//!   construction, per-peer retry/backoff, snapshot resync, quorum wait,
//!   degraded mode.
//! * [`replica`] — the replica: atomic round application,
//!   quarantine-and-resync on any damage, and promotion of the mirror
//!   into a bootable [`System`](treesls::System) through the standard
//!   crash-restore path.
//! * [`cluster`] — the 1-primary + N-replica harness with the fault
//!   drill levers (partition, crash, corruption, failover).

#![deny(missing_docs)]

pub mod cluster;
pub mod replica;
pub mod ship;
pub mod wire;

pub use cluster::{Cluster, ClusterConfig};
pub use replica::{promote, PageImage, PromoteError, Replica, ReplicaStore};
pub use ship::{ReplHealth, ShipConfig, Shipper, ShipStats};
pub use wire::{Frame, WireError, WireRecord, WireRegion, WireThreadState};
