//! Criterion microbenchmarks for the TreeSLS primitives.
//!
//! These complement the table/figure binaries with statistically sampled
//! costs of the core operations: single-object checkpoint (Table 3's
//! microscopic view), page copy, CoW fault handling, NVM allocation and
//! ring-buffer operations.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use treesls::{CapRights, CheckpointManager, Kernel, KernelConfig, PmoKind, Vaddr, Vpn};
use treesls_kernel::cores::StwController;

fn kernel() -> Arc<Kernel> {
    Kernel::boot(KernelConfig { nvm_frames: 16_384, dram_pages: 512, ..KernelConfig::default() })
}

fn bench_page_copy(c: &mut Criterion) {
    let k = kernel();
    let a = k.pers.alloc.alloc_page().unwrap();
    let b = k.pers.alloc.alloc_page().unwrap();
    c.bench_function("nvm_page_copy_4k", |bench| {
        bench.iter(|| k.pers.dev.copy_frame(a, b));
    });
}

fn bench_alloc_free(c: &mut Criterion) {
    let k = kernel();
    c.bench_function("buddy_alloc_free_page", |bench| {
        bench.iter(|| {
            let f = k.pers.alloc.alloc_page().unwrap();
            k.pers.alloc.free_page(f).unwrap();
        });
    });
    c.bench_function("slab_alloc_free_128B", |bench| {
        bench.iter(|| {
            let a = k.pers.alloc.slab_alloc(128).unwrap();
            k.pers.alloc.slab_free(a, 128).unwrap();
        });
    });
}

fn bench_vm_write(c: &mut Criterion) {
    let k = kernel();
    let g = k.create_cap_group("bench").unwrap();
    let vs = k.create_vmspace(g).unwrap();
    let pmo = k.create_pmo(g, 64, PmoKind::Data).unwrap();
    k.map_region(vs, Vpn(0), 64, pmo, 0, CapRights::ALL).unwrap();
    k.vm_write(vs, Vaddr(0), &[0u8; 64]).unwrap();
    c.bench_function("vm_write_64B_warm", |bench| {
        bench.iter(|| k.vm_write(vs, Vaddr(0), &[7u8; 64]).unwrap());
    });
    c.bench_function("vm_read_64B_warm", |bench| {
        let mut buf = [0u8; 64];
        bench.iter(|| k.vm_read(vs, Vaddr(0), &mut buf).unwrap());
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    let k = kernel();
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&k), stw);
    let g = k.create_cap_group("app").unwrap();
    let vs = k.create_vmspace(g).unwrap();
    let pmo = k.create_pmo(g, 256, PmoKind::Data).unwrap();
    k.map_region(vs, Vpn(0), 256, pmo, 0, CapRights::ALL).unwrap();
    for p in 0..64u64 {
        k.vm_write(vs, Vaddr(p * 4096), &p.to_le_bytes()).unwrap();
    }
    mgr.checkpoint().unwrap();
    c.bench_function("incremental_checkpoint_idle", |bench| {
        bench.iter(|| mgr.checkpoint().unwrap());
    });
    c.bench_function("incremental_checkpoint_8_dirty_pages", |bench| {
        bench.iter(|| {
            for p in 0..8u64 {
                k.vm_write(vs, Vaddr(p * 4096), &[1u8; 8]).unwrap();
            }
            mgr.checkpoint().unwrap();
        });
    });
}

fn bench_cow_fault(c: &mut Criterion) {
    let k = kernel();
    let g = k.create_cap_group("cow").unwrap();
    let vs = k.create_vmspace(g).unwrap();
    let pmo = k.create_pmo(g, 4, PmoKind::Data).unwrap();
    k.map_region(vs, Vpn(0), 4, pmo, 0, CapRights::ALL).unwrap();
    k.vm_write(vs, Vaddr(0), &[0u8; 8]).unwrap();
    let slot = {
        let o = k.object(pmo).unwrap();
        let body = o.body.read();
        let treesls_kernel::object::ObjectBody::Pmo(p) = &*body else { unreachable!() };
        Arc::clone(p.get(0).unwrap())
    };
    c.bench_function("cow_fault_and_page_copy", |bench| {
        bench.iter(|| {
            slot.meta.lock().writable = false;
            k.vm_write(vs, Vaddr(0), &[1u8; 8]).unwrap();
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_page_copy, bench_alloc_free, bench_vm_write, bench_checkpoint, bench_cow_fault
}
criterion_main!(benches);
