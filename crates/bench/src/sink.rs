//! Shared result sink for the benchmark binaries.
//!
//! Every figure/table binary prints its plain-text tables to stdout as
//! before; with `--json` it *additionally* writes a machine-readable
//! `results/BENCH_<name>.json` document. The document embeds the exact
//! cells of the printed tables (as strings, so "n/a" / "+4" style cells
//! survive) plus the options the run was taken under, guarded by
//! [`SCHEMA_VERSION`]. `bench_validate` checks every document in
//! `results/` against this schema; OBSERVABILITY.md documents it.

use std::fs;
use std::path::PathBuf;

use treesls::Json;

use crate::harness::BenchOpts;
use crate::table::Table;

/// Version of the `BENCH_<name>.json` document layout. Bump on any
/// incompatible change; `bench_validate` rejects mismatches.
pub const SCHEMA_VERSION: u64 = 1;

/// Collects the tables and notes a benchmark binary produces and, when
/// `--json` was passed, writes them to `results/BENCH_<name>.json` on
/// [`finish`](Sink::finish).
pub struct Sink {
    name: String,
    title: String,
    opts: Json,
    json: bool,
    tables: Vec<(String, Table)>,
    notes: Vec<String>,
}

impl Sink {
    /// Creates a sink for the experiment `name` (the `BENCH_<name>.json`
    /// stem) and prints the human title.
    pub fn new(name: &str, title: &str, opts: &BenchOpts) -> Self {
        println!("{title}\n");
        let opts_json = Json::Obj(vec![
            ("cores".to_string(), Json::from(opts.cores as u64)),
            (
                "interval_ms".to_string(),
                opts.interval.map_or(Json::Null, |d| Json::from(d.as_secs_f64() * 1e3)),
            ),
            ("hybrid".to_string(), Json::from(opts.hybrid)),
            ("mark_ro".to_string(), Json::from(opts.mark_ro)),
            ("do_copy".to_string(), Json::from(opts.do_copy)),
            ("full".to_string(), Json::from(opts.full)),
            ("optane".to_string(), Json::from(opts.optane)),
        ]);
        Self {
            name: name.to_string(),
            title: title.to_string(),
            opts: opts_json,
            json: opts.json,
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Prints a table and records it under `label` for the JSON document.
    pub fn table(&mut self, label: &str, table: Table) {
        if !self.tables.is_empty() {
            println!();
        }
        table.print();
        self.tables.push((label.to_string(), table));
    }

    /// Prints a trailing free-text line and records it in `notes`.
    pub fn note(&mut self, text: &str) {
        if self.notes.is_empty() {
            println!();
        }
        println!("{text}");
        self.notes.push(text.to_string());
    }

    /// Builds the schema-versioned JSON document for this run.
    pub fn to_json(&self) -> Json {
        let tables = self
            .tables
            .iter()
            .map(|(label, t)| {
                Json::Obj(vec![
                    ("label".to_string(), Json::from(label.as_str())),
                    (
                        "columns".to_string(),
                        Json::Arr(t.header().iter().map(|h| Json::from(h.as_str())).collect()),
                    ),
                    (
                        "rows".to_string(),
                        Json::Arr(
                            t.rows()
                                .iter()
                                .map(|r| {
                                    Json::Arr(r.iter().map(|c| Json::from(c.as_str())).collect())
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".to_string(), Json::from(SCHEMA_VERSION)),
            ("name".to_string(), Json::from(self.name.as_str())),
            ("title".to_string(), Json::from(self.title.as_str())),
            ("opts".to_string(), self.opts.clone()),
            ("tables".to_string(), Json::Arr(tables)),
            (
                "notes".to_string(),
                Json::Arr(self.notes.iter().map(|n| Json::from(n.as_str())).collect()),
            ),
        ])
    }

    /// Writes `results/BENCH_<name>.json` if `--json` was passed.
    ///
    /// The path is relative to the working directory: run the binaries
    /// from the repository root (as EXPERIMENTS.md does) to land next to
    /// the checked-in reference results.
    pub fn finish(self) {
        if !self.json {
            return;
        }
        let doc = self.to_json();
        fs::create_dir_all("results").expect("create results/");
        let path = PathBuf::from("results").join(format!("BENCH_{}.json", self.name));
        let mut body = doc.render_pretty();
        body.push('\n');
        fs::write(&path, body).expect("write results JSON");
        println!("\nwrote {}", path.display());
    }
}

/// Validates one `BENCH_*.json` document against [`SCHEMA_VERSION`].
///
/// Returns a human-readable description of the first violation found.
pub fn validate(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing numeric schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version}, expected {SCHEMA_VERSION}"));
    }
    for key in ["name", "title"] {
        match doc.get(key).and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("missing non-empty string `{key}`")),
        }
    }
    doc.get("opts").and_then(Json::as_obj).ok_or("missing object `opts`")?;
    let tables = doc.get("tables").and_then(Json::as_arr).ok_or("missing array `tables`")?;
    if tables.is_empty() {
        return Err("`tables` is empty".to_string());
    }
    for (i, t) in tables.iter().enumerate() {
        let label = t
            .get("label")
            .and_then(Json::as_str)
            .ok_or(format!("tables[{i}]: missing string `label`"))?;
        let columns = t
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or(format!("tables[{i}] ({label}): missing array `columns`"))?;
        if columns.is_empty() || columns.iter().any(|c| c.as_str().is_none()) {
            return Err(format!("tables[{i}] ({label}): `columns` must be non-empty strings"));
        }
        let rows = t
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or(format!("tables[{i}] ({label}): missing array `rows`"))?;
        for (j, row) in rows.iter().enumerate() {
            let cells =
                row.as_arr().ok_or(format!("tables[{i}] ({label}): rows[{j}] not an array"))?;
            if cells.len() != columns.len() {
                return Err(format!(
                    "tables[{i}] ({label}): rows[{j}] has {} cells, header has {}",
                    cells.len(),
                    columns.len()
                ));
            }
            if cells.iter().any(|c| c.as_str().is_none()) {
                return Err(format!("tables[{i}] ({label}): rows[{j}] has a non-string cell"));
            }
        }
    }
    let notes = doc.get("notes").and_then(Json::as_arr).ok_or("missing array `notes`")?;
    if notes.iter().any(|n| n.as_str().is_none()) {
        return Err("`notes` must contain only strings".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sink() -> Sink {
        let opts = BenchOpts::default();
        let mut sink = Sink::new("sample", "Sample title", &opts);
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        sink.tables.push(("main".to_string(), t));
        sink.notes.push("a note".to_string());
        sink
    }

    #[test]
    fn sink_document_validates() {
        let doc = sample_sink().to_json();
        validate(&doc).unwrap();
        // And survives a render → parse roundtrip.
        let reparsed = Json::parse(&doc.render_pretty()).unwrap();
        validate(&reparsed).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_version() {
        let mut doc = sample_sink().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::from(99u64);
        }
        assert!(validate(&doc).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn validate_rejects_ragged_rows() {
        let doc = Json::parse(
            r#"{"schema_version":1,"name":"x","title":"t","opts":{},
                "tables":[{"label":"m","columns":["a","b"],"rows":[["only-one"]]}],
                "notes":[]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("cells"));
    }
}
