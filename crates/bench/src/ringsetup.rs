//! Network-port server setup shared by the external-client experiments
//! (Figures 11, 12, 13, 14).
//!
//! Builds a server process whose shards serve host-side clients through
//! eternal-PMO ring buffers, and wires the ports' external-synchrony
//! callbacks into the checkpoint manager.

use std::sync::Arc;

use treesls::extsync::{NetPort, PortLayout, RingLayout};
use treesls::{CapRights, ObjId, PmoKind, System, ThreadContext, Vpn};
use treesls_apps::lsm::LsmConfig;
use treesls_apps::server::{RingKvServer, RingLsmServer};
use treesls_kernel::object::ObjectBody;
use treesls_kernel::types::CapSlot;

/// Finds the capability slot of `obj` in `group`.
fn cap_slot_of(sys: &System, group: ObjId, obj: ObjId) -> CapSlot {
    let g = sys.kernel().object(group).expect("group");
    let body = g.body.read();
    let ObjectBody::CapGroup(cg) = &*body else { panic!("not a cap group") };
    let slot = cg.iter().find(|(_, c)| c.obj == obj).map(|(s, _)| s).expect("cap installed");
    drop(body);
    slot
}

/// Geometry of one shard's rings and table.
#[derive(Debug, Clone, Copy)]
pub struct ShardGeometry {
    /// Ring slots per direction.
    pub nslots: u64,
    /// Slot size in bytes (payload + 20-byte header).
    pub slot_size: u64,
    /// Table/stride bytes reserved per shard in the data heap.
    pub data_stride: u64,
}

impl Default for ShardGeometry {
    fn default() -> Self {
        Self { nslots: 256, slot_size: 1280, data_stride: 32 << 20 }
    }
}

/// A running ring-served KV/LSM deployment.
pub struct RingDeployment {
    /// The server process VM space.
    pub vmspace: ObjId,
    /// One port per shard.
    pub ports: Vec<Arc<NetPort>>,
    /// Server thread ids.
    pub server_threads: Vec<ObjId>,
}

fn shard_port_layout(geom: &ShardGeometry, ring_base: u64, shard: u64, cursor_addr: u64) -> PortLayout {
    let ring_len = 32 + geom.nslots * geom.slot_size;
    let ring_len = ring_len.div_ceil(4096) * 4096;
    let base = ring_base + shard * 2 * ring_len;
    PortLayout {
        rx: RingLayout { base, nslots: geom.nslots, slot_size: geom.slot_size },
        tx: RingLayout { base: base + ring_len, nslots: geom.nslots, slot_size: geom.slot_size },
        rx_cursor_addr: cursor_addr,
    }
}

/// Spawns a sharded ring KV server and its host-side ports.
///
/// `ext_sync` controls delayed external visibility; the ports' callbacks
/// are registered with the system's checkpoint manager either way (the
/// visible-writer bookkeeping is what the `ext_sync` flag gates on read).
pub fn deploy_kv(
    sys: &System,
    shards: u64,
    nbuckets: u64,
    val_cap: u64,
    ext_sync: bool,
    geom: ShardGeometry,
) -> RingDeployment {
    let kernel = sys.kernel();
    let g = kernel.create_cap_group("ring-kv").expect("group");
    let vs = kernel.create_vmspace(g).expect("vmspace");

    // Data heap: shard tables + per-shard RX cursors (rolled back).
    let heap_pages = shards * geom.data_stride / 4096 + 1;
    let pmo = kernel.create_pmo(g, heap_pages, PmoKind::Data).expect("heap");
    kernel.map_region(vs, Vpn(0), heap_pages, pmo, 0, CapRights::ALL).expect("map heap");

    // Eternal ring area above the heap.
    let ring_base_vpn = heap_pages + 16;
    let ring_len = (32 + geom.nslots * geom.slot_size).div_ceil(4096) * 4096;
    let ring_pages = shards * 2 * ring_len / 4096;
    let epmo = kernel.create_pmo(g, ring_pages, PmoKind::Eternal).expect("rings");
    kernel
        .map_region(vs, Vpn(ring_base_vpn), ring_pages, epmo, 0, CapRights::ALL)
        .expect("map rings");
    let ring_base = ring_base_vpn * 4096;

    let mut ports = Vec::new();
    let mut server_threads = Vec::new();
    for s in 0..shards {
        // RX cursor lives in the last page of the shard's data stride.
        let cursor_addr = s * geom.data_stride + geom.data_stride - 4096;
        let layout = shard_port_layout(&geom, ring_base, s, cursor_addr);
        let doorbell = kernel.create_notification(g).expect("doorbell");
        let prog = format!("ring-kv-{s}");
        sys.register_program(
            &prog,
            Arc::new(RingKvServer {
                port: layout,
                table_base: s * geom.data_stride,
                nbuckets,
                val_cap,
                batch: 16,
                doorbell_slot: cap_slot_of(sys, g, doorbell),
            }),
        );
        let tid = kernel.create_thread(g, vs, &prog, ThreadContext::new()).expect("server");
        server_threads.push(tid);
        let port = NetPort::new(Arc::clone(kernel), vs, layout, ext_sync).expect("port");
        port.set_doorbell(doorbell);
        sys.manager().register_callback(Arc::clone(&port) as _);
        ports.push(port);
    }
    RingDeployment { vmspace: vs, ports, server_threads }
}

/// Spawns a single-shard ring LSM server (the RocksDB stand-in).
pub fn deploy_lsm(
    sys: &System,
    wal: bool,
    val_cap: u64,
    ext_sync: bool,
    geom: ShardGeometry,
) -> RingDeployment {
    let kernel = sys.kernel();
    let g = kernel.create_cap_group("ring-lsm").expect("group");
    let vs = kernel.create_vmspace(g).expect("vmspace");
    let heap_pages = (96u64 << 20) / 4096;
    let pmo = kernel.create_pmo(g, heap_pages, PmoKind::Data).expect("heap");
    kernel.map_region(vs, Vpn(0), heap_pages, pmo, 0, CapRights::ALL).expect("map heap");
    let ring_base_vpn = heap_pages + 16;
    let ring_len = (32 + geom.nslots * geom.slot_size).div_ceil(4096) * 4096;
    let ring_pages = 2 * ring_len / 4096;
    let epmo = kernel.create_pmo(g, ring_pages, PmoKind::Eternal).expect("rings");
    kernel
        .map_region(vs, Vpn(ring_base_vpn), ring_pages, epmo, 0, CapRights::ALL)
        .expect("map rings");

    let lsm = LsmConfig {
        memtable_base: 0,
        memtable_cap: 128,
        storage_base: 8 << 20,
        storage_len: 80 << 20,
        wal_base: wal.then_some(90 << 20),
        wal_len: 4 << 20,
        val_cap,
    };
    let cursor_addr = (92u64 << 20) + 8;
    let layout = shard_port_layout(&geom, ring_base_vpn * 4096, 0, cursor_addr);
    let doorbell = kernel.create_notification(g).expect("doorbell");
    sys.register_program(
        "ring-lsm",
        Arc::new(RingLsmServer {
            port: layout,
            lsm,
            batch: 16,
            doorbell_slot: cap_slot_of(sys, g, doorbell),
        }),
    );
    let tid = kernel.create_thread(g, vs, "ring-lsm", ThreadContext::new()).expect("server");
    let port = NetPort::new(Arc::clone(kernel), vs, layout, ext_sync).expect("port");
    port.set_doorbell(doorbell);
    sys.manager().register_callback(Arc::clone(&port) as _);
    RingDeployment { vmspace: vs, ports: vec![port], server_threads: vec![tid] }
}
