//! NIC-backed server setup shared by the external-client experiments
//! (Figures 11, 12, 13, 14 and the `net_load` scaling report).
//!
//! Thin wrappers over `treesls_net::deploy`: they pick the data layout
//! (per-queue table shards, RX cursors in the last page of each shard's
//! stride) and plug the `treesls-apps` protocol services into the
//! poll-mode runtime.

use std::sync::Arc;

use treesls::extsync::HostIo;
use treesls::net::{deploy::DeploySpec, NicConfig, Service};
use treesls::System;
use treesls_apps::lsm::LsmConfig;
use treesls_apps::server::{KvService, LsmService};
use treesls_txn::{store::region_len, TxnGate, TxnService};

pub use treesls::net::deploy::NicDeployment as RingDeployment;

/// Geometry of one queue's rings and table shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardGeometry {
    /// Ring slots per direction.
    pub nslots: u64,
    /// Slot size in bytes (payload + 24-byte header).
    pub slot_size: u64,
    /// Table/stride bytes reserved per queue in the data heap.
    pub data_stride: u64,
}

impl Default for ShardGeometry {
    fn default() -> Self {
        Self { nslots: 256, slot_size: 1280, data_stride: 32 << 20 }
    }
}

/// Builds the [`NicConfig`] the KV/LSM deployments use for `queues`
/// queues over `geom`. Credits equal the ring depth, so admission control
/// sheds exactly where the ring would have rejected the push anyway —
/// the legacy figure benches keep their semantics (the `net_load` bin
/// sets its own, tighter budget to study admission control).
pub fn nic_config(queues: usize, ext_sync: bool, geom: &ShardGeometry) -> NicConfig {
    NicConfig {
        queues,
        nslots: geom.nslots,
        slot_size: geom.slot_size,
        credits: geom.nslots,
        ext_sync,
        fault: Default::default(),
        call_timeout: std::time::Duration::from_secs(5),
    }
}

/// Spawns a sharded KV server behind a virtual NIC (queue `q` owns the
/// table shard at `q * data_stride`).
pub fn deploy_kv(
    sys: &System,
    queues: u64,
    nbuckets: u64,
    val_cap: u64,
    ext_sync: bool,
    geom: ShardGeometry,
) -> RingDeployment {
    deploy_kv_cfg(sys, nbuckets, val_cap, nic_config(queues as usize, ext_sync, &geom), geom)
}

/// [`deploy_kv`] with full control over the NIC behaviour (credits,
/// faults) — the load generator's entry point.
pub fn deploy_kv_cfg(
    sys: &System,
    nbuckets: u64,
    val_cap: u64,
    cfg: NicConfig,
    geom: ShardGeometry,
) -> RingDeployment {
    deploy_kv_pinned(sys, nbuckets, val_cap, cfg, geom, None, 16)
}

/// [`deploy_kv_cfg`] with per-core shard pinning and an explicit round
/// size: queue `q`'s server thread is pinned to simulated core `q % n`,
/// so each core runs exactly one service shard and a shard's dirty pages
/// are owned by one core, and each server round stages up to `batch`
/// responses behind a single TX publish (the `net_scale` sweep's
/// configuration).
pub fn deploy_kv_pinned(
    sys: &System,
    nbuckets: u64,
    val_cap: u64,
    cfg: NicConfig,
    geom: ShardGeometry,
    pin_cores: Option<u32>,
    batch: usize,
) -> RingDeployment {
    let spec = DeploySpec {
        name: "ring-kv".into(),
        heap_pages: cfg.queues as u64 * geom.data_stride / 4096 + 1,
        // RX cursor lives in the last page of each queue's data stride.
        cursor_base: geom.data_stride - 4096,
        cursor_stride: geom.data_stride,
        cfg,
        batch,
        pin_cores,
    };
    treesls::net::deploy(sys.kernel(), sys.manager(), &spec, |q| {
        Arc::new(KvService {
            table_base: q as u64 * geom.data_stride,
            nbuckets,
            val_cap,
        }) as Arc<dyn Service>
    })
    .expect("deploy kv")
}

/// Spawns a single-queue LSM server (the RocksDB stand-in) behind a
/// virtual NIC.
pub fn deploy_lsm(
    sys: &System,
    wal: bool,
    val_cap: u64,
    ext_sync: bool,
    geom: ShardGeometry,
) -> RingDeployment {
    let lsm = LsmConfig {
        memtable_base: 0,
        memtable_cap: 128,
        storage_base: 8 << 20,
        storage_len: 80 << 20,
        wal_base: wal.then_some(90 << 20),
        wal_len: 4 << 20,
        val_cap,
    };
    let spec = DeploySpec {
        name: "ring-lsm".into(),
        heap_pages: (96u64 << 20) / 4096,
        cursor_base: (92u64 << 20) + 8,
        cursor_stride: 4096,
        cfg: nic_config(1, ext_sync, &geom),
        batch: 16,
        pin_cores: None,
    };
    treesls::net::deploy(sys.kernel(), sys.manager(), &spec, |_| {
        Arc::new(LsmService { lsm }) as Arc<dyn Service>
    })
    .expect("deploy lsm")
}

/// A running transactional deployment: the NIC process plus the shared
/// service handle and the durability gate registered with the checkpoint
/// manager.
pub struct TxnDeployment {
    /// The underlying NIC deployment (vmspace, server threads, NIC).
    pub dep: RingDeployment,
    /// The OCC service all queues dispatch into.
    pub service: Arc<TxnService>,
    /// Checkpoint-gated durability tracking for the store.
    pub gate: Arc<TxnGate>,
}

/// Spawns the transactional B-tree server behind a virtual NIC. The store
/// region sits at heap address 0 sized for `node_cap` tree nodes; the RX
/// cursor lives in the one page after it. Transactions are single-shard,
/// so the config must be single-queue.
pub fn deploy_txn(sys: &System, node_cap: u64, cfg: NicConfig) -> TxnDeployment {
    assert_eq!(cfg.queues, 1, "transactions are single-shard (one queue)");
    let store_len = region_len(node_cap);
    let spec = DeploySpec {
        name: "ring-txn".into(),
        heap_pages: store_len / 4096 + 1,
        cursor_base: store_len,
        cursor_stride: 4096,
        cfg,
        batch: 16,
        pin_cores: None,
    };
    let service = Arc::new(TxnService::new(0, node_cap));
    let svc = Arc::clone(&service);
    let dep = treesls::net::deploy(sys.kernel(), sys.manager(), &spec, move |_| {
        Arc::clone(&svc) as Arc<dyn Service>
    })
    .expect("deploy txn");
    let io = HostIo::new(Arc::clone(sys.kernel()), dep.vmspace);
    let gate = Arc::new(TxnGate::new(io, 0, Arc::clone(&service)));
    sys.manager().register_callback(Arc::clone(&gate) as _);
    TxnDeployment { dep, service, gate }
}
