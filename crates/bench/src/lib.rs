//! Benchmark harness reproducing every table and figure of the TreeSLS
//! paper's evaluation (§7).
//!
//! One binary per experiment (see DESIGN.md's experiment index):
//! `table2`, `table3`, `table4`, `fig9a`, `fig9b`, `fig10`, `fig11`,
//! `fig12`, `fig13`, `fig14`. Each prints the same rows/series the paper
//! reports; absolute numbers reflect the emulated substrate, the *shapes*
//! are the reproduction target (see EXPERIMENTS.md).
//!
//! The [`harness`] module assembles the paper's workloads (Table 2) on a
//! running TreeSLS instance; [`table`] provides plain-text table output.

pub mod harness;
pub mod ringsetup;
pub mod sink;
pub mod table;

pub use harness::{BenchSystem, WorkloadKind};
pub use sink::{Sink, SCHEMA_VERSION};
