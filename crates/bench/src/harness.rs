//! Workload assembly for the evaluation benchmarks.
//!
//! Builds the Table 2 workloads on a TreeSLS instance: the *default*
//! system-services-only configuration, the single-threaded SQLite and
//! LevelDB stand-ins, the 8-threaded Phoenix kernels (WordCount, KMeans,
//! PCA) and the in-system Redis/Memcached client/server pairs ("clients
//! were also checkpointed", §7.3).
//!
//! Scales are reduced from the paper's (100 MiB datasets, 10 M keys) so a
//! full table regenerates in seconds; pass `--full` to the binaries for
//! paper-scale runs. Shapes, not absolute sizes, are the target.

use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls::{
    CapRights, KernelConfig, LatencyProfile, ObjId, ProcessSpec, System,
    SystemConfig, ThreadSpec, Vpn,
};
use treesls_apps::phoenix::{KMeans, Pca, WordCount};
use treesls_apps::server::{regs, BtreeWorker, IpcKvClient, IpcKvServer, LsmFillBatch};
use treesls_apps::lsm::LsmConfig;
use treesls_kernel::object::ObjectBody;
use treesls_kernel::program::{Program, StepOutcome, UserCtx};
use treesls_kernel::types::CapSlot;

/// The workloads of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// System services only.
    Default,
    /// Single-threaded B+-tree mixed benchmark.
    Sqlite,
    /// Single-threaded LSM fillbatch.
    Leveldb,
    /// 8-threaded text aggregation.
    WordCount,
    /// 8-threaded clustering.
    KMeans,
    /// 8-threaded covariance (Figure 10 only).
    Pca,
    /// Single-threaded KV server + 8 in-system clients, SET-heavy.
    Redis,
    /// 4-threaded sharded KV server + 8 in-system clients.
    Memcached,
}

impl WorkloadKind {
    /// Table 2 row order.
    pub const TABLE2: [WorkloadKind; 7] = [
        WorkloadKind::Default,
        WorkloadKind::Sqlite,
        WorkloadKind::Leveldb,
        WorkloadKind::WordCount,
        WorkloadKind::KMeans,
        WorkloadKind::Redis,
        WorkloadKind::Memcached,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Default => "Default",
            WorkloadKind::Sqlite => "SQLite",
            WorkloadKind::Leveldb => "LevelDB",
            WorkloadKind::WordCount => "WordCount",
            WorkloadKind::KMeans => "KMeans",
            WorkloadKind::Pca => "PCA",
            WorkloadKind::Redis => "Redis",
            WorkloadKind::Memcached => "Memcached",
        }
    }
}

/// Benchmark-wide options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Simulated cores.
    pub cores: usize,
    /// Checkpoint interval (`None` = no checkpointing).
    pub interval: Option<Duration>,
    /// Hybrid copy enabled.
    pub hybrid: bool,
    /// Mark pages read-only at checkpoints (Figure 10 knob).
    pub mark_ro: bool,
    /// Perform CoW copies (Figure 10 knob).
    pub do_copy: bool,
    /// Paper-scale workloads.
    pub full: bool,
    /// Calibrated NVM latency injection.
    pub optane: bool,
    /// Also write `results/BENCH_<name>.json` (see `sink`).
    pub json: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            // The default suits small hosts; the experiments' *shapes* do
            // not depend on real parallelism (pass --cores N to scale up).
            cores: 2,
            interval: Some(Duration::from_millis(1)),
            hybrid: true,
            mark_ro: true,
            do_copy: true,
            full: false,
            optane: false,
            json: false,
        }
    }
}

impl BenchOpts {
    /// Parses common CLI flags (`--full`, `--optane`, `--cores N`,
    /// `--json`).
    pub fn from_args() -> Self {
        let mut o = Self::default();
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            match a.as_str() {
                "--full" => o.full = true,
                "--optane" => o.optane = true,
                "--json" => o.json = true,
                "--cores" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        o.cores = n;
                    }
                }
                _ => {}
            }
        }
        o
    }

    fn system_config(&self) -> SystemConfig {
        SystemConfig {
            kernel: KernelConfig {
                nvm_frames: if self.full { 262_144 } else { 65_536 }, // 1 GiB / 256 MiB
                dram_pages: if self.full { 16_384 } else { 4_096 },
                hot_threshold: 3,
                idle_evict_rounds: 8,
                mark_ro: self.mark_ro,
                do_copy: self.do_copy,
                hybrid_copy: self.hybrid,
                force_full_walk: false,
                full_walk_interval: 64,
                force_full_quiesce: false,
                epoch_concurrent: true,
                latency: if self.optane { LatencyProfile::Optane } else { LatencyProfile::Uniform },
            },
            cores: self.cores,
            quantum: 32,
            checkpoint_interval: self.interval,
        }
    }
}

/// A blocked-forever service program: waits on a notification that is
/// never signalled, so service threads contribute kernel objects (Table 2
/// composition) without consuming CPU.
#[derive(Debug)]
pub struct ServiceIdle {
    /// Capability slot of the service's park notification.
    pub notif_slot: CapSlot,
}

impl Program for ServiceIdle {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        match ctx.notif_wait(self.notif_slot) {
            Ok(true) => StepOutcome::Yielded,
            Ok(false) => StepOutcome::Blocked,
            Err(_) => StepOutcome::Exited,
        }
    }
}

/// A built workload on a booted (not yet started) system.
pub struct BenchSystem {
    /// The machine.
    pub sys: System,
    /// Threads that run to completion (empty for open-ended workloads).
    pub workers: Vec<ObjId>,
    /// VM space of the primary application process.
    pub app_vmspace: Option<ObjId>,
}

/// Finds the capability slot of `obj` in `group`.
pub fn find_cap_slot(sys: &System, group: ObjId, obj: ObjId) -> CapSlot {
    let g = sys.kernel().object(group).expect("group");
    let body = g.body.read();
    let ObjectBody::CapGroup(cg) = &*body else { panic!("not a cap group") };
    let slot = cg.iter().find(|(_, c)| c.obj == obj).map(|(s, _)| s).expect("cap installed");
    drop(body);
    slot
}

/// Spawns the system services that make up the *default* workload.
fn spawn_services(sys: &System) {
    for (name, threads, heap_pages) in
        [("procmgr", 4u64, 16u64), ("fsmgr", 8, 32), ("netdrv", 6, 16), ("shell", 4, 8), ("logd", 4, 8)]
    {
        let g = sys.kernel().create_cap_group(name).expect("service group");
        let vs = sys.kernel().create_vmspace(g).expect("service vmspace");
        let pmo = sys
            .kernel()
            .create_pmo(g, heap_pages, treesls::PmoKind::Data)
            .expect("service heap");
        sys.kernel().map_region(vs, Vpn(0), heap_pages, pmo, 0, CapRights::ALL).expect("map");
        let notif = sys.kernel().create_notification(g).expect("park notif");
        let slot = find_cap_slot(sys, g, notif);
        let prog = format!("svc-idle-{name}");
        sys.register_program(&prog, Arc::new(ServiceIdle { notif_slot: slot }));
        for _ in 0..threads {
            sys.kernel()
                .create_thread(g, vs, &prog, treesls::ThreadContext::new())
                .expect("service thread");
        }
        // Touch a few heap pages so services own memory (Table 2 PMO
        // composition).
        for p in 0..heap_pages.min(4) {
            sys.write_mem(vs, p * 4096, &[0x5A; 64]).expect("touch");
        }
    }
    // Service interconnects: IPC between procmgr-ish groups (composition
    // only; idle).
    let root = sys.kernel().root();
    let _ = sys.kernel().create_ipc_conn(root, root);
}

/// Builds `kind` on a fresh system. The system is *not* started.
pub fn build(kind: WorkloadKind, opts: &BenchOpts) -> BenchSystem {
    let sys = System::boot(opts.system_config());
    spawn_services(&sys);
    let scale = if opts.full { 1.0 } else { 0.05 };
    let mut workers = Vec::new();
    let mut app_vmspace = None;
    match kind {
        WorkloadKind::Default => {}
        WorkloadKind::Sqlite => {
            let ops = (4_000_000.0 * scale) as u64;
            let node_cap = if opts.full { 8192 } else { 1024 };
            let heap_pages = (treesls_apps::btree::BTree::region_len(node_cap) / 4096) + 2;
            sys.register_program(
                "sqlite",
                Arc::new(BtreeWorker { table_base: 0, node_cap, key_space: 10_000, batch: 16 }),
            );
            let p = sys
                .spawn(
                    &ProcessSpec::new("sqlite")
                        .heap(heap_pages)
                        .thread(ThreadSpec::new("sqlite").reg(regs::TARGET, ops)),
                )
                .expect("sqlite process");
            workers.extend(&p.threads);
            app_vmspace = Some(p.vmspace);
        }
        WorkloadKind::Leveldb => {
            let ops = (2_000_000.0 * scale) as u64;
            let lsm = LsmConfig {
                memtable_base: 0,
                memtable_cap: 128,
                storage_base: 1 << 20,
                storage_len: 48 << 20,
                wal_base: None,
                wal_len: 0,
                val_cap: 100,
            };
            sys.register_program(
                "leveldb",
                Arc::new(LsmFillBatch { lsm, val_len: 100, batch: 8 }),
            );
            let p = sys
                .spawn(
                    &ProcessSpec::new("leveldb")
                        .heap((50 << 20) / 4096)
                        .thread(ThreadSpec::new("leveldb").reg(regs::TARGET, ops)),
                )
                .expect("leveldb process");
            workers.extend(&p.threads);
            app_vmspace = Some(p.vmspace);
        }
        WorkloadKind::WordCount => {
            let input_len = (100u64 << 20).min(((100u64 << 20) as f64 * scale) as u64).max(1 << 20);
            let tables_base = 128u64 << 20;
            let table_stride = 1u64 << 20;
            let wc = WordCount {
                input_base: 0,
                input_len,
                workers: 8,
                tables_base,
                table_stride,
                nbuckets: 4096,
                chunk: 2048,
            };
            sys.register_program("wordcount", Arc::new(wc));
            let total_pages = (tables_base + 8 * table_stride) / 4096 + 16;
            let mut spec = ProcessSpec::new("wordcount").heap(total_pages);
            for w in 0..8u64 {
                spec = spec.thread(ThreadSpec::new("wordcount").reg(0, w));
            }
            let p = sys.spawn(&spec).expect("wordcount process");
            // Fill the input with words.
            let vocab: [&[u8]; 8] = [
                b"tree", b"sls", b"nvm", b"ckpt", b"cap", b"page", b"fault", b"copy",
            ];
            let mut buf = Vec::with_capacity(64 * 1024);
            let mut x = 0x9E37_79B9u64;
            while (buf.len() as u64) < 64 * 1024 {
                x = treesls_apps::server::xorshift64(x);
                buf.extend_from_slice(vocab[(x % 8) as usize]);
                buf.push(b' ');
            }
            let mut off = 0u64;
            while off < input_len {
                let n = (buf.len() as u64).min(input_len - off) as usize;
                sys.write_mem(p.vmspace, off, &buf[..n]).expect("fill input");
                off += n as u64;
            }
            workers.extend(&p.threads);
            app_vmspace = Some(p.vmspace);
        }
        WorkloadKind::KMeans => {
            let npoints = 10_000u64;
            let dims = 2u64;
            let k = 16u64;
            let iters = if opts.full { 30 } else { 8 };
            let centroids_base = 8u64 << 20;
            let accum_base = 9u64 << 20;
            let km = KMeans {
                points_base: 0,
                npoints,
                dims,
                centroids_base,
                k,
                accum_base,
                accum_stride: 64 * 1024,
                workers: 8,
                chunk: 64,
                iters,
            };
            sys.register_program("kmeans", Arc::new(km));
            let total_pages = (accum_base + 8 * 64 * 1024) / 4096 + 16;
            let mut spec = ProcessSpec::new("kmeans").heap(total_pages);
            for w in 0..8u64 {
                spec = spec.thread(ThreadSpec::new("kmeans").reg(0, w));
            }
            let p = sys.spawn(&spec).expect("kmeans process");
            // Points and initial centroids.
            let mut x = 7u64;
            let mut pt = Vec::with_capacity((npoints * dims * 4) as usize);
            for _ in 0..npoints * dims {
                x = treesls_apps::server::xorshift64(x);
                pt.extend_from_slice(&((x % 1000) as f32).to_le_bytes());
            }
            sys.write_mem(p.vmspace, 0, &pt).expect("points");
            let mut cent = Vec::new();
            for i in 0..k * dims {
                cent.extend_from_slice(&((i * 37 % 1000) as f32).to_le_bytes());
            }
            sys.write_mem(p.vmspace, centroids_base, &cent).expect("centroids");
            workers.extend(&p.threads);
            app_vmspace = Some(p.vmspace);
        }
        WorkloadKind::Pca => {
            let n = if opts.full { 512u64 } else { 128 };
            let means_base = 32u64 << 20;
            let cov_base = 33u64 << 20;
            let pca = Pca {
                matrix_base: 0,
                n,
                means_base,
                cov_base,
                workers: 8,
                chunk: 2,
            };
            sys.register_program("pca", Arc::new(pca));
            let total_pages = (cov_base + n * n * 4) / 4096 + 16;
            let mut spec = ProcessSpec::new("pca").heap(total_pages);
            for w in 0..8u64 {
                spec = spec.thread(ThreadSpec::new("pca").reg(0, w));
            }
            let p = sys.spawn(&spec).expect("pca process");
            let mut x = 13u64;
            let mut m = Vec::with_capacity((n * n * 4) as usize);
            for _ in 0..n * n {
                x = treesls_apps::server::xorshift64(x);
                m.extend_from_slice(&((x % 100) as f32).to_le_bytes());
            }
            sys.write_mem(p.vmspace, 0, &m).expect("matrix");
            workers.extend(&p.threads);
            app_vmspace = Some(p.vmspace);
        }
        WorkloadKind::Redis | WorkloadKind::Memcached => {
            let shards: u64 = if kind == WorkloadKind::Memcached { 4 } else { 1 };
            let ops_per_client = (400_000.0 * scale) as u64;
            let (val_len, write_pct, nbuckets) = if kind == WorkloadKind::Memcached {
                (100usize, 100u64, 16_384u64)
            } else {
                (1024usize, 100u64, 16_384u64)
            };
            let sg = sys.kernel().create_cap_group("kv-server").expect("server group");
            let svs = sys.kernel().create_vmspace(sg).expect("server vmspace");
            let table_stride = 32u64 << 20;
            let heap_pages = shards * table_stride / 4096 + 16;
            let pmo = sys
                .kernel()
                .create_pmo(sg, heap_pages, treesls::PmoKind::Data)
                .expect("server heap");
            sys.kernel().map_region(svs, Vpn(0), heap_pages, pmo, 0, CapRights::ALL).expect("map");
            let cg = sys.kernel().create_cap_group("kv-clients").expect("client group");
            let cvs = sys.kernel().create_vmspace(cg).expect("client vmspace");
            let mut client_slots = Vec::new();
            for s in 0..shards {
                let (_conn, sslot, cslot) =
                    sys.kernel().create_ipc_conn(sg, cg).expect("shard conn");
                client_slots.push(cslot);
                let prog = format!("kv-shard-{s}");
                sys.register_program(
                    &prog,
                    Arc::new(IpcKvServer {
                        conn_slot: sslot,
                        table_base: s * table_stride,
                        nbuckets,
                        val_cap: val_len as u64,
                    }),
                );
                sys.kernel()
                    .create_thread(sg, svs, &prog, treesls::ThreadContext::new())
                    .expect("server thread");
            }
            sys.register_program(
                "kv-client",
                Arc::new(IpcKvClient {
                    shard_slots: client_slots,
                    key_space: 10_000,
                    val_len,
                    write_ratio_percent: write_pct,
                }),
            );
            for c in 0..8u64 {
                let mut ctx = treesls::ThreadContext::new();
                ctx.regs[regs::TARGET] = ops_per_client;
                ctx.regs[regs::RNG] = 0x1234_5678 + c * 977;
                let tid = sys
                    .kernel()
                    .create_thread(cg, cvs, "kv-client", ctx)
                    .expect("client thread");
                workers.push(tid);
            }
            app_vmspace = Some(svs);
        }
    }
    BenchSystem { sys, workers, app_vmspace }
}

impl BenchSystem {
    /// Starts the system, waits for the workers to finish (or `deadline`
    /// for open-ended workloads), stops, and returns the wall time.
    pub fn run(&mut self, deadline: Duration) -> Duration {
        let t0 = Instant::now();
        self.sys.start();
        if self.workers.is_empty() {
            std::thread::sleep(deadline);
        } else if !self.sys.join_threads(&self.workers, deadline) {
            eprintln!("warning: workload did not finish within {deadline:?}");
        }
        let elapsed = t0.elapsed();
        self.sys.stop();
        elapsed
    }

    /// Starts the system and lets it run for `d` without joining workers.
    pub fn run_for(&mut self, d: Duration) {
        self.sys.start();
        std::thread::sleep(d);
        self.sys.stop();
    }
}
