//! Plain-text table rendering for the benchmark binaries.

/// A simple column-aligned table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The column headers (for serialization by the result sink).
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The appended rows (for serialization by the result sink).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..widths[i] {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration in microseconds with two decimals.
pub fn us(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Formats a nanosecond count as microseconds with two decimals.
pub fn ns_as_us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e3)
}

/// Formats bytes as MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_bad_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(std::time::Duration::from_micros(1500)), "1500.00");
        assert_eq!(ns_as_us(2500), "2.50");
        assert_eq!(mib(1024 * 1024 * 3 / 2), "1.5");
    }
}
