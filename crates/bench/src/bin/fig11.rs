//! Figure 11: Memcached SET/GET latency vs. checkpoint interval.
//!
//! An 8-shard ring-served KV (the memcached stand-in) driven by 8
//! external client threads; P50/P95 per operation type for no-checkpoint
//! baseline and checkpoint intervals of 1/5/10/50 ms. The paper finds
//! latency rising as the interval shrinks below 10 ms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use treesls::{System, SystemConfig};

/// Claims one unit from a shared budget; `None` when exhausted (CAS loop —
/// a plain `fetch_sub` would wrap past zero and run forever).
fn claim(budget: &AtomicU64) -> bool {
    loop {
        let cur = budget.load(Ordering::Relaxed);
        if cur == 0 {
            return false;
        }
        if budget
            .compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return true;
        }
    }
}
use treesls_apps::client::run_parallel_clients;
use treesls_apps::server::xorshift64;
use treesls_apps::wire::{numeric_key, KvOp};
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};
use treesls_bench::table::{ns_as_us, Table};
use treesls_bench::Sink;

fn run_config(opts: &BenchOpts, interval: Option<Duration>, ops_per_client: u64) -> [u64; 4] {
    let mut config = SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 4096,
            ..Default::default()
        },
        cores: opts.cores,
        quantum: 32,
        checkpoint_interval: interval,
    };
    config.kernel.hybrid_copy = opts.hybrid;
    let mut sys = System::boot(config);
    let dep = deploy_kv(&sys, 8, 8192, 128, false, ShardGeometry::default());
    sys.start();

    let key_space = 10_000u64;
    // Keys double as flow ids: the NIC's RSS hash steers each key's flow
    // to a fixed queue, so a key always hits the same table shard.
    // SET phase.
    let set_budget = Arc::new(AtomicU64::new(ops_per_client * 8));
    let set_stats = run_parallel_clients(
        &dep.nic,
        8,
        |t| {
            let mut rng = 0x5151 + t as u64 * 7919;
            let budget = Arc::clone(&set_budget);
            Box::new(move || {
                if !claim(&budget) {
                    return None;
                }
                rng = xorshift64(rng);
                let id = (rng >> 8) % key_space;
                Some((id, KvOp::Set { key: numeric_key(id), value: vec![7u8; 100] }))
            })
        },
        Duration::from_secs(5),
    );
    // GET phase.
    let get_budget = Arc::new(AtomicU64::new(ops_per_client * 8));
    let get_stats = run_parallel_clients(
        &dep.nic,
        8,
        |t| {
            let mut rng = 0x6161 + t as u64 * 104_729;
            let budget = Arc::clone(&get_budget);
            Box::new(move || {
                if !claim(&budget) {
                    return None;
                }
                rng = xorshift64(rng);
                let id = (rng >> 8) % key_space;
                Some((id, KvOp::Get { key: numeric_key(id) }))
            })
        },
        Duration::from_secs(5),
    );
    sys.stop();
    [
        set_stats.latency.p50(),
        set_stats.latency.p95(),
        get_stats.latency.p50(),
        get_stats.latency.p95(),
    ]
}

fn main() {
    let opts = BenchOpts::from_args();
    let ops = if opts.full { 50_000 } else { 3_000 };
    let mut sink = Sink::new(
        "fig11",
        "Figure 11: Memcached SET/GET latency vs checkpoint interval (µs)",
        &opts,
    );
    let mut table =
        Table::new(&["Interval", "SET P50", "SET P95", "GET P50", "GET P95"]);
    let configs: [(&str, Option<Duration>); 5] = [
        ("baseline", None),
        ("1ms", Some(Duration::from_millis(1))),
        ("5ms", Some(Duration::from_millis(5))),
        ("10ms", Some(Duration::from_millis(10))),
        ("50ms", Some(Duration::from_millis(50))),
    ];
    for (label, interval) in configs {
        let r = run_config(&opts, interval, ops);
        table.row(vec![
            label.to_string(),
            ns_as_us(r[0]),
            ns_as_us(r[1]),
            ns_as_us(r[2]),
            ns_as_us(r[3]),
        ]);
    }
    sink.table("latency", table);
    sink.finish();
}
