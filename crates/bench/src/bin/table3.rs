//! Table 3: checkpoint/restore time of a single object.
//!
//! "During the first two rounds of checkpointing, a complete object
//! snapshot is taken ... Subsequent checkpoints are incremental and reuse
//! many of the already established object structures." Reports min/max
//! incremental checkpoint, full checkpoint and restore times per object
//! type, collected across all Table 2 workloads.

use std::time::Duration;

use treesls::{ObjType, System};
use treesls_bench::harness::{build, BenchOpts};
use treesls_bench::table::{us, Table};
use treesls_bench::{Sink, WorkloadKind};
use treesls_checkpoint::ObjectTimeTable;

fn main() {
    let opts = BenchOpts::from_args();
    let mut agg = ObjectTimeTable::default();
    for kind in WorkloadKind::TABLE2 {
        let mut bench = build(kind, &opts);
        bench.run(Duration::from_millis(if opts.full { 2000 } else { 600 }));
        agg.merge(&bench.sys.manager().table.lock());

        // Measure restore by crashing and recovering this workload.
        let programs: Vec<(String, std::sync::Arc<dyn treesls::Program>)> = bench
            .sys
            .programs()
            .names()
            .into_iter()
            .filter_map(|n| bench.sys.programs().get(&n).map(|p| (n, p)))
            .collect();
        let config = bench.sys.config().clone();
        let image = bench.sys.crash();
        match System::recover(image, config, move |reg| {
            for (n, p) in programs {
                reg.register(&n, p);
            }
        }) {
            Ok((_sys2, report)) => {
                let t = ObjectTimeTable { restore: report.per_type, ..Default::default() };
                agg.merge(&t);
            }
            Err(e) => eprintln!("restore of {} failed: {e}", kind.label()),
        }
    }

    let mut sink =
        Sink::new("table3", "Table 3: checkpoint/restore time of a single object (µs)", &opts);
    let mut table = Table::new(&[
        "Object", "Incr Min", "Incr Max", "Full Min", "Full Max", "Rest Min", "Rest Max",
    ]);
    for t in ObjType::ALL {
        let cell = |m: &std::collections::HashMap<ObjType, treesls_checkpoint::MinMax>,
                    max: bool| {
            m.get(&t)
                .filter(|mm| !mm.is_empty())
                .map(|mm| us(if max { mm.max } else { mm.min }))
                .unwrap_or_else(|| "-".into())
        };
        table.row(vec![
            t.short_name().to_string(),
            cell(&agg.incr, false),
            cell(&agg.incr, true),
            cell(&agg.full, false),
            cell(&agg.full, true),
            cell(&agg.restore, false),
            cell(&agg.restore, true),
        ]);
    }
    sink.table("per_object_times", table);
    sink.finish();
}
