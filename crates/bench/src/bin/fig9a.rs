//! Figure 9(a): time breakdown of the stop-the-world checkpointing.
//!
//! Two bars per workload in the paper: the main checkpointing procedure
//! (IPI handling, capability-tree copy, others) and the parallel
//! hybrid-copy time on the other cores. Reports per-round means after a
//! warm-up (the paper plots incremental rounds at 1000 Hz), plus the
//! pause-time distribution from the metrics registry's histogram (the
//! "checkpointing can be done within 1 ms" claim is about the *tail*,
//! not the mean).

use std::time::Duration;

use treesls_bench::harness::{build, BenchOpts};
use treesls_bench::table::{ns_as_us, us, Table};
use treesls_bench::{Sink, WorkloadKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut sink = Sink::new(
        "fig9a",
        "Figure 9a: STW checkpoint time breakdown (µs, mean over rounds)",
        &opts,
    );
    let mut table = Table::new(&[
        "Workload", "IPI", "CapTree", "Others", "MainTotal", "HybridCopy", "Rounds",
    ]);
    let mut pauses = Table::new(&[
        "Workload", "Count", "Mean", "P50<=", "P95<=", "P99<=", "Max",
    ]);
    for kind in WorkloadKind::TABLE2 {
        let mut bench = build(kind, &opts);
        bench.run(Duration::from_millis(if opts.full { 3000 } else { 1000 }));
        let breakdowns = bench.sys.manager().breakdowns.lock().clone();
        // Skip warm-up rounds (full checkpoints of fresh objects).
        let warm: Vec<_> = breakdowns.iter().skip(4).collect();
        if warm.is_empty() {
            eprintln!("{}: no steady-state rounds", kind.label());
            continue;
        }
        let n = warm.len() as u32;
        let mean = |f: &dyn Fn(&treesls_checkpoint::StwBreakdown) -> Duration| {
            warm.iter().map(|b| f(b)).sum::<Duration>() / n
        };
        let ipi = mean(&|b| b.ipi);
        let cap = mean(&|b| b.cap_tree);
        let others = mean(&|b| b.others);
        let cores = opts.cores.max(1) as u32;
        let hybrid = mean(&|b| b.hybrid_busy) / cores;
        table.row(vec![
            kind.label().to_string(),
            us(ipi),
            us(cap),
            us(others),
            us(ipi + cap + others),
            us(hybrid),
            format!("{n}"),
        ]);
        // Quantiles are log2-bucket upper bounds (≤), the max is exact —
        // see OBSERVABILITY.md. The histogram covers *all* rounds
        // including warm-up, like a production registry would.
        let p = bench.sys.metrics_snapshot().pause;
        pauses.row(vec![
            kind.label().to_string(),
            format!("{}", p.count),
            ns_as_us(p.mean_ns),
            ns_as_us(p.p50_ns),
            ns_as_us(p.p95_ns),
            ns_as_us(p.p99_ns),
            ns_as_us(p.max_ns),
        ]);
    }
    sink.table("breakdown", table);
    sink.table("pause_histogram_us", pauses);
    sink.note("(MainTotal = left bar; HybridCopy = right bar, busy/cores approximation)");
    sink.finish();
}
