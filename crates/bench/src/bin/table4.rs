//! Table 4: effect of the hybrid memory checkpoint.
//!
//! Per checkpoint interval: runtime page faults taken, dirty DRAM-cached
//! pages speculatively copied, total cached pages, the fraction of faults
//! hybrid copy eliminated, and the dirty rate among cached pages.

use std::time::Duration;

use treesls_bench::harness::{build, BenchOpts};
use treesls_bench::table::Table;
use treesls_bench::{Sink, WorkloadKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut sink =
        Sink::new("table4", "Table 4: effect of hybrid memory checkpoint (per-interval means)", &opts);
    let mut table = Table::new(&[
        "Metric", "Memcached", "Redis", "KMeans", "PCA",
    ]);
    let kinds =
        [WorkloadKind::Memcached, WorkloadKind::Redis, WorkloadKind::KMeans, WorkloadKind::Pca];
    let mut cols: Vec<[String; 5]> = Vec::new();
    for kind in kinds {
        let mut bench = build(kind, &opts);
        bench.run(Duration::from_millis(if opts.full { 3000 } else { 1200 }));
        let rounds = bench.sys.manager().hybrid_rounds.lock().clone();
        // Steady state: skip warm-up, keep rounds with any activity.
        let active: Vec<_> = rounds
            .iter()
            .skip(8)
            .filter(|r| r.runtime_faults + r.dirty_cached + r.cached > 0)
            .collect();
        if active.is_empty() {
            cols.push(["0".into(), "0".into(), "0".into(), "0%".into(), "0%".into()]);
            continue;
        }
        let n = active.len() as u64;
        let faults: u64 = active.iter().map(|r| r.runtime_faults).sum::<u64>() / n;
        let dirty: u64 = active.iter().map(|r| r.dirty_cached).sum::<u64>() / n;
        let cached: u64 = active.iter().map(|r| r.cached).sum::<u64>() / n;
        let elim = if faults + dirty == 0 {
            0.0
        } else {
            dirty as f64 / (faults + dirty) as f64 * 100.0
        };
        let rate = if cached == 0 { 0.0 } else { dirty as f64 / cached as f64 * 100.0 };
        cols.push([
            format!("{faults}"),
            format!("{dirty}"),
            format!("{cached}"),
            format!("{elim:.0}%"),
            format!("{rate:.0}%"),
        ]);
    }
    let metrics = [
        "# runtime page faults",
        "# dirty cached pages",
        "# cached pages",
        "faults eliminated",
        "dirty rate in cached",
    ];
    for (i, m) in metrics.iter().enumerate() {
        table.row(vec![
            m.to_string(),
            cols[0][i].clone(),
            cols[1][i].clone(),
            cols[2][i].clone(),
            cols[3][i].clone(),
        ]);
    }
    sink.table("hybrid_effect", table);
    sink.finish();
}
