//! `ycsb`: the YCSB A–F transactional evaluation over the OCC B-tree
//! server (`treesls-txn`), plus the two transactional failure drills.
//!
//! Each selected mix boots a fresh system, bulk-loads the record set
//! (auto-commit tagged upserts), then offers a fixed open-loop arrival
//! schedule of planned frames from the multi-tenant YCSB generator
//! ([`treesls_apps::ycsb`]): zipfian/uniform choosers, working-set churn,
//! secondary-index scans (E) and two-frame interactive RMW transactions
//! (F). Responses ride the external-synchrony NIC, so every completion is
//! §5-checked against the committed checkpoint version; after the run the
//! store's secondary index is verified exactly consistent with the
//! primary space.
//!
//! Two drills then attack durability end to end:
//!
//! * **crash** — a burst of load, a set of externally acknowledged
//!   auto-commit writes, un-acked stragglers left in the rings, power
//!   failure, recover/reattach/re-arm: every acked write must read back
//!   with its exact value and the index must verify;
//! * **promotion** — the same acked writes replicated to a quorum-2
//!   cluster, the primary lost, a replica promoted: same oracle on the
//!   promoted node.
//!
//! `--gate` (CI) additionally enforces: zero §5 violations anywhere,
//! abort rate ≤ 5 % on workload A, and every mix completing operations.
//!
//! ```sh
//! cargo run --release --bin ycsb -- --json
//! cargo run --release --bin ycsb -- --duration-ms 200 --rate 6000 --gate  # CI smoke
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls::extsync::HostIo;
use treesls::net::{NetError, NicConfig, NicLayout, VirtualNic};
use treesls::{Program, System, SystemConfig};
use treesls_apps::openloop::{run_open_loop, OpenLoopConfig, OpenLoopStats};
use treesls_apps::wire::numeric_key;
use treesls_apps::ycsb::{
    load_frames, plan_all, tag_for, value_for, PlannedFrame, Skew, TxnMix, YcsbTxnConfig,
};
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::deploy_txn;
use treesls_bench::table::Table;
use treesls_bench::Sink;
use treesls_repl::{Cluster, ClusterConfig};
use treesls_txn::{check_index_consistency, TxnGate, TxnOp, TxnResp, TxnService, TxnStore};

/// Tree nodes in the store region: room for the loaded records, their
/// index entries, run-phase inserts (D/E) and CoW headroom.
const NODE_CAP: u64 = 2048;

struct YcsbOpts {
    /// Open-loop scheduling window per mix.
    duration_ms: u64,
    /// Offered load in requests per second (split across tenants).
    rate: u64,
    /// Open-loop tenants (generator threads).
    tenants: usize,
    /// Pre-loaded records.
    records: u64,
    /// Checkpoint interval in microseconds.
    interval_us: u64,
    /// Mixes to run, in order.
    mixes: Vec<TxnMix>,
    /// Key-chooser skew.
    skew: Skew,
    /// Base seed for plans and schedules.
    seed: u64,
    /// Enforce the gates (exit 1 on violation).
    gate: bool,
}

fn parse_ycsb_opts() -> YcsbOpts {
    let mut o = YcsbOpts {
        duration_ms: 400,
        rate: 10_000,
        tenants: 2,
        records: 1024,
        interval_us: 1000,
        mixes: TxnMix::ALL.to_vec(),
        skew: Skew::Zipfian,
        seed: 1,
        gate: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--duration-ms" => {
                if let Some(v) = next(i) {
                    o.duration_ms = v.parse().expect("--duration-ms N");
                }
            }
            "--rate" => {
                if let Some(v) = next(i) {
                    o.rate = v.parse().expect("--rate N");
                }
            }
            "--tenants" => {
                if let Some(v) = next(i) {
                    o.tenants = v.parse().expect("--tenants N");
                }
            }
            "--records" => {
                if let Some(v) = next(i) {
                    o.records = v.parse().expect("--records N");
                }
            }
            "--interval-us" => {
                if let Some(v) = next(i) {
                    o.interval_us = v.parse().expect("--interval-us N");
                }
            }
            "--mixes" => {
                if let Some(v) = next(i) {
                    o.mixes = v
                        .chars()
                        .map(|c| {
                            TxnMix::parse(&c.to_string())
                                .unwrap_or_else(|| panic!("--mixes: unknown workload '{c}'"))
                        })
                        .collect();
                }
            }
            "--skew" => {
                if let Some(v) = next(i) {
                    o.skew = Skew::parse(v).unwrap_or_else(|| panic!("--skew zipfian|uniform"));
                }
            }
            "--seed" => {
                if let Some(v) = next(i) {
                    o.seed = v.parse().expect("--seed N");
                }
            }
            "--gate" => o.gate = true,
            _ => {}
        }
        i += 1;
    }
    o
}

fn sys_config(opts: &BenchOpts, interval_us: u64) -> SystemConfig {
    SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 16384,
            dram_pages: 512,
            ..Default::default()
        },
        cores: opts.cores,
        quantum: 32,
        checkpoint_interval: Some(Duration::from_micros(interval_us)),
    }
}

/// Single-queue NIC (transactions are single-shard): 64 slots sized for
/// scan responses, credits equal to the ring depth, external synchrony on.
fn nic_cfg() -> NicConfig {
    NicConfig {
        queues: 1,
        nslots: 64,
        slot_size: 1280,
        credits: 64,
        ext_sync: true,
        fault: Default::default(),
        call_timeout: Duration::from_secs(5),
    }
}

fn txn_cfg(yo: &YcsbOpts, mix: TxnMix) -> YcsbTxnConfig {
    YcsbTxnConfig {
        mix,
        records: yo.records,
        value_len: 32,
        skew: yo.skew,
        tenants: yo.tenants,
        churn_window: (yo.records / 4).max(64),
        churn_every: 1024,
        rmw_gap: 4,
        scan_limit: 12,
        seed: yo.seed,
    }
}

/// Calls until a decoded reply lands, riding out sheds and timeouts.
fn txn_call(nic: &VirtualNic, flow: u64, op: &TxnOp, attempts: u32) -> Option<TxnResp> {
    for _ in 0..attempts {
        match nic.call(flow, &op.encode(), Duration::from_secs(5)) {
            Ok(outcome) => {
                if let Some(r) = outcome.reply() {
                    return TxnResp::decode(&r);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    None
}

/// Pipelined bulk load: keeps the ring full, harvests completions, and
/// returns how many load upserts were acknowledged.
fn load_store(nic: &VirtualNic, frames: &[PlannedFrame]) -> u64 {
    let mut pending: Vec<u64> = Vec::new();
    let mut loaded = 0u64;
    let mut next = 0usize;
    while next < frames.len() || !pending.is_empty() {
        while next < frames.len() {
            match nic.send_request(frames[next].flow, &frames[next].payload) {
                Ok(seq) => {
                    pending.push(seq);
                    next += 1;
                }
                Err(NetError::Busy) => break,
                Err(e) => panic!("load send failed: {e:?}"),
            }
        }
        nic.pump();
        pending.retain(|&seq| match nic.try_take(seq) {
            Some(resp) => {
                if !matches!(TxnResp::decode(&resp), Some(TxnResp::Ok { .. })) {
                    panic!("load upsert rejected: {:?}", TxnResp::decode(&resp));
                }
                loaded += 1;
                false
            }
            None => true,
        });
        if next < frames.len() || !pending.is_empty() {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    loaded
}

struct MixResult {
    mix: TxnMix,
    stats: OpenLoopStats,
    commits: u64,
    aborts: u64,
    retries: u64,
    index_entries: u64,
}

impl MixResult {
    /// Abort rate over decided transactions, as a percentage.
    fn abort_pct(&self) -> Option<f64> {
        let decided = self.commits + self.aborts;
        (decided > 0).then(|| self.aborts as f64 * 100.0 / decided as f64)
    }
}

/// One measured mix: boot, deploy, bulk-load, open-loop run, index check.
fn run_mix(opts: &BenchOpts, yo: &YcsbOpts, mix: TxnMix) -> MixResult {
    let cfg = txn_cfg(yo, mix);
    let mut sys = System::boot(sys_config(opts, yo.interval_us));
    let dep = deploy_txn(&sys, NODE_CAP, nic_cfg());
    sys.start();

    let loaded = load_store(&dep.dep.nic, &load_frames(&cfg));
    assert_eq!(loaded, cfg.records, "bulk load incomplete");

    // Plan past the full schedule so arrival indices never wrap (a wrap
    // would re-issue workload F's transaction ids).
    let per_tenant =
        (yo.rate / yo.tenants.max(1) as u64).max(1) * yo.duration_ms / 1000 + 256;
    let plans = plan_all(&cfg, per_tenant);
    let before = sys.kernel().metrics.snapshot();
    let olcfg = OpenLoopConfig {
        rate: yo.rate,
        duration: Duration::from_millis(yo.duration_ms),
        seed: yo.seed,
        generators: yo.tenants.max(1),
        op_timeout: Duration::from_secs(2),
    };
    let stats = run_open_loop(dep.dep.nic.as_ref(), &olcfg, |g, i| {
        let f = plans[g].frame(i);
        (f.flow, f.payload.clone())
    });
    let after = sys.kernel().metrics.snapshot().since(&before);

    // Quiesce, then verify the secondary index is exactly consistent with
    // the primary space (scans walk the stable root via host I/O).
    let io = HostIo::new(Arc::clone(sys.kernel()), dep.dep.vmspace);
    sys.stop();
    let store = TxnStore::attach(&io, 0).expect("attach").expect("store formatted");
    let index_entries = check_index_consistency(&store, &io)
        .unwrap_or_else(|e| panic!("workload {}: index inconsistent: {e}", mix.letter()))
        as u64;

    MixResult {
        mix,
        stats,
        commits: after.txn_commits,
        aborts: after.txn_aborts,
        retries: after.txn_conflict_retries,
        index_entries,
    }
}

/// One externally acknowledged auto-commit write the drills must preserve:
/// `(flow, commit seq, key, value)`.
type AckedWrite = (u64, u64, [u8; 16], Vec<u8>);

struct DrillResult {
    acked: u64,
    lost: u64,
    index_entries: u64,
    durable_seq: u64,
    fresh_ok: bool,
}

/// Commits `n` tagged auto-commit writes above `base` and records the
/// externally acknowledged ones.
fn commit_acked(nic: &VirtualNic, base: u64, n: u64) -> Vec<AckedWrite> {
    let mut acked = Vec::new();
    for i in 0..n {
        let key = numeric_key(base + i);
        let val = value_for(base + i, 9, 24);
        let op = TxnOp::Write { txn: 0, key, tag: tag_for(i), val: Some(val.clone()) };
        if let Some(TxnResp::Ok { seq }) = txn_call(nic, i, &op, 64) {
            acked.push((i, seq, key, val));
        }
    }
    acked
}

/// Captures the registered programs so recovery can re-register them
/// (like reloading binaries after reboot).
fn capture_programs(sys: &System) -> Vec<(String, Arc<dyn Program>)> {
    sys.programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect()
}

/// Resolves the restored "ring-txn" process through its capability group:
/// vmspace plus per-queue doorbell notifications in slot (= queue) order.
fn restored_server(sys: &System) -> (treesls::ObjId, Vec<treesls::ObjId>) {
    use treesls_kernel::object::ObjectBody;
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == treesls::ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == "ring-txn")
        })
        .expect("ring-txn cap group restored");
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let mut vmspace = None;
    let mut bells = Vec::new();
    for (_, c) in g.iter() {
        match kernel.object(c.obj).map(|o| o.otype) {
            Ok(treesls::ObjType::VmSpace) => vmspace = vmspace.or(Some(c.obj)),
            Ok(treesls::ObjType::Notification) => bells.push(c.obj),
            _ => {}
        }
    }
    (vmspace.expect("server vmspace restored"), bells)
}

/// Reattaches the NIC and durability gate to a recovered/promoted system,
/// then runs the transactional §5 oracle: every acked write reads back
/// exactly, the acked frontier is under the durable sequence, the index
/// verifies, and a fresh commit still lands.
///
/// The restored poll server dispatches into the SAME [`TxnService`]
/// instance it held before the failure (programs survive "reboot" by
/// re-registration), so the fresh gate wraps that instance — its restore
/// callback drops pre-crash working sets, which is how "uncommitted
/// transactions die with the crash" is enforced on a host whose process
/// memory outlives the simulated power cut.
fn reattach_and_verify(
    sys2: &mut System,
    report_version: u64,
    layout: NicLayout,
    service: Arc<TxnService>,
    acked: &[AckedWrite],
) -> DrillResult {
    let (vs2, bells) = restored_server(sys2);
    let nic2 = VirtualNic::attach(Arc::clone(sys2.kernel()), vs2, layout, &nic_cfg(), 10_000_000);
    for (q, bell) in bells.into_iter().enumerate() {
        nic2.set_doorbell(q, bell);
    }
    sys2.manager().register_callback(Arc::clone(&nic2) as _);
    let gate =
        Arc::new(TxnGate::new(HostIo::new(Arc::clone(sys2.kernel()), vs2), 0, service));
    sys2.manager().register_callback(Arc::clone(&gate) as _);
    sys2.manager().fire_restore_callbacks(report_version);
    sys2.start();

    let mut lost = 0u64;
    for (flow, seq, key, val) in acked {
        match txn_call(&nic2, *flow, &TxnOp::Read { txn: 0, key: *key }, 64) {
            Some(TxnResp::Value { val: v }) if &v == val => {}
            other => {
                lost += 1;
                eprintln!("acked write (commit seq {seq}) lost across the failure: {other:?}");
            }
        }
    }
    let durable_seq = gate.durable_seq();
    if let Some(max_seq) = acked.iter().map(|a| a.1).max() {
        if max_seq > durable_seq {
            lost += 1;
            eprintln!("acked frontier {max_seq} above the restored durable seq {durable_seq}");
        }
    }
    let fresh = TxnOp::WriteCommit {
        txn: 0,
        key: numeric_key(9_999_999),
        tag: tag_for(3),
        val: Some(b"post-restore".to_vec()),
    };
    let fresh_ok = matches!(txn_call(&nic2, 99, &fresh, 64), Some(TxnResp::Ok { .. }));

    let io = HostIo::new(Arc::clone(sys2.kernel()), vs2);
    sys2.stop();
    let store = TxnStore::attach(&io, 0).expect("attach").expect("store formatted");
    let index_entries = check_index_consistency(&store, &io)
        .unwrap_or_else(|e| panic!("index inconsistent after recovery: {e}"))
        as u64;
    DrillResult { acked: acked.len() as u64, lost, index_entries, durable_seq, fresh_ok }
}

/// Mid-load crash drill: bulk load → open-loop burst → acked writes →
/// un-acked stragglers left ring-resident → power failure → recover →
/// the transactional §5 oracle. Returns the drill result plus the §5
/// violations the pre-crash burst observed.
fn run_crash_drill(opts: &BenchOpts, yo: &YcsbOpts) -> (DrillResult, u64) {
    let cfg = YcsbTxnConfig { records: 256, ..txn_cfg(yo, TxnMix::A) };
    let mut sys = System::boot(sys_config(opts, yo.interval_us));
    let dep = deploy_txn(&sys, NODE_CAP, nic_cfg());
    sys.start();
    let loaded = load_store(&dep.dep.nic, &load_frames(&cfg));
    assert_eq!(loaded, cfg.records, "drill bulk load incomplete");

    // A short burst of mixed load so the crash lands on a busy store.
    let burst_ms = (yo.duration_ms / 4).max(50);
    let plans = plan_all(&cfg, (yo.rate / 2).max(1) * burst_ms / 1000 + 256);
    let burst = run_open_loop(
        dep.dep.nic.as_ref(),
        &OpenLoopConfig {
            rate: yo.rate / 2,
            duration: Duration::from_millis(burst_ms),
            seed: yo.seed,
            generators: yo.tenants.max(1),
            op_timeout: Duration::from_secs(2),
        },
        |g, i| {
            let f = plans[g].frame(i);
            (f.flow, f.payload.clone())
        },
    );

    // Externally acknowledged writes the crash must not lose, then
    // un-acked stragglers so the failure really lands mid-load (requests
    // ring-resident, doorbells in volatile state).
    let acked = commit_acked(&dep.dep.nic, 3_000_000, 24);
    for i in 0..4u64 {
        let straggler = TxnOp::Write {
            txn: 0,
            key: numeric_key(3_100_000 + i),
            tag: tag_for(i),
            val: Some(vec![9u8; 16]),
        };
        let _ = dep.dep.nic.send_request(50 + i, &straggler.encode());
    }
    sys.stop();

    let programs = capture_programs(&sys);
    let layout = dep.dep.nic.layout();
    let service = Arc::clone(&dep.service);
    let image = sys.crash();
    let (mut sys2, report) =
        System::recover(image, sys_config(opts, yo.interval_us), move |r| {
            for (n, p) in programs {
                r.register(&n, p);
            }
        })
        .expect("recovery");
    sys2.manager().verify_checkpoint().expect("restored tree verifies");
    let result = reattach_and_verify(&mut sys2, report.version, layout, service, &acked);
    (result, burst.run.sync_violations)
}

/// Replica-promotion drill: the acked writes are replicated to a quorum-2
/// cluster, the primary is lost, replica 0 is promoted, and the same
/// transactional oracle runs on the promoted node.
fn run_promotion_drill(opts: &BenchOpts, yo: &YcsbOpts) -> DrillResult {
    let mut sys = System::boot(sys_config(opts, yo.interval_us));
    let dep = deploy_txn(&sys, NODE_CAP, nic_cfg());
    let mut ccfg = ClusterConfig::default();
    ccfg.ship.quorum = 2;
    let cluster = Cluster::deploy(&sys, &ccfg);
    cluster.attach_gate(&dep.dep.nic);
    cluster.start();
    sys.start();

    let acked = commit_acked(&dep.dep.nic, 4_000_000, 16);
    assert!(!acked.is_empty(), "promotion drill acknowledged no writes");

    // Quiesce: stop admitting, land a final round, and wait for the
    // failover target to reach the head of the stream.
    sys.stop();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        sys.checkpoint_now().expect("final checkpoint");
        let head = sys.kernel().pers.global_version();
        std::thread::sleep(Duration::from_millis(5));
        if cluster.replicas[0].applied_round() == head
            && !cluster.replicas[0].is_awaiting_snapshot()
        {
            break;
        }
        assert!(Instant::now() < deadline, "replica 0 never reached the stream head");
    }

    let programs = capture_programs(&sys);
    let layout = dep.dep.nic.layout();
    let service = Arc::clone(&dep.service);
    dep.dep.nic.close();
    cluster.stop();
    drop(dep);
    drop(sys);

    let (mut sys2, report) = cluster
        .promote(0, sys_config(opts, yo.interval_us), |reg| {
            for (name, prog) in &programs {
                reg.register(name, Arc::clone(prog));
            }
        })
        .expect("promotion");
    sys2.manager().verify_checkpoint().expect("promoted tree verifies");
    reattach_and_verify(&mut sys2, report.version, layout, service, &acked)
}

fn main() {
    let opts = BenchOpts::from_args();
    let yo = parse_ycsb_opts();
    let mut sink = Sink::new(
        "ycsb",
        &format!(
            "YCSB A-F over the transactional B-tree: {} tenants, {} records, \
             {} ops/s offered, {} µs checkpoints",
            yo.tenants, yo.records, yo.rate, yo.interval_us
        ),
        &opts,
    );

    let results: Vec<MixResult> =
        yo.mixes.iter().map(|&mix| run_mix(&opts, &yo, mix)).collect();
    let mut mixes = Table::new(&[
        "Mix",
        "Offered",
        "Ops",
        "Thpt(ops/s)",
        "P50(µs)",
        "P99(µs)",
        "Sheds",
        "Timeouts",
        "SyncViol",
        "Commits",
        "Aborts",
        "Abort%",
        "Retries",
        "IndexEntries",
    ]);
    for r in &results {
        mixes.row(vec![
            r.mix.letter().to_uppercase(),
            r.stats.offered.to_string(),
            r.stats.run.ops.to_string(),
            format!("{:.0}", r.stats.run.throughput()),
            format!("{:.1}", r.stats.run.latency.p50() as f64 / 1e3),
            format!("{:.1}", r.stats.run.latency.p99() as f64 / 1e3),
            r.stats.run.sheds.to_string(),
            r.stats.run.timeouts.to_string(),
            r.stats.run.sync_violations.to_string(),
            r.commits.to_string(),
            r.aborts.to_string(),
            r.abort_pct().map_or("n/a".to_string(), |p| format!("{p:.2}")),
            r.retries.to_string(),
            r.index_entries.to_string(),
        ]);
    }
    sink.table("mixes", mixes);

    let (crash, burst_violations) = run_crash_drill(&opts, &yo);
    let promo = run_promotion_drill(&opts, &yo);
    let mut drills = Table::new(&[
        "Drill",
        "AckedWrites",
        "LostAcks",
        "IndexEntries",
        "DurableSeq",
        "FreshCommit",
    ]);
    for (name, d) in [("crash-restore", &crash), ("promotion", &promo)] {
        drills.row(vec![
            name.into(),
            d.acked.to_string(),
            d.lost.to_string(),
            d.index_entries.to_string(),
            d.durable_seq.to_string(),
            if d.fresh_ok { "ok".into() } else { "FAILED".into() },
        ]);
    }
    sink.table("drills", drills);

    let mix_violations: u64 = results.iter().map(|r| r.stats.run.sync_violations).sum();
    let total_violations = mix_violations + burst_violations + crash.lost + promo.lost;
    sink.note(&format!(
        "§5 oracle: {total_violations} violations (open-loop mixes + crash burst + both drills)"
    ));
    sink.note(
        "index oracle: secondary index verified exactly consistent after every mix and drill",
    );

    let mut failed = Vec::new();
    if total_violations > 0 {
        failed.push(format!("{total_violations} external-synchrony violations"));
    }
    if crash.acked == 0 {
        failed.push("crash drill acknowledged no writes".to_string());
    }
    if !crash.fresh_ok {
        failed.push("recovered node refused a fresh commit".to_string());
    }
    if !promo.fresh_ok {
        failed.push("promoted node refused a fresh commit".to_string());
    }
    if yo.gate {
        if let Some(a) = results.iter().find(|r| r.mix == TxnMix::A) {
            let pct = a.abort_pct().unwrap_or(0.0);
            sink.note(&format!(
                "gate: workload A abort rate {pct:.2}% vs budget 5.00% -> {}",
                if pct <= 5.0 { "PASS" } else { "FAIL" }
            ));
            if pct > 5.0 {
                failed.push(format!("workload A abort rate {pct:.2}% (budget 5%)"));
            }
        }
        for r in &results {
            if r.stats.run.ops == 0 {
                failed.push(format!("workload {} completed no operations", r.mix.letter()));
            }
        }
    }
    sink.finish();
    if !failed.is_empty() {
        eprintln!("ycsb FAILED: {}", failed.join("; "));
        std::process::exit(1);
    }
}
