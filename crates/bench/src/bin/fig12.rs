//! Figure 12: Redis SET with and without external synchrony.
//!
//! Clients batch-pipeline 32 requests at a time against a single-shard
//! ring server with 1024-byte values. Three configurations per interval:
//! baseline (no checkpointing), TreeSLS (checkpointing, responses released
//! immediately) and TreeSLS-ExtSync (responses delayed until the covering
//! checkpoint commits). The paper finds ExtSync adds roughly one
//! checkpoint interval of latency and caps throughput via client blocking.

use std::time::{Duration, Instant};

use treesls::{System, SystemConfig};
use treesls_apps::hist::Histogram;
use treesls_apps::server::xorshift64;
use treesls_apps::wire::{numeric_key, KvOp};
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};
use treesls_bench::table::Table;
use treesls_bench::Sink;

const BATCH: usize = 32;

fn run_config(
    opts: &BenchOpts,
    interval: Option<Duration>,
    ext_sync: bool,
    clients: usize,
    batches_per_client: u64,
) -> (f64, u64, u64) {
    let config = SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 4096,
            ..Default::default()
        },
        cores: opts.cores,
        quantum: 32,
        checkpoint_interval: interval,
    };
    let mut sys = System::boot(config);
    let geom = ShardGeometry { nslots: 1024, slot_size: 1280, data_stride: 48 << 20 };
    let dep = deploy_kv(&sys, 1, 8192, 1024, ext_sync, geom);
    sys.start();
    let nic = &dep.nic;

    let merged = parking_lot::Mutex::new(Histogram::new());
    let total = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let merged = &merged;
            let total = &total;
            s.spawn(move || {
                let mut hist = Histogram::new();
                let mut rng = 0xF00D + c as u64 * 31;
                let mut done = 0u64;
                for _ in 0..batches_per_client {
                    // Pipeline a batch of 32 SETs, then wait for all.
                    let bt0 = Instant::now();
                    let mut seqs = Vec::with_capacity(BATCH);
                    for _ in 0..BATCH {
                        rng = xorshift64(rng);
                        let id = (rng >> 8) % 10_000;
                        let op = KvOp::Set {
                            key: numeric_key(id),
                            value: vec![3u8; 1024],
                        };
                        match nic.send_request(id, &op.encode()) {
                            Ok(seq) => seqs.push(seq),
                            Err(_) => {
                                // Shed (ring full): drain before continuing.
                                nic.pump();
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        }
                    }
                    let deadline = Instant::now() + Duration::from_secs(10);
                    let mut pending = seqs;
                    while !pending.is_empty() && Instant::now() < deadline {
                        nic.pump();
                        pending.retain(|&s| nic.try_take(s).is_none());
                        if !pending.is_empty() {
                            std::thread::sleep(Duration::from_micros(20));
                        }
                    }
                    done += (BATCH - pending.len()) as u64;
                    // Return the credits of anything that timed out.
                    for s in pending {
                        nic.abandon(s);
                    }
                    hist.record(bt0.elapsed().as_nanos() as u64);
                }
                merged.lock().merge(&hist);
                total.fetch_add(done, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    let elapsed = t0.elapsed();
    sys.stop();
    let hist = merged.into_inner();
    let ops = total.load(std::sync::atomic::Ordering::Relaxed);
    (ops as f64 / elapsed.as_secs_f64(), hist.p50(), hist.p95())
}

fn main() {
    let opts = BenchOpts::from_args();
    let clients = if opts.full { 50 } else { 8 };
    let batches = if opts.full { 200 } else { 40 };
    let mut sink = Sink::new(
        "fig12",
        &format!("Figure 12: Redis SET with external synchrony ({clients} clients, batch {BATCH})"),
        &opts,
    );
    let mut table = Table::new(&[
        "Config", "Interval", "Throughput(Kops/s)", "P50 batch lat(ms)", "P95 batch lat(ms)",
    ]);
    let (thr, p50, p95) = run_config(&opts, None, false, clients, batches);
    table.row(vec![
        "Baseline".into(),
        "-".into(),
        format!("{:.1}", thr / 1e3),
        format!("{:.2}", p50 as f64 / 1e6),
        format!("{:.2}", p95 as f64 / 1e6),
    ]);
    for ms in [1u64, 5, 10] {
        for (name, ext) in [("TreeSLS", false), ("TreeSLS-ExtSync", true)] {
            let (thr, p50, p95) =
                run_config(&opts, Some(Duration::from_millis(ms)), ext, clients, batches);
            table.row(vec![
                name.into(),
                format!("{ms}ms"),
                format!("{:.1}", thr / 1e3),
                format!("{:.2}", p50 as f64 / 1e6),
                format!("{:.2}", p95 as f64 / 1e6),
            ]);
        }
    }
    sink.table("throughput_latency", table);
    sink.finish();
}
