//! Table 2: object composition and memory footprint of each workload.
//!
//! "Details of different workloads. Default is the system running with no
//! workloads. Object counts in other workloads are relative to default."
//! Prints absolute counts for Default and `+n` deltas for the rest, plus
//! App (runtime) and Ckpt (checkpoint) sizes in MiB — checkpoint size is
//! smaller than runtime because NVM lets runtime pages double as
//! checkpoint data.

use std::collections::HashMap;
use std::time::Duration;

use treesls::ObjType;
use treesls_bench::harness::{build, BenchOpts};
use treesls_bench::table::{mib, Table};
use treesls_bench::{Sink, WorkloadKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut sink = Sink::new(
        "table2",
        "Table 2: workload object composition and size (this reproduction)",
        &opts,
    );
    let mut table = Table::new(&[
        "Workload", "C.G.", "Thread", "IPC", "Noti.", "PMO", "VMS", "App(MiB)", "Ckpt(MiB)",
    ]);
    let mut baseline: Option<HashMap<ObjType, usize>> = None;
    for kind in WorkloadKind::TABLE2 {
        let mut bench = build(kind, &opts);
        // Let the workload materialize its memory and take checkpoints.
        bench.run(Duration::from_millis(if opts.full { 3000 } else { 800 }));
        let census = bench.sys.kernel().census();
        let app = bench.sys.kernel().app_memory_bytes();
        let ckpt = bench.sys.manager().ckpt_size_bytes();
        let cell = |t: ObjType| -> String {
            let n = census.get(&t).copied().unwrap_or(0);
            match (&baseline, kind) {
                (Some(base), k) if k != WorkloadKind::Default => {
                    format!("+{}", n.saturating_sub(base.get(&t).copied().unwrap_or(0)))
                }
                _ => format!("{n}"),
            }
        };
        table.row(vec![
            kind.label().to_string(),
            cell(ObjType::CapGroup),
            cell(ObjType::Thread),
            cell(ObjType::IpcConnection),
            cell(ObjType::Notification),
            cell(ObjType::Pmo),
            cell(ObjType::VmSpace),
            if kind == WorkloadKind::Default { "n/a".into() } else { mib(app) },
            if kind == WorkloadKind::Default { "n/a".into() } else { mib(ckpt) },
        ]);
        if kind == WorkloadKind::Default {
            baseline = Some(census);
        }
    }
    sink.table("composition", table);
    sink.finish();
}
