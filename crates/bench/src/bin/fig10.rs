//! Figure 10: breakdown of runtime overhead and effect of hybrid copy.
//!
//! Normalized run time of memory-intensive workloads under cumulative
//! feature configurations: base (no checkpoint), +checkpoint (STW only),
//! +page fault (CoW arming without the copy), +page memcpy (full CoW),
//! +hybrid copy. The paper finds most overhead in fault handling and page
//! copying, with hybrid copy reducing it by up to 49 %.

use std::time::Duration;

use treesls_bench::harness::{build, BenchOpts};
use treesls_bench::table::Table;
use treesls_bench::{Sink, WorkloadKind};

#[derive(Clone, Copy)]
struct Mode {
    #[allow(dead_code)] // documents the column each mode produces
    label: &'static str,
    ckpt: bool,
    mark_ro: bool,
    do_copy: bool,
    hybrid: bool,
}

const MODES: [Mode; 5] = [
    Mode { label: "base", ckpt: false, mark_ro: false, do_copy: false, hybrid: false },
    Mode { label: "+checkpoint", ckpt: true, mark_ro: false, do_copy: false, hybrid: false },
    Mode { label: "+page fault", ckpt: true, mark_ro: true, do_copy: false, hybrid: false },
    Mode { label: "+page memcpy", ckpt: true, mark_ro: true, do_copy: true, hybrid: false },
    Mode { label: "+hybrid copy", ckpt: true, mark_ro: true, do_copy: true, hybrid: true },
];

fn main() {
    let base_opts = BenchOpts::from_args();
    let mut sink =
        Sink::new("fig10", "Figure 10: runtime overhead breakdown (normalized run time)", &base_opts);
    let kinds =
        [WorkloadKind::Memcached, WorkloadKind::Redis, WorkloadKind::KMeans, WorkloadKind::Pca];
    let mut table = Table::new(&[
        "Workload", "base", "+checkpoint", "+page fault", "+page memcpy", "+hybrid copy",
    ]);
    let deadline = Duration::from_secs(if base_opts.full { 600 } else { 120 });
    for kind in kinds {
        let mut row = vec![kind.label().to_string()];
        let mut base_time = None;
        for mode in MODES {
            let mut opts = base_opts.clone();
            opts.interval = mode.ckpt.then(|| Duration::from_millis(1));
            opts.mark_ro = mode.mark_ro;
            opts.do_copy = mode.do_copy;
            opts.hybrid = mode.hybrid;
            let mut bench = build(kind, &opts);
            let elapsed = bench.run(deadline);
            match base_time {
                None => {
                    base_time = Some(elapsed);
                    row.push(format!("1.00 ({:.0}ms)", elapsed.as_secs_f64() * 1e3));
                }
                Some(base) => {
                    row.push(format!("{:.2}", elapsed.as_secs_f64() / base.as_secs_f64()));
                }
            }
        }
        table.row(row);
    }
    sink.table("normalized_runtime", table);
    sink.finish();
}
