//! Epoch-concurrent pause bench: the stop-the-world window must be O(1)
//! — independent of heap size *and* dirty-owner count — because the
//! leader's pause shrinks to the epoch flip (quiesce the owner set, mark
//! the write set read-only, cut the dirty queue, resume) while the tree
//! walk, backup-record builds and page copies run concurrently with live
//! mutators.
//!
//! Three writers pinned to distinct cores of a 4-core machine re-dirty
//! per-process heaps whose size sweeps 10× (8 → 80 pages per writer).
//! For each size the bench reports the stop-window distribution consumed
//! directly from the metrics registry's exported pause histogram
//! (`MetricsSnapshot::pause` — the same numbers `to_json()` emits; the
//! quantiles are log₂-bucket upper bounds, the max is exact), plus the
//! aggregate core-parked time per round and the epoch-machinery counters
//! (flips, conflict captures, in-line log records, concurrent-copy
//! time) proving mutators really ran through the copy phase.
//!
//! Flags beyond the common set: `--rounds N` (measured checkpoints per
//! size), `--gate-pause-us U` (exit nonzero if any size's median pause
//! exceeds `U` µs — CI passes 100), `--gate-parked R` (exit nonzero if
//! `median(parked, epoch @ 10×)/median(parked, full-quiesce @ 10×)`
//! exceeds `R` — CI passes 0.05).

use std::sync::Arc;
use std::time::Duration;

use treesls::{
    PauseStats, ProcessSpec, Program, StepOutcome, System, SystemConfig, ThreadSpec, UserCtx,
};
use treesls_bench::harness::BenchOpts;
use treesls_bench::table::Table;
use treesls_bench::Sink;

/// Machine size; writers own `WRITERS` of these cores every round.
const CORES: usize = 4;

/// Pinned mutators — the dirty-owner count the flip must not scale with.
const WRITERS: usize = 3;

/// Per-writer heap pages: smallest → largest is the 10× object growth
/// the pause gate compares across.
const SIZES: [u64; 3] = [8, 24, 80];

/// Writes one `u64` per step, round-robin over the writer's heap pages —
/// 8-byte deltas, so first conflicting writes during the concurrent copy
/// take the in-line undo-log path rather than whole-page CoW.
struct DirtyPages {
    pages: u64,
}
impl Program for DirtyPages {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let done = ctx.reg(2);
        let page = done % self.pages;
        let word = (done / self.pages) % 64;
        if ctx.write_u64(page * 4096 + word * 8, 0xE60C_0000 + done).is_err() {
            return StepOutcome::Exited;
        }
        ctx.set_reg(2, done + 1);
        StepOutcome::Ready
    }
}

fn config(full_quiesce: bool) -> SystemConfig {
    let mut c = SystemConfig {
        cores: CORES,
        checkpoint_interval: None, // measured checkpoints only
        ..SystemConfig::default()
    };
    c.kernel.nvm_frames = 16_384;
    c.kernel.dram_pages = 512;
    c.kernel.force_full_quiesce = full_quiesce;
    c
}

struct StageResult {
    pages: u64,
    pause: PauseStats,
    median_parked: Duration,
    median_stopped: usize,
    epoch_flips: u64,
    conflicts: u64,
    inline_logs: u64,
    inline_bytes: u64,
    concurrent_copy: Duration,
}

fn run_stage(pages: u64, full_quiesce: bool, rounds: usize) -> StageResult {
    let mut sys = System::boot(config(full_quiesce));
    sys.register_program("dirty", Arc::new(DirtyPages { pages }));
    for w in 0..WRITERS {
        let p = sys
            .spawn(
                &ProcessSpec::new(format!("writer{w}"))
                    .heap(pages)
                    .thread(ThreadSpec::new("dirty")),
            )
            .expect("spawn writer");
        // Pin writer w to core w: the owner mask names the same
        // dirty-owner set every round, and core 3 stays clean.
        sys.kernel().sched.set_affinity(p.threads[0], Some(w as u32));
    }
    sys.start();

    // Warm-up: let each writer touch its whole heap, then settle the
    // fresh tree so measured rounds drain steady-state dirty sets.
    std::thread::sleep(Duration::from_millis(10));
    sys.checkpoint_now().expect("warmup checkpoint");
    sys.checkpoint_now().expect("settle checkpoint");

    let stw = Arc::clone(sys.manager().stw());
    let mut parked: Vec<u64> = Vec::with_capacity(rounds);
    let mut stopped: Vec<usize> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // Let the writers re-dirty their heaps between rounds.
        std::thread::sleep(Duration::from_millis(2));
        stw.wait_all_resumed();
        stw.take_paused_ns(); // drop park time accumulated between rounds
        sys.checkpoint_now().expect("measured checkpoint");
        stw.wait_all_resumed();
        parked.push(stw.take_paused_ns());
        stopped.push(stw.stopped_cores());
    }
    let snap = sys.metrics_snapshot();
    if std::env::var_os("PAUSE_EPOCH_DEBUG").is_some() {
        let bd = sys.manager().breakdowns.lock().clone();
        let mut ipi: Vec<_> = bd.iter().map(|b| b.ipi).collect();
        let mut tot: Vec<_> = bd.iter().map(|b| b.total_pause).collect();
        let mut mark: Vec<_> = bd
            .iter()
            .map(|b| b.per_type.values().copied().sum::<Duration>())
            .collect();
        ipi.sort();
        tot.sort();
        mark.sort();
        eprintln!(
            "debug {pages}p full_q={full_quiesce}: ipi_med={:?} pertype_med={:?} total_med={:?} total_max={:?}",
            ipi[ipi.len() / 2],
            mark[mark.len() / 2],
            tot[tot.len() / 2],
            tot.last().unwrap()
        );
    }
    sys.stop();

    parked.sort_unstable();
    stopped.sort_unstable();
    StageResult {
        pages,
        pause: snap.pause,
        median_parked: Duration::from_nanos(parked[parked.len() / 2]),
        median_stopped: stopped[stopped.len() / 2],
        epoch_flips: snap.epoch_flips,
        conflicts: snap.epoch_conflicts,
        inline_logs: snap.inline_log_captures,
        inline_bytes: snap.inline_log_bytes,
        concurrent_copy: Duration::from_nanos(snap.concurrent_copy_ns),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let args: Vec<String> = std::env::args().collect();
    let mut rounds: usize = if opts.full { 100 } else { 40 };
    let mut gate_pause_us: Option<f64> = None;
    let mut gate_parked: Option<f64> = None;
    for (i, a) in args.iter().enumerate() {
        match a.as_str() {
            "--rounds" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    rounds = n;
                }
            }
            "--gate-pause-us" => {
                gate_pause_us = args.get(i + 1).and_then(|s| s.parse().ok());
            }
            "--gate-parked" => {
                gate_parked = args.get(i + 1).and_then(|s| s.parse().ok());
            }
            _ => {}
        }
    }

    let mut sink = Sink::new(
        "pause_epoch",
        "Epoch-concurrent checkpointing: O(1) flip pause across a 10x heap sweep",
        &opts,
    );
    // "≤" pause columns are log₂-bucket upper bounds straight from the
    // registry's exported histogram; ParkedMed is the exact per-round
    // aggregate core-parked time.
    let mut table = Table::new(&[
        "HeapPages", "Owners", "Rounds", "PauseP50<=", "PauseP99<=", "PauseMax", "ParkedMed",
        "StoppedMed", "Flips", "Conflicts", "InlineLogs", "InlineBytes", "ConcCopy",
    ]);
    let mut stages = Vec::new();
    for &pages in &SIZES {
        let r = run_stage(pages, false, rounds);
        table.row(vec![
            format!("{}x{WRITERS}", r.pages),
            format!("{}", WRITERS),
            format!("{rounds}"),
            format!("{:.2}", r.pause.p50_ns as f64 / 1e3),
            format!("{:.2}", r.pause.p99_ns as f64 / 1e3),
            format!("{:.2}", r.pause.max_ns as f64 / 1e3),
            format!("{:.2}", r.median_parked.as_nanos() as f64 / 1e3),
            format!("{}", r.median_stopped),
            format!("{}", r.epoch_flips),
            format!("{}", r.conflicts),
            format!("{}", r.inline_logs),
            format!("{}", r.inline_bytes),
            format!("{:.2}", r.concurrent_copy.as_nanos() as f64 / 1e3),
        ]);
        stages.push(r);
    }
    sink.table("pause_epoch", table);

    // Full-quiesce oracle at the largest size: every core parks for the
    // whole copy phase — the parked-time denominator.
    let full = run_stage(SIZES[SIZES.len() - 1], true, rounds);
    let mut base = Table::new(&["HeapPages", "ParkedMed", "StoppedMed", "PauseP50<="]);
    base.row(vec![
        format!("{}x{WRITERS}", full.pages),
        format!("{:.2}", full.median_parked.as_nanos() as f64 / 1e3),
        format!("{}", full.median_stopped),
        format!("{:.2}", full.pause.p50_ns as f64 / 1e3),
    ]);
    sink.table("full_quiesce_baseline", base);

    let worst_p50_us = stages
        .iter()
        .map(|s| s.pause.p50_ns as f64 / 1e3)
        .fold(0.0_f64, f64::max);
    let epoch_at_max = stages.last().expect("sizes non-empty");
    let parked_ratio = epoch_at_max.median_parked.as_secs_f64()
        / full.median_parked.as_secs_f64().max(1e-9);
    let pause_pass = gate_pause_us.is_none_or(|g| worst_p50_us <= g);
    let parked_pass = gate_parked.is_none_or(|g| parked_ratio <= g);
    let mut gate_table =
        Table::new(&["WorstP50us", "PauseGateUs", "ParkedRatio", "ParkedGate", "Pass"]);
    gate_table.row(vec![
        format!("{worst_p50_us:.2}"),
        gate_pause_us.map_or("n/a".to_string(), |g| format!("{g:.0}")),
        format!("{parked_ratio:.4}"),
        gate_parked.map_or("n/a".to_string(), |g| format!("{g:.3}")),
        format!("{}", pause_pass && parked_pass),
    ]);
    sink.table("gate", gate_table);
    sink.note(&format!(
        "({WRITERS} writers live through the copy phase: the flip pause stays \
         flat across the {}x heap sweep while conflict captures and in-line \
         log records absorb the racing writes)",
        SIZES[SIZES.len() - 1] / SIZES[0]
    ));
    sink.finish();

    if !pause_pass {
        eprintln!(
            "pause-epoch gate FAILED: worst median pause {worst_p50_us:.2} us > {:.0} us",
            gate_pause_us.expect("pause_pass=false implies gate set")
        );
        std::process::exit(1);
    }
    if !parked_pass {
        eprintln!(
            "pause-epoch parked gate FAILED: epoch/full parked ratio {parked_ratio:.4} > {:.3}",
            gate_parked.expect("parked_pass=false implies gate set")
        );
        std::process::exit(1);
    }
}
