//! `net_load`: closed-loop multi-client load against the virtual NIC.
//!
//! Sweeps the queue count (default 1 → 2 → 4) with a *fixed* client fleet
//! and a tight per-queue credit budget, so aggregate throughput scales
//! with the admitted in-flight window — the multi-queue scaling story of
//! the `treesls-net` subsystem. Every run uses external synchrony and the
//! client-side §5 oracle (a response observed at a committed version no
//! later than the send-time version is a violation); a crash drill then
//! repeats the oracle across a mid-load power failure and restore.
//!
//! ```sh
//! cargo run --release --bin net_load -- --json
//! cargo run --release --bin net_load -- --queues 4 --clients 16 \
//!     --interval-us 200 --gate   # CI smoke configuration
//! ```
//!
//! `--gate` enforces the latency SLO: client p99 must stay within 8× the
//! median stop-the-world checkpoint pause of the same run (checked on the
//! largest queue configuration).

use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls::net::{NicConfig, VirtualNic};
use treesls::{Program, System, SystemConfig};
use treesls_apps::client::{run_parallel_clients, RunStats};
use treesls_apps::server::xorshift64;
use treesls_apps::wire::{make_key, numeric_key, KvOp, KvResp};
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::{deploy_kv_cfg, ShardGeometry};
use treesls_bench::table::Table;
use treesls_bench::Sink;
use treesls::PauseStats;

const GEOM: ShardGeometry = ShardGeometry { nslots: 256, slot_size: 2048, data_stride: 8 << 20 };
const NBUCKETS: u64 = 4096;
const KEY_SPACE: u64 = 10_000;

struct NetOpts {
    /// Queue counts to sweep.
    queues: Vec<usize>,
    /// Client threads (fixed across the sweep).
    clients: usize,
    /// Wall-clock load duration per configuration.
    duration_ms: u64,
    /// Checkpoint interval in microseconds.
    interval_us: u64,
    /// Per-queue admission budget.
    credits: u64,
    /// SET value size in bytes (drives per-checkpoint dirty volume).
    value_len: usize,
    /// Enforce the p99 ≤ 8× median-pause SLO (exit 1 on violation).
    gate: bool,
}

fn parse_net_opts() -> NetOpts {
    let mut o = NetOpts {
        queues: vec![1, 2, 4],
        clients: 32,
        duration_ms: 1200,
        interval_us: 1000,
        credits: 8,
        value_len: 64,
        gate: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--queues" => {
                if let Some(v) = next(i) {
                    o.queues = v
                        .split(',')
                        .filter_map(|s| s.trim().parse().ok())
                        .filter(|&q| q > 0)
                        .collect();
                    assert!(!o.queues.is_empty(), "--queues needs at least one count");
                }
            }
            "--clients" => {
                if let Some(v) = next(i) {
                    o.clients = v.parse().expect("--clients N");
                }
            }
            "--duration-ms" => {
                if let Some(v) = next(i) {
                    o.duration_ms = v.parse().expect("--duration-ms N");
                }
            }
            "--interval-us" => {
                if let Some(v) = next(i) {
                    o.interval_us = v.parse().expect("--interval-us N");
                }
            }
            "--credits" => {
                if let Some(v) = next(i) {
                    o.credits = v.parse().expect("--credits N");
                }
            }
            "--value-len" => {
                if let Some(v) = next(i) {
                    o.value_len = v.parse().expect("--value-len N");
                }
            }
            "--gate" => o.gate = true,
            _ => {}
        }
        i += 1;
    }
    o
}

fn sys_config(opts: &BenchOpts, interval_us: u64) -> SystemConfig {
    SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 4096,
            ..Default::default()
        },
        cores: opts.cores,
        quantum: 32,
        checkpoint_interval: Some(Duration::from_micros(interval_us)),
    }
}

fn nic_cfg(net: &NetOpts, queues: usize) -> NicConfig {
    NicConfig {
        queues,
        nslots: GEOM.nslots,
        slot_size: GEOM.slot_size,
        credits: net.credits,
        ext_sync: true,
        fault: Default::default(),
        call_timeout: Duration::from_secs(5),
    }
}

/// Calls until a reply lands, riding out `Busy` sheds (the fleet may
/// still be draining its last in-flight window) and retransmitting on
/// timeout.
fn call_retry(nic: &VirtualNic, flow: u64, op: &KvOp, attempts: u32) -> Option<Vec<u8>> {
    for _ in 0..attempts {
        match nic.call(flow, &op.encode(), Duration::from_secs(5)) {
            Ok(outcome) => {
                if let Some(r) = outcome.reply() {
                    return Some(r);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    None
}

/// Resolves the restored "ring-kv" process: its vmspace and per-queue
/// doorbell notifications in capability-slot (= creation = queue) order.
fn restored_server(sys: &System) -> (treesls::ObjId, Vec<treesls::ObjId>) {
    use treesls_kernel::object::ObjectBody;
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == treesls::ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == "ring-kv")
        })
        .expect("ring-kv cap group restored");
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let mut vmspace = None;
    let mut bells = Vec::new();
    for (_, c) in g.iter() {
        match kernel.object(c.obj).map(|o| o.otype) {
            Ok(treesls::ObjType::VmSpace) => vmspace = vmspace.or(Some(c.obj)),
            Ok(treesls::ObjType::Notification) => bells.push(c.obj),
            _ => {}
        }
    }
    (vmspace.expect("server vmspace restored"), bells)
}

/// Drives `clients` closed-loop SET threads against `nic` until the
/// deadline; keys double as flow ids for RSS steering.
fn drive(nic: &VirtualNic, net: &NetOpts, duration: Duration) -> RunStats {
    let deadline = Instant::now() + duration;
    let value_len = net.value_len;
    run_parallel_clients(
        nic,
        net.clients,
        |t| {
            let mut rng = 0x5EED_u64
                .wrapping_add(0x9E37_79B9)
                .wrapping_add(t as u64 * 6_364_136_223_846_793_005);
            Box::new(move || {
                if Instant::now() >= deadline {
                    return None;
                }
                rng = xorshift64(rng);
                let id = (rng >> 8) % KEY_SPACE;
                Some((id, KvOp::Set { key: numeric_key(id), value: vec![5u8; value_len] }))
            })
        },
        Duration::from_secs(5),
    )
}

/// One queue-scaling configuration: boot, deploy, load, collect.
fn run_scale(opts: &BenchOpts, net: &NetOpts, queues: usize) -> (RunStats, PauseStats) {
    let mut sys = System::boot(sys_config(opts, net.interval_us));
    let dep =
        deploy_kv_cfg(&sys, NBUCKETS, net.value_len.max(128) as u64, nic_cfg(net, queues), GEOM);
    sys.start();
    let stats = drive(&dep.nic, net, Duration::from_millis(net.duration_ms));
    let pause = sys.kernel().metrics.pause_histogram().stats();
    sys.stop();
    (stats, pause)
}

/// Mid-load crash drill: load → acked receipt → un-acked stragglers →
/// power failure → recover/reattach/re-arm → receipt GET → load again.
/// Returns (pre-crash stats, post-restore stats, receipt survived).
fn crash_drill(opts: &BenchOpts, net: &NetOpts) -> (RunStats, RunStats, bool) {
    let queues = *net.queues.last().unwrap_or(&2);
    let cfg = nic_cfg(net, queues);
    let mut sys = System::boot(sys_config(opts, net.interval_us));
    let dep = deploy_kv_cfg(&sys, NBUCKETS, net.value_len.max(128) as u64, cfg, GEOM);
    sys.start();

    let drill_ms = (net.duration_ms / 4).max(100);
    let pre = drive(&dep.nic, net, Duration::from_millis(drill_ms));

    // A receipt whose acknowledgement was observed: external synchrony
    // promises it survives the crash below.
    let receipt_key = make_key(b"net-load-receipt");
    let receipt_flow = 7u64;
    let set = KvOp::Set { key: receipt_key, value: b"durable".to_vec() };
    call_retry(&dep.nic, receipt_flow, &set, 32).expect("receipt acked");
    // Leave un-acked traffic in flight so the crash really lands mid-load
    // (ring-resident requests, doorbell signals in volatile state).
    for i in 0..4u64 {
        let straggler = KvOp::Set { key: numeric_key(KEY_SPACE + i), value: vec![9u8; 16] };
        let _ = dep.nic.send_request(KEY_SPACE + i, &straggler.encode());
    }
    sys.stop();

    let programs: Vec<(String, Arc<dyn Program>)> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect();
    let layout = dep.nic.layout();
    let image = sys.crash();
    let (mut sys2, report) = System::recover(image, sys_config(opts, net.interval_us), move |r| {
        for (n, p) in programs {
            r.register(&n, p);
        }
    })
    .expect("recovery");

    // Reattach: resolve the restored process through its capability
    // group, whose slot order is creation (= queue) order.
    let (vs2, bells) = restored_server(&sys2);
    assert_eq!(bells.len(), queues, "one doorbell per queue restored");
    let nic2 = VirtualNic::attach(Arc::clone(sys2.kernel()), vs2, layout, &cfg, 10_000_000);
    for (q, bell) in bells.into_iter().enumerate() {
        nic2.set_doorbell(q, bell);
    }
    sys2.manager().register_callback(Arc::clone(&nic2) as _);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.start();

    // The acked receipt must still be readable on its original flow.
    let get = KvOp::Get { key: receipt_key };
    let survived = call_retry(&nic2, receipt_flow, &get, 32)
        .as_deref()
        .and_then(KvResp::decode)
        .is_some_and(|r| r == KvResp::Ok(Some(b"durable".to_vec())));

    let post = drive(&nic2, net, Duration::from_millis(drill_ms));
    sys2.stop();
    (pre, post, survived)
}

fn main() {
    let opts = BenchOpts::from_args();
    let net = parse_net_opts();
    let mut sink = Sink::new(
        "net",
        &format!(
            "treesls-net load: {} clients, {} credits/queue, {} µs checkpoints",
            net.clients, net.credits, net.interval_us
        ),
        &opts,
    );

    let mut table = Table::new(&[
        "Queues",
        "Clients",
        "Throughput(ops/s)",
        "P50(µs)",
        "P95(µs)",
        "P99(µs)",
        "Sheds",
        "Timeouts",
        "SyncViolations",
        "Ckpts",
        "PauseP50(µs)",
        "PauseMean(µs)",
    ]);
    let mut runs = Vec::new();
    for &q in &net.queues {
        let (stats, pause) = run_scale(&opts, &net, q);
        table.row(vec![
            q.to_string(),
            net.clients.to_string(),
            format!("{:.0}", stats.throughput()),
            format!("{:.1}", stats.latency.p50() as f64 / 1e3),
            format!("{:.1}", stats.latency.p95() as f64 / 1e3),
            format!("{:.1}", stats.latency.p99() as f64 / 1e3),
            stats.sheds.to_string(),
            stats.timeouts.to_string(),
            stats.sync_violations.to_string(),
            pause.count.to_string(),
            format!("{:.1}", pause.p50_ns as f64 / 1e3),
            format!("{:.1}", pause.mean_ns as f64 / 1e3),
        ]);
        runs.push((q, stats, pause));
    }
    sink.table("scaling", table);

    let violations: u64 = runs.iter().map(|(_, s, _)| s.sync_violations).sum();
    if let (Some(first), Some(last)) = (runs.first(), runs.last()) {
        if last.0 > first.0 && first.1.throughput() > 0.0 {
            sink.note(&format!(
                "scaling {}q -> {}q: {:.2}x aggregate throughput",
                first.0,
                last.0,
                last.1.throughput() / first.1.throughput()
            ));
        }
    }

    let (pre, post, receipt_survived) = crash_drill(&opts, &net);
    let mut drill = Table::new(&[
        "Phase",
        "Ops",
        "Throughput(ops/s)",
        "SyncViolations",
        "ReceiptSurvived",
    ]);
    drill.row(vec![
        "pre-crash".into(),
        pre.ops.to_string(),
        format!("{:.0}", pre.throughput()),
        pre.sync_violations.to_string(),
        "-".into(),
    ]);
    drill.row(vec![
        "post-restore".into(),
        post.ops.to_string(),
        format!("{:.0}", post.throughput()),
        post.sync_violations.to_string(),
        if receipt_survived { "yes" } else { "NO" }.into(),
    ]);
    sink.table("crash_drill", drill);

    let drill_violations = pre.sync_violations + post.sync_violations;
    sink.note(&format!(
        "external synchrony oracle: {} violations across {} scaling runs + crash drill",
        violations + drill_violations,
        runs.len()
    ));

    let mut failed = Vec::new();
    if violations + drill_violations > 0 {
        failed.push(format!("{} external-synchrony violations", violations + drill_violations));
    }
    if !receipt_survived {
        failed.push("acked receipt lost across crash/restore".to_string());
    }
    if net.gate {
        // SLO: client p99 within 8× the median stop-the-world pause of
        // the largest queue configuration.
        let (q, stats, pause) = runs.last().expect("at least one run");
        let p99 = stats.latency.p99();
        let budget = 8 * pause.p50_ns.max(1);
        sink.note(&format!(
            "gate ({q} queues): p99 {:.1} µs vs 8x median pause {:.1} µs -> {}",
            p99 as f64 / 1e3,
            budget as f64 / 1e3,
            if p99 <= budget { "PASS" } else { "FAIL" }
        ));
        if p99 > budget {
            failed.push(format!(
                "p99 {}ns exceeds 8x median checkpoint pause {}ns",
                p99, budget
            ));
        }
        if stats.ops == 0 {
            failed.push("gated run completed no operations".to_string());
        }
    }
    sink.finish();
    if !failed.is_empty() {
        eprintln!("net_load FAILED: {}", failed.join("; "));
        std::process::exit(1);
    }
}
