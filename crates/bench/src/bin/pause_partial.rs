//! Partial-quiescence pause bench: the stop-the-world window must scale
//! with the *dirty-owning* core count, not the machine size.
//!
//! A 64-page working set is dirtied by a single writer pinned to core 0
//! of a 4-core machine, so every round's owner mask names exactly one
//! core. The bench measures the aggregate core-parked time per checkpoint
//! (`StwController::take_paused_ns`) under partial quiescence and again
//! under the `force_full_quiesce` oracle; partial parks 1/4 of the cores,
//! so its median must come in well under the full-stop baseline.
//!
//! Flags beyond the common set: `--rounds N` (measured checkpoints per
//! mode), `--gate R` (exit nonzero if `median(partial)/median(full)`
//! exceeds `R` — the CI perf-smoke job passes `--gate 0.6`).

use std::sync::Arc;
use std::time::Duration;

use treesls::{ProcessSpec, Program, StepOutcome, System, SystemConfig, ThreadSpec, UserCtx};
use treesls_bench::harness::BenchOpts;
use treesls_bench::table::{us, Table};
use treesls_bench::Sink;

/// Heap pages dirtied per round, all owned by the pinned writer core.
const WORKING_SET: u64 = 64;

/// Machine size: one dirty-owning core out of four.
const CORES: usize = 4;

/// Writes one `u64` per step, round-robin over the working-set pages.
struct DirtyPages;
impl Program for DirtyPages {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let done = ctx.reg(2);
        let page = done % WORKING_SET;
        let word = (done / WORKING_SET) % 64;
        if ctx.write_u64(page * 4096 + word * 8, 0xD00D_0000 + done).is_err() {
            return StepOutcome::Exited;
        }
        ctx.set_reg(2, done + 1);
        StepOutcome::Ready
    }
}

fn config(full_quiesce: bool) -> SystemConfig {
    let mut c = SystemConfig {
        cores: CORES,
        checkpoint_interval: None, // measured checkpoints only
        ..SystemConfig::default()
    };
    c.kernel.nvm_frames = 16_384;
    c.kernel.dram_pages = 256;
    c.kernel.force_full_quiesce = full_quiesce;
    // This bench measures the PR 6 *parked* partial-quiescence protocol
    // (the epoch-concurrent flip parks nobody — `pause_epoch` covers it).
    c.kernel.epoch_concurrent = false;
    c
}

struct ModeResult {
    median_paused: Duration,
    p95_paused: Duration,
    max_paused: Duration,
    median_stopped: usize,
    /// Stop-window distribution, consumed from the metrics registry's
    /// exported pause histogram rather than recomputed here.
    stw: treesls::PauseStats,
}

fn run_mode(full_quiesce: bool, rounds: usize) -> ModeResult {
    let mut sys = System::boot(config(full_quiesce));
    sys.register_program("dirty", Arc::new(DirtyPages));
    let p = sys
        .spawn(
            &ProcessSpec::new("writer").heap(WORKING_SET).thread(ThreadSpec::new("dirty")),
        )
        .expect("spawn writer");
    // Pin the writer: the owner mask then names core 0 every round, and
    // cores 1..3 stay clean.
    sys.kernel().sched.set_affinity(p.threads[0], Some(0));
    sys.start();

    // Warm-up: let the writer touch its whole working set, then settle
    // the fresh tree so measured rounds start from steady state.
    std::thread::sleep(Duration::from_millis(10));
    sys.checkpoint_now().expect("warmup checkpoint");
    sys.checkpoint_now().expect("settle checkpoint");

    let stw = Arc::clone(sys.manager().stw());
    let mut paused: Vec<u64> = Vec::with_capacity(rounds);
    let mut stopped: Vec<usize> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // Let the pinned writer re-dirty the working set.
        std::thread::sleep(Duration::from_millis(2));
        stw.wait_all_resumed();
        stw.take_paused_ns(); // drop park time accumulated between rounds
        sys.checkpoint_now().expect("measured checkpoint");
        stw.wait_all_resumed();
        paused.push(stw.take_paused_ns());
        stopped.push(stw.stopped_cores());
    }
    let stw_stats = sys.metrics_snapshot().pause;
    sys.stop();

    paused.sort_unstable();
    stopped.sort_unstable();
    ModeResult {
        median_paused: Duration::from_nanos(paused[paused.len() / 2]),
        p95_paused: Duration::from_nanos(paused[(paused.len() * 95 / 100).min(paused.len() - 1)]),
        max_paused: Duration::from_nanos(*paused.last().expect("rounds > 0")),
        median_stopped: stopped[stopped.len() / 2],
        stw: stw_stats,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let args: Vec<String> = std::env::args().collect();
    let mut rounds: usize = if opts.full { 100 } else { 40 };
    let mut gate: Option<f64> = None;
    for (i, a) in args.iter().enumerate() {
        match a.as_str() {
            "--rounds" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    rounds = n;
                }
            }
            "--gate" => {
                gate = args.get(i + 1).and_then(|s| s.parse().ok());
            }
            _ => {}
        }
    }

    let mut sink = Sink::new(
        "pause_partial",
        "Partial quiescence: parked-core pause vs the full-stop oracle",
        &opts,
    );
    // Parked-time columns are exact per-round samples; the StwP50<= /
    // StwP99<= stop-window columns are log₂-bucket upper bounds consumed
    // from the registry's exported pause histogram (see OBSERVABILITY.md).
    let mut table = Table::new(&[
        "Mode", "Cores", "DirtyOwners", "Rounds", "StoppedMed", "MedianPaused", "P95", "Max",
        "StwP50<=", "StwP99<=",
    ]);
    let full = run_mode(true, rounds);
    let partial = run_mode(false, rounds);
    for (label, r) in [("full-quiesce", &full), ("partial", &partial)] {
        table.row(vec![
            label.to_string(),
            format!("{CORES}"),
            "1".to_string(),
            format!("{rounds}"),
            format!("{}", r.median_stopped),
            us(r.median_paused),
            us(r.p95_paused),
            us(r.max_paused),
            format!("{:.2}", r.stw.p50_ns as f64 / 1e3),
            format!("{:.2}", r.stw.p99_ns as f64 / 1e3),
        ]);
    }
    sink.table("pause_partial", table);

    let ratio = partial.median_paused.as_secs_f64() / full.median_paused.as_secs_f64().max(1e-9);
    let pass = gate.is_none_or(|g| ratio <= g);
    let mut gate_table = Table::new(&["MedianPausedRatio", "Threshold", "Pass"]);
    gate_table.row(vec![
        format!("{ratio:.3}"),
        gate.map_or("n/a".to_string(), |g| format!("{g:.2}")),
        format!("{pass}"),
    ]);
    sink.table("gate", gate_table);
    sink.note(&format!(
        "({WORKING_SET}-page working set owned by 1 of {CORES} cores: partial \
         quiescence parks only the dirty-owning core, so aggregate parked time \
         drops toward 1/{CORES} of the full stop)"
    ));
    sink.finish();

    if !pass {
        eprintln!(
            "pause-partial gate FAILED: median parked ratio {ratio:.3} > {:.2}",
            gate.expect("pass=false implies gate set")
        );
        std::process::exit(1);
    }
}
