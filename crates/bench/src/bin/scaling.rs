//! Pause-scaling regression bench: O(changes) checkpointing.
//!
//! Sweeps the *total* kernel object count while holding the per-round
//! dirty working set fixed. Under the dirty-queue tree walk the
//! stop-the-world pause must track the dirty set, not the tree size, so
//! the median pause should stay flat across a 10× object-count growth
//! (the O(objects) full walk it replaces grows linearly here).
//!
//! Flags beyond the common set: `--rounds N` (measured checkpoints per
//! size), `--gate R` (exit nonzero if `median(largest)/median(smallest)`
//! exceeds `R`). Pause quantiles are consumed from the metrics
//! registry's exported pause histogram (`MetricsSnapshot::pause`), not
//! recomputed from raw per-round samples — so medians are log₂-bucket
//! upper bounds and the ratio is quantized to powers of two: same
//! bucket = 1.0, one bucket up = 2.0. The CI perf-smoke job passes
//! `--gate 2.0` (flat within one bucket; an O(objects) regression
//! across the 10× sweep shows up as ≥ 8×).

use std::sync::Arc;
use std::time::Duration;

use treesls_bench::harness::BenchOpts;
use treesls_bench::table::{us, Table};
use treesls_bench::Sink;
use treesls_checkpoint::CheckpointManager;
use treesls_kernel::cores::StwController;
use treesls_kernel::types::ObjId;
use treesls_kernel::{Kernel, KernelConfig};

/// Objects mutated per round, at every tree size.
const DIRTY_SET: usize = 64;

/// Total-object sweep: smallest → largest is the 10× growth the gate
/// compares across.
const SIZES: [usize; 4] = [250, 500, 1000, 2500];

struct SizeResult {
    objects: usize,
    median: Duration,
    p95: Duration,
    max: Duration,
    drained_per_round: u64,
    full_walks: u64,
}

fn run_size(objects: usize, rounds: usize) -> SizeResult {
    let kernel = Kernel::boot(KernelConfig {
        nvm_frames: 16_384,
        dram_pages: 256,
        // Measure the dirty walk alone: no periodic full-walk rounds.
        full_walk_interval: 0,
        ..KernelConfig::default()
    });
    let stw = Arc::new(StwController::new());
    let mgr = CheckpointManager::new(Arc::clone(&kernel), stw);
    let g = kernel.create_cap_group("scale").expect("cap group");
    let notifs: Vec<ObjId> =
        (0..objects).map(|_| kernel.create_notification(g).expect("notification")).collect();
    // First checkpoint persists the whole fresh tree; second settles any
    // deferred work so the measured rounds start from a clean queue.
    mgr.checkpoint().expect("initial checkpoint");
    mgr.checkpoint().expect("settle checkpoint");
    let base = kernel.metrics.snapshot();

    for r in 0..rounds {
        // Touch a fixed-size working set, spread deterministically across
        // the tree so shard and slot locality do not favour one size.
        for d in 0..DIRTY_SET {
            let idx = (r.wrapping_mul(17) + d.wrapping_mul(31)) % objects;
            kernel.signal_object(notifs[idx]).expect("signal");
        }
        mgr.checkpoint().expect("measured checkpoint");
    }
    let snap = kernel.metrics.snapshot().since(&base);
    // Quantiles come straight from the registry's exported pause
    // histogram (the same numbers `MetricsSnapshot::to_json()` emits) —
    // the bench no longer keeps its own raw sample vector. The
    // cumulative histogram includes the two warm-up rounds, which can
    // only inflate the tail, never flatten a real regression.
    let p = snap.pause;
    SizeResult {
        objects,
        median: Duration::from_nanos(p.p50_ns),
        p95: Duration::from_nanos(p.p95_ns),
        max: Duration::from_nanos(p.max_ns),
        drained_per_round: snap.tree_dirty_drained / rounds as u64,
        full_walks: snap.tree_full_walks,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let args: Vec<String> = std::env::args().collect();
    let mut rounds: usize = if opts.full { 100 } else { 40 };
    let mut gate: Option<f64> = None;
    for (i, a) in args.iter().enumerate() {
        match a.as_str() {
            "--rounds" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    rounds = n;
                }
            }
            "--gate" => {
                gate = args.get(i + 1).and_then(|s| s.parse().ok());
            }
            _ => {}
        }
    }

    let mut sink = Sink::new(
        "scaling",
        "Pause scaling: total objects sweep at a fixed dirty working set",
        &opts,
    );
    // "≤" columns are log₂-bucket upper bounds (see OBSERVABILITY.md);
    // the max is exact.
    let mut table = Table::new(&[
        "Objects", "Dirty/round", "Rounds", "P50<=", "P95<=", "Max", "Drained/round",
        "FullWalks",
    ]);
    let mut results = Vec::new();
    for &n in &SIZES {
        let r = run_size(n, rounds);
        table.row(vec![
            format!("{}", r.objects),
            format!("{DIRTY_SET}"),
            format!("{rounds}"),
            us(r.median),
            us(r.p95),
            us(r.max),
            format!("{}", r.drained_per_round),
            format!("{}", r.full_walks),
        ]);
        results.push(r);
    }
    sink.table("scaling", table);

    let first = results.first().expect("sizes non-empty");
    let last = results.last().expect("sizes non-empty");
    let ratio = last.median.as_secs_f64() / first.median.as_secs_f64().max(1e-9);
    let growth = last.objects as f64 / first.objects as f64;
    let mut gate_table = Table::new(&["ObjectGrowth", "MedianPauseRatio", "Threshold", "Pass"]);
    let pass = gate.is_none_or(|g| ratio <= g);
    gate_table.row(vec![
        format!("{growth:.1}x"),
        format!("{ratio:.3}"),
        gate.map_or("n/a".to_string(), |g| format!("{g:.2}")),
        format!("{pass}"),
    ]);
    sink.table("gate", gate_table);
    sink.note(&format!(
        "(dirty-queue walk: pause tracks the {DIRTY_SET}-object working set, \
         not the {growth:.0}x total-object growth)"
    ));
    sink.finish();

    if !pass {
        eprintln!(
            "pause-scaling gate FAILED: median ratio {ratio:.3} > {:.2} across {growth:.1}x objects",
            gate.expect("pass=false implies gate set")
        );
        std::process::exit(1);
    }
}
