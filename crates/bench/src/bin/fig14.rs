//! Figure 14: RocksDB under Facebook's Prefix_dist — TreeSLS vs. Aurora.
//!
//! Seven configurations: RocksDB (the LSM stand-in) with no persistence on
//! TreeSLS and Aurora (`-base`), TreeSLS transparent checkpointing at 5 ms
//! and 1 ms, Aurora checkpointing at 5 ms (its floor: persisting takes
//! ~5 ms), Aurora's journaling API per write, and RocksDB's own WAL on
//! Aurora. Reports throughput and P50/P99 write latency.

use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls::{System, SystemConfig};
use treesls_apps::hist::Histogram;
use treesls_apps::lsm::{Lsm, LsmConfig};
use treesls_apps::wire::KvOp;
use treesls_apps::workload::PrefixDist;
use treesls_baselines::{AuroraConfig, AuroraSls};
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::{deploy_lsm, ShardGeometry};
use treesls_bench::table::Table;
use treesls_bench::Sink;
use treesls_nvm::LatencyModel;

const VALUE_LEN: usize = 100;

struct Outcome {
    label: String,
    throughput: f64,
    p50: u64,
    p99: u64,
}

fn run_treesls(opts: &BenchOpts, interval: Option<Duration>, label: &str, ops: u64) -> Outcome {
    let config = SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 4096,
            ..Default::default()
        },
        cores: opts.cores,
        quantum: 32,
        checkpoint_interval: interval,
    };
    let mut sys = System::boot(config);
    let dep = deploy_lsm(&sys, false, VALUE_LEN as u64, false, ShardGeometry::default());
    sys.start();
    let nic = &dep.nic;
    let mut gen = PrefixDist::new(7);
    let mut hist = Histogram::new();
    let mut done = 0u64;
    let t0 = Instant::now();
    for _ in 0..ops {
        let (key, is_get) = gen.next_op();
        let mut kb = [0u8; 16];
        kb[..8].copy_from_slice(&key.to_le_bytes());
        let op = if is_get {
            KvOp::Get { key: kb }
        } else {
            KvOp::Set { key: kb, value: vec![9u8; VALUE_LEN] }
        };
        let ot0 = Instant::now();
        if nic
            .call(key, &op.encode(), Duration::from_secs(10))
            .ok()
            .and_then(|o| o.reply())
            .is_some()
        {
            done += 1;
            if !is_get {
                hist.record(ot0.elapsed().as_nanos() as u64);
            }
        }
    }
    let throughput = done as f64 / t0.elapsed().as_secs_f64();
    sys.stop();
    Outcome { label: label.into(), throughput, p50: hist.p50(), p99: hist.p99() }
}

#[derive(Clone, Copy, PartialEq)]
enum AuroraMode {
    Base,
    Ckpt5ms,
    Api,
    Wal,
}

fn run_aurora(mode: AuroraMode, label: &str, ops: u64) -> Outcome {
    let cfg = AuroraConfig { mem_len: 96 << 20, ..AuroraConfig::default() };
    let aurora = AuroraSls::new(cfg, Arc::new(LatencyModel::optane()));
    let lsm_cfg = LsmConfig {
        memtable_base: 0,
        memtable_cap: 128,
        storage_base: 8 << 20,
        storage_len: 80 << 20,
        wal_base: (mode == AuroraMode::Wal).then_some(90 << 20),
        wal_len: 4 << 20,
        val_cap: VALUE_LEN as u64,
    };
    let tree = Lsm::format(&*aurora, lsm_cfg).expect("format");
    if mode == AuroraMode::Ckpt5ms {
        aurora.start_checkpointing();
    }
    let mut gen = PrefixDist::new(7);
    let mut hist = Histogram::new();
    let t0 = Instant::now();
    for _ in 0..ops {
        let (key, is_get) = gen.next_op();
        let ot0 = Instant::now();
        if is_get {
            let _ = tree.get(&*aurora, key);
        } else {
            if mode == AuroraMode::Api {
                let mut rec = key.to_le_bytes().to_vec();
                rec.extend_from_slice(&[9u8; VALUE_LEN]);
                aurora.journal(&rec);
            }
            tree.put(&*aurora, key, &[9u8; VALUE_LEN]).expect("put");
            hist.record(ot0.elapsed().as_nanos() as u64);
        }
    }
    let throughput = ops as f64 / t0.elapsed().as_secs_f64();
    if mode == AuroraMode::Ckpt5ms {
        aurora.stop_checkpointing();
    }
    Outcome { label: label.into(), throughput, p50: hist.p50(), p99: hist.p99() }
}

fn main() {
    let opts = BenchOpts::from_args();
    let ops = if opts.full { 500_000 } else { 20_000 };
    let mut sink = Sink::new("fig14", "Figure 14: RocksDB with Facebook Prefix_dist", &opts);
    let results = vec![
        run_treesls(&opts, None, "TreeSLS-base", ops),
        run_treesls(&opts, Some(Duration::from_millis(5)), "TreeSLS-5ms", ops),
        run_treesls(&opts, Some(Duration::from_millis(1)), "TreeSLS-1ms", ops),
        run_aurora(AuroraMode::Base, "Aurora-base", ops * 4),
        run_aurora(AuroraMode::Ckpt5ms, "Aurora-5ms", ops * 4),
        run_aurora(AuroraMode::Api, "Aurora-API", ops * 4),
        run_aurora(AuroraMode::Wal, "Aurora-base-WAL", ops * 4),
    ];
    let mut table = Table::new(&[
        "Config", "Throughput(Kops/s)", "P50 write(µs)", "P99 write(µs)",
    ]);
    for r in &results {
        table.row(vec![
            r.label.clone(),
            format!("{:.1}", r.throughput / 1e3),
            format!("{:.2}", r.p50 as f64 / 1e3),
            format!("{:.2}", r.p99 as f64 / 1e3),
        ]);
    }
    sink.table("throughput_latency", table);
    sink.note("(Aurora runs the same LSM code as a host process — compare within");
    sink.note(" column families: ckpt overhead vs base, API/WAL vs transparent.)");
    sink.finish();
}
