//! `repl_load`: checkpoint-shipping replication under load, plus the
//! deterministic cluster drill.
//!
//! Two measured configurations run the same closed-loop KV workload
//! behind the external-synchrony NIC:
//!
//! * **single-box** — no cluster attached (`quorum = 1` semantics, the
//!   compatibility oracle);
//! * **cluster** — two replicas polling on their own threads with
//!   `quorum = 2`: every response is held until its round is durable on
//!   the primary plus one replica.
//!
//! Because the shipper runs in the post-commit callback chain, quorum
//! waiting must not inflate the stop-the-world pause itself — the `--gate`
//! run enforces `cluster median pause <= 2x single-box median pause`,
//! along with zero §5 violations anywhere.
//!
//! The drill phase then replays the EXPERIMENTS.md cluster drill end to
//! end: (a) a replica is killed mid-stream and resyncs via snapshot,
//! (b) a partition during commit forces a gap-detect resync, (c) the
//! primary is lost and a replica is promoted — and every externally
//! acknowledged SET must be readable on the promoted machine.
//!
//! ```sh
//! cargo run --release --bin repl_load -- --json
//! cargo run --release --bin repl_load -- --duration-ms 250 --gate  # CI smoke
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls::net::{NicConfig, VirtualNic};
use treesls::{PauseStats, Program, System, SystemConfig};
use treesls_apps::client::{run_parallel_clients_checked, RunStats};
use treesls_apps::server::xorshift64;
use treesls_apps::wire::{make_key, numeric_key, KvOp, KvResp};
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::{deploy_kv_cfg, ShardGeometry};
use treesls_bench::table::Table;
use treesls_bench::Sink;
use treesls_repl::{Cluster, ClusterConfig};

/// Small shard: the whole table lives in a handful of pages, so every
/// PMO manifest fits a replication ring slot with room to spare.
const GEOM: ShardGeometry = ShardGeometry { nslots: 8, slot_size: 84, data_stride: 16 * 4096 };
const NBUCKETS: u64 = 16;
const VALUE_CAP: u64 = 40;
const KEY_SPACE: u64 = 12;

struct ReplOpts {
    /// Wall-clock load duration per configuration.
    duration_ms: u64,
    /// Client threads.
    clients: usize,
    /// Checkpoint interval in microseconds.
    interval_us: u64,
    /// Enforce the gates (exit 1 on violation).
    gate: bool,
}

fn parse_repl_opts() -> ReplOpts {
    let mut o = ReplOpts { duration_ms: 600, clients: 4, interval_us: 1000, gate: false };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--duration-ms" => {
                if let Some(v) = next(i) {
                    o.duration_ms = v.parse().expect("--duration-ms N");
                }
            }
            "--clients" => {
                if let Some(v) = next(i) {
                    o.clients = v.parse().expect("--clients N");
                }
            }
            "--interval-us" => {
                if let Some(v) = next(i) {
                    o.interval_us = v.parse().expect("--interval-us N");
                }
            }
            "--gate" => o.gate = true,
            _ => {}
        }
        i += 1;
    }
    o
}

fn sys_config(opts: &BenchOpts, interval_us: u64) -> SystemConfig {
    SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 8192,
            dram_pages: 256,
            ..Default::default()
        },
        cores: opts.cores,
        quantum: 32,
        checkpoint_interval: Some(Duration::from_micros(interval_us)),
    }
}

fn nic_cfg() -> NicConfig {
    NicConfig {
        queues: 1,
        nslots: GEOM.nslots,
        slot_size: GEOM.slot_size,
        credits: GEOM.nslots,
        ext_sync: true,
        fault: Default::default(),
        call_timeout: Duration::from_secs(5),
    }
}

/// Closed-loop SET load over a small key space until the deadline.
fn drive(nic: &VirtualNic, clients: usize, duration: Duration) -> RunStats {
    let deadline = Instant::now() + duration;
    run_parallel_clients_checked(nic, clients, |t| {
        let mut rng = 0x5EED_u64.wrapping_add(t as u64 * 6_364_136_223_846_793_005);
        Box::new(move || {
            if Instant::now() >= deadline {
                return None;
            }
            rng = xorshift64(rng);
            let id = (rng >> 8) % KEY_SPACE;
            Some((id, KvOp::Set { key: numeric_key(id), value: vec![7u8; 24] }))
        })
    })
}

/// Calls until a decoded OK reply lands, riding out sheds and timeouts.
fn call_retry(nic: &VirtualNic, flow: u64, op: &KvOp, attempts: u32) -> Option<KvResp> {
    for _ in 0..attempts {
        match nic.call(flow, &op.encode(), Duration::from_secs(5)) {
            Ok(outcome) => {
                if let Some(r) = outcome.reply() {
                    return KvResp::decode(&r);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    None
}

struct LoadResult {
    stats: RunStats,
    pause: PauseStats,
    /// `(rounds, records, pages, bytes)` shipped — zero for single-box.
    shipped: (u64, u64, u64, u64),
}

/// One load configuration: boot, deploy, optionally cluster, load.
fn run_load(opts: &BenchOpts, ro: &ReplOpts, with_cluster: bool) -> LoadResult {
    let mut sys = System::boot(sys_config(opts, ro.interval_us));
    let dep = deploy_kv_cfg(&sys, NBUCKETS, VALUE_CAP, nic_cfg(), GEOM);
    let cluster = with_cluster.then(|| {
        let mut ccfg = ClusterConfig::default();
        ccfg.ship.quorum = 2;
        let cluster = Cluster::deploy(&sys, &ccfg);
        cluster.attach_gate(&dep.nic);
        cluster.start();
        cluster
    });
    sys.start();
    let stats = drive(&dep.nic, ro.clients, Duration::from_millis(ro.duration_ms));
    let pause = sys.kernel().metrics.pause_histogram().stats();
    let snap = sys.kernel().metrics.snapshot();
    let shipped = if with_cluster {
        (
            snap.repl_rounds_shipped,
            snap.repl_records_shipped,
            snap.repl_pages_shipped,
            snap.repl_bytes_shipped,
        )
    } else {
        (0, 0, 0, 0)
    };
    sys.stop();
    if let Some(c) = cluster {
        c.stop();
    }
    LoadResult { stats, pause, shipped }
}

struct DrillResult {
    acked: u64,
    resyncs: u64,
    quarantines: u64,
    violations: u64,
    promoted_round: u64,
}

/// The three-phase cluster drill with the §5 oracle across failover.
fn run_drill(opts: &BenchOpts, ro: &ReplOpts) -> DrillResult {
    let mut sys = System::boot(sys_config(opts, ro.interval_us));
    let dep = deploy_kv_cfg(&sys, NBUCKETS, VALUE_CAP, nic_cfg(), GEOM);
    let mut ccfg = ClusterConfig::default();
    ccfg.ship.quorum = 2;
    let cluster = Cluster::deploy(&sys, &ccfg);
    cluster.attach_gate(&dep.nic);
    cluster.start();
    sys.start();

    let mut acked: Vec<(u64, [u8; 16], Vec<u8>)> = Vec::new();
    let commit = |range: std::ops::Range<u64>, acked: &mut Vec<(u64, [u8; 16], Vec<u8>)>| {
        for i in range {
            let key = make_key(format!("rk-{i}").as_bytes());
            let value = format!("rv-{i}").into_bytes();
            let op = KvOp::Set { key, value: value.clone() };
            if matches!(call_retry(&dep.nic, i, &op, 32), Some(KvResp::Ok(_))) {
                acked.push((i, key, value));
            }
        }
    };

    // (a) Replica 1 dies mid-stream, reboots, and resyncs via snapshot.
    commit(0..2, &mut acked);
    cluster.kill(1);
    commit(2..4, &mut acked);
    cluster.revive(1);

    // (b) Partition during commit: replica 1 gap-detects and resyncs.
    commit(4..6, &mut acked);
    cluster.set_partitioned(1, true);
    commit(6..8, &mut acked);
    cluster.set_partitioned(1, false);
    commit(8..10, &mut acked);

    // Quiesce: stop admitting, land a final round, and wait for the
    // failover target to reach the head of the stream.
    sys.stop();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        sys.checkpoint_now().expect("final checkpoint");
        let head = sys.kernel().pers.global_version();
        std::thread::sleep(Duration::from_millis(5));
        if cluster.replicas[0].applied_round() == head
            && !cluster.replicas[0].is_awaiting_snapshot()
        {
            break;
        }
        assert!(Instant::now() < deadline, "replica 0 never reached the stream head");
    }
    let resyncs = sys.kernel().metrics.snapshot().repl_resyncs;
    let quarantines = cluster.replicas.iter().map(|r| r.metrics.snapshot().repl_quarantined).sum();

    // (c) The primary is lost; promote replica 0.
    let programs: Vec<(String, Arc<dyn Program>)> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect();
    let layout = dep.nic.layout();
    dep.nic.close();
    cluster.stop();
    drop(dep);
    drop(sys);

    let (mut sys2, report) = cluster
        .promote(0, sys_config(opts, ro.interval_us), |reg| {
            for (name, prog) in &programs {
                reg.register(name, Arc::clone(prog));
            }
        })
        .expect("promotion");
    sys2.manager().verify_checkpoint().expect("promoted tree verifies");

    let (vs2, servers, bells) = restored_server(&sys2);
    assert!(!servers.is_empty(), "server threads restored");
    let nic2 = VirtualNic::attach(Arc::clone(sys2.kernel()), vs2, layout, &nic_cfg(), 10_000_000);
    for (q, bell) in bells.into_iter().enumerate() {
        nic2.set_doorbell(q, bell);
    }
    sys2.manager().register_callback(Arc::clone(&nic2) as _);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.start();

    // §5 across the failover: every acknowledged SET is readable.
    let mut violations = 0;
    for (flow, key, value) in &acked {
        match call_retry(&nic2, *flow, &KvOp::Get { key: *key }, 32) {
            Some(KvResp::Ok(Some(v))) if &v == value => {}
            other => {
                violations += 1;
                eprintln!("acked SET {key:?} lost across failover: {other:?}");
            }
        }
    }
    sys2.stop();
    DrillResult {
        acked: acked.len() as u64,
        resyncs,
        quarantines,
        violations,
        promoted_round: report.version,
    }
}

/// Resolves the restored "ring-kv" process: vmspace, server threads, and
/// per-queue doorbell notifications in capability-slot order.
fn restored_server(sys: &System) -> (treesls::ObjId, Vec<treesls::ObjId>, Vec<treesls::ObjId>) {
    use treesls_kernel::object::ObjectBody;
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == treesls::ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == "ring-kv")
        })
        .expect("ring-kv cap group restored");
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let mut vmspace = None;
    let mut servers = Vec::new();
    let mut bells = Vec::new();
    for (_, c) in g.iter() {
        match kernel.object(c.obj).map(|o| o.otype) {
            Ok(treesls::ObjType::VmSpace) => vmspace = vmspace.or(Some(c.obj)),
            Ok(treesls::ObjType::Thread) => servers.push(c.obj),
            Ok(treesls::ObjType::Notification) => bells.push(c.obj),
            _ => {}
        }
    }
    (vmspace.expect("server vmspace restored"), servers, bells)
}

fn main() {
    let opts = BenchOpts::from_args();
    let ro = parse_repl_opts();
    let mut sink = Sink::new(
        "repl",
        &format!(
            "checkpoint-shipping replication: {} clients, {} µs checkpoints, quorum 2",
            ro.clients, ro.interval_us
        ),
        &opts,
    );

    let single = run_load(&opts, &ro, false);
    let cluster = run_load(&opts, &ro, true);
    let mut load = Table::new(&[
        "Config",
        "Ops",
        "Throughput(ops/s)",
        "P50(µs)",
        "P99(µs)",
        "SyncViolations",
        "PauseP50(µs)",
        "ShippedRounds",
        "ShippedPages",
        "ShippedKiB",
    ]);
    for (name, r) in [("single-box", &single), ("cluster-q2", &cluster)] {
        load.row(vec![
            name.into(),
            r.stats.ops.to_string(),
            format!("{:.0}", r.stats.throughput()),
            format!("{:.1}", r.stats.latency.p50() as f64 / 1e3),
            format!("{:.1}", r.stats.latency.p99() as f64 / 1e3),
            r.stats.sync_violations.to_string(),
            format!("{:.1}", r.pause.p50_ns as f64 / 1e3),
            r.shipped.0.to_string(),
            r.shipped.2.to_string(),
            format!("{:.1}", r.shipped.3 as f64 / 1024.0),
        ]);
    }
    sink.table("load", load);

    let drill = run_drill(&opts, &ro);
    let mut dt = Table::new(&[
        "AckedSets",
        "Resyncs",
        "Quarantines",
        "PromotedRound",
        "FailoverViolations",
    ]);
    dt.row(vec![
        drill.acked.to_string(),
        drill.resyncs.to_string(),
        drill.quarantines.to_string(),
        drill.promoted_round.to_string(),
        drill.violations.to_string(),
    ]);
    sink.table("drill", dt);

    let total_violations =
        single.stats.sync_violations + cluster.stats.sync_violations + drill.violations;
    let ratio = cluster.pause.p50_ns as f64 / single.pause.p50_ns.max(1) as f64;
    sink.note(&format!(
        "§5 oracle: {total_violations} violations (load single/cluster + failover drill)"
    ));
    sink.note(&format!(
        "quorum overhead: cluster pause p50 {:.1} µs vs single-box {:.1} µs ({ratio:.2}x)",
        cluster.pause.p50_ns as f64 / 1e3,
        single.pause.p50_ns as f64 / 1e3,
    ));

    let mut failed = Vec::new();
    if total_violations > 0 {
        failed.push(format!("{total_violations} external-synchrony violations"));
    }
    if drill.acked == 0 {
        failed.push("drill acknowledged no writes".to_string());
    }
    if drill.resyncs == 0 {
        failed.push("drill never exercised a resync".to_string());
    }
    if ro.gate {
        // The shipper runs post-commit, off the stop-the-world path:
        // quorum waiting must not show up in the pause itself.
        sink.note(&format!(
            "gate: pause ratio {ratio:.2}x vs budget 2.00x -> {}",
            if ratio <= 2.0 { "PASS" } else { "FAIL" }
        ));
        if ratio > 2.0 {
            failed.push(format!("cluster pause p50 {ratio:.2}x single-box (budget 2x)"));
        }
        if cluster.stats.ops == 0 {
            failed.push("gated cluster run completed no operations".to_string());
        }
    }
    sink.finish();
    if !failed.is_empty() {
        eprintln!("repl_load FAILED: {}", failed.join("; "));
        std::process::exit(1);
    }
}
