//! Validates every `results/BENCH_*.json` document against the sink
//! schema (see OBSERVABILITY.md). Exits non-zero on any violation or if
//! no documents are found — CI's bench-smoke job runs this after
//! regenerating the reduced-scale results.

use std::fs;
use std::process::ExitCode;

use treesls::Json;
use treesls_bench::sink;

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".to_string());
    let mut checked = 0u32;
    let mut failed = 0u32;
    let entries = match fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_validate: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in paths {
        checked += 1;
        let verdict = fs::read_to_string(&path)
            .map_err(|e| format!("read error: {e}"))
            .and_then(|body| Json::parse(&body).map_err(|e| format!("parse error: {e}")))
            .and_then(|doc| sink::validate(&doc).map(|()| doc));
        match verdict {
            Ok(doc) => {
                let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
                println!("ok   {} ({name})", path.display());
            }
            Err(e) => {
                failed += 1;
                eprintln!("FAIL {}: {e}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!("bench_validate: no BENCH_*.json documents in {dir}");
        return ExitCode::FAILURE;
    }
    println!("{checked} document(s) checked, {failed} failed");
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
