//! `net_scale`: open-loop latency-under-load sweep of the sharded data
//! plane (the 10×-throughput configuration).
//!
//! Where `net_load` drives a *closed-loop* fleet (each client waits for
//! its reply, so a slow server quietly throttles the offered load), this
//! bench drives the [`treesls_apps::openloop`] generator: a fixed,
//! seeded arrival schedule per generator thread, latency measured from
//! the *scheduled* arrival (coordinated-omission-safe), sheds and
//! timeouts reported instead of silently absorbed. Sweeping the offered
//! rate at each queue count yields the latency-under-load curve: achieved
//! throughput climbs with offered load until the service saturates, and
//! the p99 shows exactly when queueing delay exceeds the checkpoint-pause
//! budget.
//!
//! The server side runs the per-core shard configuration: one `Service`
//! shard per queue pinned to simulated core `q % cores`, per-queue
//! eternal ring PMOs, round-batched TX publishes, zero-copy decode/encode
//! (`Scratch` + `KvOpRef`). Keys pick their flow with
//! [`treesls::net::key_flow`], so `shard_for` and RSS agree and a key
//! never crosses a shard lock.
//!
//! ```sh
//! cargo run --release --bin net_scale -- --json
//! cargo run --release --bin net_scale -- --queues 8 --rates 120000 \
//!     --duration-ms 500 --gate       # CI configuration
//! ```
//!
//! `--gate` enforces the scale SLO: at the largest queue count the best
//! achieved throughput must reach `--gate-rate` (default 100 000 ops/s)
//! with zero §5 external-synchrony violations across every run.

use std::time::Duration;

use treesls::net::{key_flow, NicConfig};
use treesls::{System, SystemConfig};
use treesls_apps::openloop::{run_open_loop, OpenLoopConfig, OpenLoopStats};
use treesls_apps::wire::{numeric_key, KvOp};
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::{deploy_kv_pinned, ShardGeometry};
use treesls_bench::table::Table;
use treesls_bench::Sink;
use treesls::PauseStats;

const GEOM: ShardGeometry = ShardGeometry { nslots: 256, slot_size: 2048, data_stride: 8 << 20 };
const NBUCKETS: u64 = 4096;
const KEY_SPACE: u64 = 10_000;

struct ScaleOpts {
    /// Queue counts to sweep (= service shards = pinned cores).
    queues: Vec<usize>,
    /// Offered rates to sweep at each queue count (ops/s).
    rates: Vec<u64>,
    /// Scheduling window per configuration.
    duration_ms: u64,
    /// Checkpoint interval in microseconds.
    interval_us: u64,
    /// SET value size in bytes.
    value_len: usize,
    /// SET fraction in permille (rest are GETs).
    set_permille: u64,
    /// Open-loop generator threads.
    generators: usize,
    /// Per-request abandon age in milliseconds.
    timeout_ms: u64,
    /// Server round size (requests per batched TX publish).
    batch: usize,
    /// Enforce the scale SLO.
    gate: bool,
    /// Throughput the gate demands at the largest queue count (ops/s).
    gate_rate: u64,
    /// Fixed p99 budget for the throughput-at-fixed-p99 headline (µs).
    p99_budget_us: u64,
}

fn parse_scale_opts() -> ScaleOpts {
    let mut o = ScaleOpts {
        queues: vec![8, 16],
        rates: vec![25_000, 50_000, 100_000, 150_000],
        duration_ms: 1000,
        interval_us: 5000,
        value_len: 64,
        set_permille: 50,
        generators: 2,
        timeout_ms: 1000,
        batch: 32,
        gate: false,
        gate_rate: 100_000,
        p99_budget_us: 50_000,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| -> Option<&String> { args.get(i + 1) };
        let list = |v: &str| -> Vec<u64> {
            v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&x| x > 0).collect()
        };
        match args[i].as_str() {
            "--queues" => {
                if let Some(v) = next(i) {
                    o.queues = list(v).into_iter().map(|q| q as usize).collect();
                    assert!(!o.queues.is_empty(), "--queues needs at least one count");
                }
            }
            "--rates" => {
                if let Some(v) = next(i) {
                    o.rates = list(v);
                    assert!(!o.rates.is_empty(), "--rates needs at least one rate");
                }
            }
            "--duration-ms" => {
                if let Some(v) = next(i) {
                    o.duration_ms = v.parse().expect("--duration-ms N");
                }
            }
            "--interval-us" => {
                if let Some(v) = next(i) {
                    o.interval_us = v.parse().expect("--interval-us N");
                }
            }
            "--value-len" => {
                if let Some(v) = next(i) {
                    o.value_len = v.parse().expect("--value-len N");
                }
            }
            "--set-permille" => {
                if let Some(v) = next(i) {
                    o.set_permille = v.parse().expect("--set-permille N");
                }
            }
            "--generators" => {
                if let Some(v) = next(i) {
                    o.generators = v.parse().expect("--generators N");
                }
            }
            "--timeout-ms" => {
                if let Some(v) = next(i) {
                    o.timeout_ms = v.parse().expect("--timeout-ms N");
                }
            }
            "--batch" => {
                if let Some(v) = next(i) {
                    o.batch = v.parse().expect("--batch N");
                }
            }
            "--gate" => o.gate = true,
            "--gate-rate" => {
                if let Some(v) = next(i) {
                    o.gate_rate = v.parse().expect("--gate-rate N");
                }
            }
            "--p99-budget-us" => {
                if let Some(v) = next(i) {
                    o.p99_budget_us = v.parse().expect("--p99-budget-us N");
                }
            }
            _ => {}
        }
        i += 1;
    }
    o
}

fn sys_config(opts: &BenchOpts, scale: &ScaleOpts) -> SystemConfig {
    SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 8192,
            ..Default::default()
        },
        // Shards are pinned `q % cores`: more queues than cores folds
        // multiple shards onto one core (still RSS-aligned, still one
        // owner core per shard). `--cores` sets the core count; the
        // default 2 suits single-CPU hosts, where fewer simulated-core
        // threads mean less oversubscription and higher throughput.
        cores: opts.cores.max(1),
        quantum: 32,
        checkpoint_interval: Some(Duration::from_micros(scale.interval_us)),
    }
}

/// SplitMix64 — a pure per-index hash so `make_op(g, i)` is a
/// deterministic function of its arguments (replayable runs).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Batch metrics attributable to one run (deltas of the global counters).
struct BatchDelta {
    batches: u64,
    responses: u64,
}

/// One (queues, rate) cell: boot, deploy pinned shards, open-loop load.
fn run_cell(
    opts: &BenchOpts,
    scale: &ScaleOpts,
    queues: usize,
    rate: u64,
) -> (OpenLoopStats, PauseStats, BatchDelta) {
    let mut sys = System::boot(sys_config(opts, scale));
    let cfg = NicConfig {
        queues,
        nslots: GEOM.nslots,
        slot_size: GEOM.slot_size,
        // Deep admission window: the ring itself is the backpressure
        // boundary, admission only sheds what the ring would reject.
        credits: GEOM.nslots,
        ext_sync: true,
        fault: Default::default(),
        call_timeout: Duration::from_secs(5),
    };
    let dep = deploy_kv_pinned(
        &sys,
        NBUCKETS,
        scale.value_len.max(128) as u64,
        cfg,
        GEOM,
        Some(opts.cores.max(1) as u32),
        scale.batch,
    );
    sys.start();

    let before = sys.kernel().metrics.snapshot();
    let value_len = scale.value_len;
    let set_permille = scale.set_permille;
    let olcfg = OpenLoopConfig {
        rate,
        duration: Duration::from_millis(scale.duration_ms),
        seed: 0x5EED_0000 + rate,
        generators: scale.generators,
        op_timeout: Duration::from_millis(scale.timeout_ms),
    };
    let stats = run_open_loop(&*dep.nic, &olcfg, |g, i| {
        let h = mix((g as u64) << 32 | i);
        let id = h % KEY_SPACE;
        let key = numeric_key(id);
        // The flow id is derived from the key bytes, so RSS and
        // `shard_for` agree: this key's requests always land on the
        // shard that owns it.
        let flow = key_flow(&key);
        let op = if (h >> 32) % 1000 < set_permille {
            KvOp::Set { key, value: vec![5u8; value_len] }
        } else {
            KvOp::Get { key }
        };
        (flow, op.encode())
    });
    let after = sys.kernel().metrics.snapshot();
    let pause = sys.kernel().metrics.pause_histogram().stats();
    sys.stop();
    let delta = BatchDelta {
        batches: after.net_tx_batches - before.net_tx_batches,
        responses: after.net_tx_batched_responses - before.net_tx_batched_responses,
    };
    (stats, pause, delta)
}

fn main() {
    let opts = BenchOpts::from_args();
    let scale = parse_scale_opts();
    let mut sink = Sink::new(
        "net_scale",
        &format!(
            "open-loop latency under load: {} generators, {} µs checkpoints, {}‰ SETs",
            scale.generators, scale.interval_us, scale.set_permille
        ),
        &opts,
    );

    let mut table = Table::new(&[
        "Queues",
        "Offered(ops/s)",
        "Achieved(ops/s)",
        "P50(µs)",
        "P99(µs)",
        "Sheds",
        "Timeouts",
        "LateSends",
        "SyncViolations",
        "TxBatchMean",
        "PauseP50(µs)",
    ]);
    let window = Duration::from_millis(scale.duration_ms);
    let mut runs: Vec<(usize, u64, OpenLoopStats, PauseStats)> = Vec::new();
    for &q in &scale.queues {
        for &rate in &scale.rates {
            let (stats, pause, batch) = run_cell(&opts, &scale, q, rate);
            let achieved = stats.run.ops as f64 / window.as_secs_f64();
            table.row(vec![
                q.to_string(),
                format!("{:.0}", stats.offered_rate(window)),
                format!("{achieved:.0}"),
                format!("{:.1}", stats.run.latency.p50() as f64 / 1e3),
                format!("{:.1}", stats.run.latency.p99() as f64 / 1e3),
                stats.run.sheds.to_string(),
                stats.run.timeouts.to_string(),
                stats.late_sends.to_string(),
                stats.run.sync_violations.to_string(),
                if batch.batches > 0 {
                    format!("{:.1}", batch.responses as f64 / batch.batches as f64)
                } else {
                    "-".into()
                },
                format!("{:.1}", pause.p50_ns as f64 / 1e3),
            ]);
            runs.push((q, rate, stats, pause));
        }
    }
    sink.table("latency_under_load", table);

    // The curve's headline: per queue count, the highest offered rate
    // whose p99 (measured from the scheduled arrival, so queueing delay
    // counts) stays within the fixed budget — "throughput at fixed p99".
    let budget_ns = scale.p99_budget_us * 1000;
    for &q in &scale.queues {
        let within: Vec<&(usize, u64, OpenLoopStats, PauseStats)> = runs
            .iter()
            .filter(|(rq, _, s, _)| {
                *rq == q && s.run.ops > 0 && s.run.latency.p99() <= budget_ns
            })
            .collect();
        match within.iter().max_by_key(|(_, rate, ..)| *rate) {
            Some((_, rate, s, _)) => sink.note(&format!(
                "{q} queues: throughput at p99 <= {} ms: {:.0} ops/s (offered {rate})",
                scale.p99_budget_us / 1000,
                s.run.ops as f64 / window.as_secs_f64()
            )),
            None => sink.note(&format!(
                "{q} queues: no swept rate kept p99 within {} ms",
                scale.p99_budget_us / 1000
            )),
        }
    }

    let violations: u64 = runs.iter().map(|(_, _, s, _)| s.run.sync_violations).sum();
    sink.note(&format!(
        "external synchrony oracle: {violations} violations across {} open-loop runs",
        runs.len()
    ));

    let mut failed = Vec::new();
    if violations > 0 {
        failed.push(format!("{violations} external-synchrony violations"));
    }
    if scale.gate {
        let top_q = *scale.queues.iter().max().expect("at least one queue count");
        let best = runs
            .iter()
            .filter(|(q, ..)| *q == top_q)
            .map(|(_, _, s, _)| s.run.ops as f64 / window.as_secs_f64())
            .fold(0.0f64, f64::max);
        sink.note(&format!(
            "gate ({top_q} queues): best achieved {best:.0} ops/s vs required {} -> {}",
            scale.gate_rate,
            if best >= scale.gate_rate as f64 { "PASS" } else { "FAIL" }
        ));
        if best < scale.gate_rate as f64 {
            failed.push(format!(
                "best achieved {best:.0} ops/s at {top_q} queues below the {} ops/s gate",
                scale.gate_rate
            ));
        }
    }
    sink.finish();
    if !failed.is_empty() {
        eprintln!("net_scale FAILED: {}", failed.join("; "));
        std::process::exit(1);
    }
}
