//! Figure 9(b): breakdown of capability-tree checkpoint time by object
//! type.
//!
//! "Most objects can be quickly copied during the STW checkpointing as
//! their sizes are small. Checkpointing Cap Group and Thread is costly for
//! workloads with a large number of objects and threads. VM Space's
//! checkpointing also contributes ... as it involves marking all
//! newly-changed pages as read-only."

use std::time::Duration;

use treesls::ObjType;
use treesls_bench::harness::{build, BenchOpts};
use treesls_bench::table::{us, Table};
use treesls_bench::{Sink, WorkloadKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut sink = Sink::new(
        "fig9b",
        "Figure 9b: capability-tree checkpoint time by object type (µs/round)",
        &opts,
    );
    let mut table = Table::new(&[
        "Workload", "CapGroup", "Thread", "IPC", "Noti", "PMO", "VMSpace", "Total",
    ]);
    for kind in WorkloadKind::TABLE2 {
        let mut bench = build(kind, &opts);
        bench.run(Duration::from_millis(if opts.full { 3000 } else { 1000 }));
        let breakdowns = bench.sys.manager().breakdowns.lock().clone();
        let warm: Vec<_> = breakdowns.iter().skip(4).collect();
        if warm.is_empty() {
            continue;
        }
        let n = warm.len() as u32;
        let mean_type = |t: ObjType| {
            warm.iter()
                .map(|b| b.per_type.get(&t).copied().unwrap_or_default())
                .sum::<Duration>()
                / n
        };
        let cells: Vec<Duration> = [
            ObjType::CapGroup,
            ObjType::Thread,
            ObjType::IpcConnection,
            ObjType::Notification,
            ObjType::Pmo,
            ObjType::VmSpace,
        ]
        .into_iter()
        .map(mean_type)
        .collect();
        let total: Duration = cells.iter().sum();
        let mut row = vec![kind.label().to_string()];
        row.extend(cells.iter().map(|d| us(*d)));
        row.push(us(total));
        table.row(row);
    }
    sink.table("per_type", table);
    sink.finish();
}
