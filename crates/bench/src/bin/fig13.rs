//! Figure 13: YCSB on Redis — TreeSLS transparent persistence vs. the
//! Linux WAL.
//!
//! Four configurations: Redis with no persistence on TreeSLS
//! (TreeSLS-base) and Linux (Linux-base), Redis transparently persisted by
//! 1 ms checkpointing (TreeSLS-1ms), and Redis persisted by a write-ahead
//! log on Ext4-DAX (Linux-WAL). The paper's result: TreeSLS-1ms loses
//! 18–27 % on write-heavy mixes where Linux-WAL loses 64–78 %, making
//! TreeSLS ~2× Linux-WAL; on read-heavy mixes the WAL is cheaper than
//! checkpointing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls::{System, SystemConfig};
use treesls_apps::hashkv::HashKv;
use treesls_apps::wire::KvOp;
use treesls_apps::workload::{YcsbGen, YcsbMix};
use treesls_baselines::LinuxHost;
use treesls_bench::harness::BenchOpts;
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};
use treesls_bench::table::Table;
use treesls_bench::Sink;
use treesls_nvm::LatencyModel;

const VALUE_LEN: usize = 100;

fn run_treesls(opts: &BenchOpts, interval: Option<Duration>, mix: YcsbMix, ops: u64) -> f64 {
    let config = SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 4096,
            latency: if opts.optane {
                treesls::LatencyProfile::Optane
            } else {
                treesls::LatencyProfile::Uniform
            },
            ..Default::default()
        },
        cores: opts.cores,
        quantum: 32,
        checkpoint_interval: interval,
    };
    let mut sys = System::boot(config);
    let dep = deploy_kv(&sys, 1, 16_384, VALUE_LEN as u64, false, ShardGeometry::default());
    sys.start();
    let nic = &dep.nic;
    let loaded = if opts.full { 10_000 } else { 2_000 };
    let mut gen = YcsbGen::new(mix, loaded, VALUE_LEN, 42);
    // Load phase (untimed).
    for (i, op) in gen.load_ops().into_iter().enumerate() {
        let _ = nic.call(i as u64, &op.encode(), Duration::from_secs(5));
    }
    // Run phase.
    let t0 = Instant::now();
    let mut done = 0u64;
    for i in 0..ops {
        let op = gen.next_op();
        if nic
            .call(i, &op.encode(), Duration::from_secs(5))
            .ok()
            .and_then(|o| o.reply())
            .is_some()
        {
            done += 1;
        }
    }
    let thr = done as f64 / t0.elapsed().as_secs_f64();
    sys.stop();
    thr
}

fn run_linux(opts: &BenchOpts, wal: bool, mix: YcsbMix, ops: u64) -> f64 {
    let loaded = if opts.full { 10_000 } else { 2_000 };
    let latency = Arc::new(if opts.optane {
        LatencyModel::optane()
    } else {
        // Even the no-injection runs charge the WAL fsync, else the WAL
        // would be free; the paper's WAL cost is the synchronous write.
        let m = LatencyModel::optane();
        m.set_enabled(wal);
        m
    });
    let host = LinuxHost::new(64 << 20, wal, latency);
    let table = HashKv::format(&host, 0, 16_384, VALUE_LEN as u64).expect("format");
    let mut gen = YcsbGen::new(mix, loaded, VALUE_LEN, 42);
    for op in gen.load_ops() {
        if let KvOp::Set { key, value } = op {
            table.set(&host, &key, &value).unwrap();
        }
    }
    let t0 = Instant::now();
    for _ in 0..ops {
        let op = gen.next_op();
        if op.is_write() {
            host.log_write(&op.encode());
        }
        match op {
            KvOp::Get { key } => {
                let _ = table.get(&host, &key);
            }
            KvOp::Set { key, value } => {
                let _ = table.set(&host, &key, &value);
            }
            KvOp::Del { key } => {
                let _ = table.del(&host, &key);
            }
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let opts = BenchOpts::from_args();
    let ops = if opts.full { 200_000 } else { 3_000 };
    let mut sink = Sink::new("fig13", "Figure 13: YCSB on Redis — throughput (Kops/s)", &opts);
    let mut table = Table::new(&[
        "Workload", "TreeSLS-base", "TreeSLS-1ms", "Linux-base", "Linux-WAL",
    ]);
    for mix in YcsbMix::ALL {
        let tb = run_treesls(&opts, None, mix, ops);
        let t1 = run_treesls(&opts, Some(Duration::from_millis(1)), mix, ops);
        let lb = run_linux(&opts, false, mix, ops * 4);
        let lw = run_linux(&opts, true, mix, ops * 4);
        table.row(vec![
            mix.label().to_string(),
            format!("{:.1}", tb / 1e3),
            format!("{:.1}", t1 / 1e3),
            format!("{:.1}", lb / 1e3),
            format!("{:.1}", lw / 1e3),
        ]);
    }
    sink.table("throughput", table);
    sink.note("(Linux runs the same store code without a kernel boundary; compare");
    sink.note(" ratios within a column family, as the paper does.)");
    sink.finish();
}
