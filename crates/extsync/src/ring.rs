//! Version-tagged ring buffers in eternal PMOs (Figure 8 of the paper).
//!
//! A ring lives entirely inside an *eternal* PMO, so its contents and
//! pointers survive a power failure unmodified. Each message is tagged
//! with the committed global version at append time; a message becomes
//! externally visible only once a *later* checkpoint commits (its
//! producing state is then persistent), which is the paper's
//! `visible_writer` discipline:
//!
//! * [`push`] appends at `writer` with the current version tag;
//! * the checkpoint callback advances `visible_writer` past every message
//!   whose tag precedes the newly committed version;
//! * the restore callback truncates messages whose tag equals the restored
//!   version — their producing state was rolled back and the application
//!   "will re-send the message".
//!
//! Ring operations are expressed over the [`MemIo`] trait so the same code
//! runs from inside the SLS (a program's `UserCtx`, playing the modified
//! driver) and from the host (the external NIC/client side, playing DMA).

use treesls_kernel::types::KernelError;

/// Byte layout of the ring header (little-endian `u64` fields).
pub mod hdr {
    /// Consumer index (monotone message count).
    pub const READER: u64 = 0;
    /// Producer index (monotone message count).
    pub const WRITER: u64 = 8;
    /// Externally visible bound: messages below it may leave the system.
    pub const VISIBLE_WRITER: u64 = 16;
    /// Consumer acknowledgement used for overwrite protection (see
    /// `NetPort`): slots below it may be reused.
    pub const ACK: u64 = 24;
    /// Total header bytes before the slot array.
    pub const SIZE: u64 = 32;
}

/// Per-slot layout: `[version u64][seq u64][len u32][crc u32][payload ...]`.
///
/// The CRC-32 covers the version, sequence, length and payload bytes; it is
/// written last in [`push`], so a slot torn mid-write (or hit by media
/// faults) fails validation in [`read_at`] instead of yielding a
/// plausible-but-wrong message.
const SLOT_HDR: u64 = 24;

/// Checksum of a slot's contents (`version ++ seq ++ len ++ payload`).
fn slot_crc(version: u64, seq: u64, payload: &[u8]) -> u32 {
    use treesls_nvm::{crc32, crc32_update};
    let mut hdr = [0u8; 20];
    hdr[..8].copy_from_slice(&version.to_le_bytes());
    hdr[8..16].copy_from_slice(&seq.to_le_bytes());
    hdr[16..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    crc32_update(crc32(&hdr), payload)
}

/// Abstract byte-addressed memory: implemented by `UserCtx` (in-SLS
/// driver code) and by the host-side port (external DMA).
pub trait MemIo {
    /// Reads bytes at `addr`.
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError>;
    /// Writes bytes at `addr`.
    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError>;
    /// The committed global checkpoint version.
    fn version(&self) -> u64;

    /// Issues a synchronous persistence barrier (e.g. an `fsync` on a
    /// DAX file). A no-op for memory that needs no explicit flushing;
    /// baseline backends charge their WAL-flush latency here.
    fn flush(&self) {}

    /// Crash-injection hook: implementations backed by an
    /// [`treesls_nvm::CrashSchedule`] forward `site` to it so a fault
    /// schedule can cut execution between any two ring stores. The
    /// default is a no-op, so plain backends pay nothing.
    fn crash_hook(&self, _site: &'static str) {}

    /// Reads a little-endian `u64` at `addr`.
    fn mem_read_u64(&self, addr: u64) -> Result<u64, KernelError> {
        let mut b = [0u8; 8];
        self.mem_read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr`.
    fn mem_write_u64(&self, addr: u64, v: u64) -> Result<(), KernelError> {
        self.mem_write(addr, &v.to_le_bytes())
    }
}

/// Placement of one ring inside an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLayout {
    /// Base virtual address of the ring header (page-aligned by
    /// convention; must live in an eternal PMO).
    pub base: u64,
    /// Number of slots (any positive count).
    pub nslots: u64,
    /// Bytes per slot including the slot header.
    pub slot_size: u64,
}

impl RingLayout {
    /// Total bytes the ring occupies.
    pub fn byte_len(&self) -> u64 {
        hdr::SIZE + self.nslots * self.slot_size
    }

    /// Maximum payload bytes per message.
    pub fn max_payload(&self) -> usize {
        (self.slot_size - SLOT_HDR) as usize
    }

    fn slot_addr(&self, index: u64) -> u64 {
        self.base + hdr::SIZE + (index % self.nslots) * self.slot_size
    }
}

/// A message read from a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingMsg {
    /// Monotone sequence number (the message's ring index).
    pub seq: u64,
    /// Version tag at append time.
    pub version: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Metadata of a slot read by [`read_into`]; the payload itself lives in
/// the caller's reusable buffer (`buf[..info.len]`), so the hot path never
/// allocates a per-message `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotInfo {
    /// Monotone sequence number (the message's ring index).
    pub seq: u64,
    /// Version tag at append time.
    pub version: u64,
    /// Payload length in bytes (valid prefix of the caller's buffer).
    pub len: usize,
}

/// Errors from ring operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// No free slot (consumer/ack too far behind).
    Full,
    /// Payload exceeds the slot size.
    TooLarge,
    /// Ring header or slot metadata is self-inconsistent (e.g. `ack`
    /// ahead of `writer`, or a slot length beyond the slot capacity).
    /// Unlike [`RingError::Full`] this is not retryable: the eternal
    /// PMO's contents violate an invariant.
    Corrupt(&'static str),
    /// Underlying memory access failed.
    Mem(KernelError),
}

impl From<KernelError> for RingError {
    fn from(e: KernelError) -> Self {
        RingError::Mem(e)
    }
}

/// Initializes an empty ring at `layout` (all pointers zero).
pub fn init<M: MemIo>(io: &M, layout: &RingLayout) -> Result<(), KernelError> {
    io.mem_write_u64(layout.base + hdr::READER, 0)?;
    io.mem_write_u64(layout.base + hdr::WRITER, 0)?;
    io.mem_write_u64(layout.base + hdr::VISIBLE_WRITER, 0)?;
    io.mem_write_u64(layout.base + hdr::ACK, 0)
}

/// Appends a message tagged with the current version and `seq`.
///
/// The slot is reusable only when the consumer's acknowledgement has
/// passed it, protecting unprocessed (or un-checkpointed) messages from
/// overwrite.
pub fn push<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    seq: u64,
    payload: &[u8],
) -> Result<u64, RingError> {
    if payload.len() > layout.max_payload() {
        return Err(RingError::TooLarge);
    }
    let writer = io.mem_read_u64(layout.base + hdr::WRITER)?;
    let ack = io.mem_read_u64(layout.base + hdr::ACK)?;
    // `ack` trails `writer` by construction; an ack ahead of the writer
    // means the header was corrupted (and `writer - ack` would wrap to a
    // huge in-use count, wedging the ring as permanently full).
    let in_use = writer
        .checked_sub(ack)
        .ok_or(RingError::Corrupt("ring ack ahead of writer"))?;
    if in_use >= layout.nslots {
        return Err(RingError::Full);
    }
    write_slot(io, layout, writer, seq, payload)?;
    publish(io, layout, writer + 1)?;
    Ok(writer)
}

/// Writes a complete slot (header + payload) at ring index `index`
/// WITHOUT publishing it: the writer bump is deferred to [`publish`].
///
/// The slot header (version tag, sequence, length, CRC) goes out as one
/// contiguous store and the payload as a second — two `MemIo` round trips
/// per message instead of five, which matters when every access crosses
/// the soft-MMU translation layer.
fn write_slot<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    index: u64,
    seq: u64,
    payload: &[u8],
) -> Result<(), RingError> {
    let slot = layout.slot_addr(index);
    let version = io.version();
    let mut h = [0u8; SLOT_HDR as usize];
    h[..8].copy_from_slice(&version.to_le_bytes());
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    h[20..24].copy_from_slice(&slot_crc(version, seq, payload).to_le_bytes());
    io.mem_write(slot, &h)?;
    io.mem_write(slot + SLOT_HDR, payload)?;
    Ok(())
}

/// Stages a message at ring index `index` without bumping the writer, for
/// batched producers: a poll server stages one response per request in a
/// round and then calls [`publish`] once, so the whole batch shares a
/// single persistence barrier and a single linearizing writer store.
///
/// `ack` is the consumer acknowledgement the caller already read for the
/// round (re-reading it per message would defeat the batching). Staged
/// slots are invisible until published: a crash before [`publish`] leaves
/// the writer untouched and the batch is simply re-staged on replay.
pub fn stage_at<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    index: u64,
    ack: u64,
    seq: u64,
    payload: &[u8],
) -> Result<(), RingError> {
    if payload.len() > layout.max_payload() {
        return Err(RingError::TooLarge);
    }
    let in_use = index
        .checked_sub(ack)
        .ok_or(RingError::Corrupt("ring ack ahead of writer"))?;
    if in_use >= layout.nslots {
        return Err(RingError::Full);
    }
    write_slot(io, layout, index, seq, payload)
}

/// Publishes every slot staged below `new_writer`: one persistence
/// barrier covering all staged slot contents, then a single writer store
/// as the batch's linearization point.
///
/// Ordering point: the slot contents (including checksums) must be
/// durable before the writer bump publishes them — under ADR an unflushed
/// slot line could otherwise be dropped while the bump survives, leaving
/// a published-but-torn slot. A crash between the flush and the store
/// leaves fully written slots that were never published.
pub fn publish<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    new_writer: u64,
) -> Result<(), RingError> {
    io.flush();
    io.crash_hook("ring.slot_written");
    io.mem_write_u64(layout.base + hdr::WRITER, new_writer)?;
    Ok(())
}

/// Reads the message at ring index `index` without consuming it.
///
/// A recorded length larger than the slot's payload capacity means the
/// slot header is corrupt; silently clamping would hand the caller a
/// truncated payload that parses as a shorter (wrong) message, so it is
/// reported as [`RingError::Corrupt`] instead.
pub fn read_at<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    index: u64,
) -> Result<RingMsg, RingError> {
    let mut payload = Vec::new();
    let info = read_into(io, layout, index, &mut payload)?;
    payload.truncate(info.len);
    Ok(RingMsg { seq: info.seq, version: info.version, payload })
}

/// Zero-copy variant of [`read_at`]: reads the slot at `index` into the
/// caller's reusable buffer and returns the validated metadata.
///
/// The buffer is grown to the ring's payload capacity on first use and
/// never shrunk, so a poll loop reading requests round after round does a
/// single allocation for the life of the server. The payload occupies
/// `buf[..info.len]`; the CRC is validated in place against exactly those
/// bytes before the caller sees them. Two `MemIo` round trips (one
/// 24-byte slot-header read, one payload read) replace the five of the
/// old per-field path.
pub fn read_into<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    index: u64,
    buf: &mut Vec<u8>,
) -> Result<SlotInfo, RingError> {
    let slot = layout.slot_addr(index);
    let mut h = [0u8; SLOT_HDR as usize];
    io.mem_read(slot, &mut h)?;
    let version = u64::from_le_bytes(h[..8].try_into().unwrap());
    let seq = u64::from_le_bytes(h[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(h[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(h[20..24].try_into().unwrap());
    if len > layout.max_payload() {
        return Err(RingError::Corrupt("slot length exceeds payload capacity"));
    }
    if buf.len() < len {
        buf.resize(layout.max_payload(), 0);
    }
    io.mem_read(slot + SLOT_HDR, &mut buf[..len])?;
    if crc != slot_crc(version, seq, &buf[..len]) {
        return Err(RingError::Corrupt("slot checksum mismatch"));
    }
    Ok(SlotInfo { seq, version, len })
}

/// Pops the next message if one is available below `limit` (pass the
/// writer for internal consumption, the visible writer for external).
pub fn pop_below<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    limit_field: u64,
) -> Result<Option<RingMsg>, RingError> {
    let reader = io.mem_read_u64(layout.base + hdr::READER)?;
    let limit = io.mem_read_u64(layout.base + limit_field)?;
    if reader >= limit {
        return Ok(None);
    }
    let msg = read_at(io, layout, reader)?;
    io.mem_write_u64(layout.base + hdr::READER, reader + 1)?;
    Ok(Some(msg))
}

/// Reads a header field.
pub fn header<M: MemIo>(io: &M, layout: &RingLayout, field: u64) -> Result<u64, KernelError> {
    io.mem_read_u64(layout.base + field)
}

/// Writes a header field.
pub fn set_header<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    field: u64,
    v: u64,
) -> Result<(), KernelError> {
    io.mem_write_u64(layout.base + field, v)
}

/// Checkpoint callback body: advances `visible_writer` past every message
/// whose producing interval is now committed (`tag < committed`).
pub fn advance_visible<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    committed: u64,
) -> Result<u64, KernelError> {
    let visible = advance_visible_unfenced(io, layout, committed)?;
    // The visibility bound must be durable before any message below it
    // leaves the system.
    io.flush();
    Ok(visible)
}

/// [`advance_visible`] without the trailing persistence barrier, for
/// callers advancing *many* rings under one commit: a multi-queue NIC
/// advances every queue's bound and then issues a single barrier — the
/// cross-queue visibility barrier.
///
/// Deferring the fence is safe because the visible-writer store is
/// *derived* state: the tags it covers are already `< committed`, so a
/// crash that drops the unfenced store merely re-derives the same bound at
/// the next commit. No message leaves the system until the caller's
/// barrier completes, because consumers only pop below the visible writer
/// the caller publishes after flushing.
pub fn advance_visible_unfenced<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    committed: u64,
) -> Result<u64, KernelError> {
    advance_visible_capped_unfenced(io, layout, committed, u64::MAX)
}

/// [`advance_visible_unfenced`] with an upper index bound.
///
/// Under partial quiescence, producers on clean cores keep running
/// through the checkpoint's copy phase: a message they append *after* the
/// pause carries the still-committed version tag, but its producing state
/// belongs to the **next** checkpoint interval. The caller snapshots the
/// writer inside the pause and passes it as `cap`; messages at indices
/// `>= cap` stay invisible until the commit that actually covers them.
pub fn advance_visible_capped_unfenced<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    committed: u64,
    cap: u64,
) -> Result<u64, KernelError> {
    let writer = io.mem_read_u64(layout.base + hdr::WRITER)?.min(cap);
    let mut visible = io.mem_read_u64(layout.base + hdr::VISIBLE_WRITER)?;
    while visible < writer {
        let slot = layout.slot_addr(visible);
        let tag = io.mem_read_u64(slot)?;
        if tag >= committed {
            break;
        }
        visible += 1;
    }
    // A crash here loses only the visibility advance; the committed tags
    // are still below `committed`, so the next checkpoint re-derives the
    // same bound.
    io.crash_hook("ring.pre_visible_store");
    io.mem_write_u64(layout.base + hdr::VISIBLE_WRITER, visible)?;
    Ok(visible)
}

/// Restore callback body: discards messages whose producing state was
/// rolled back (tag `>= restored`), as in Figure 8(d).
pub fn truncate_uncommitted<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    restored: u64,
) -> Result<u64, KernelError> {
    let writer = truncate_uncommitted_unfenced(io, layout, restored)?;
    // The truncation must be durable before the restored system resumes
    // producing messages into the reclaimed slots.
    io.flush();
    Ok(writer)
}

/// [`truncate_uncommitted`] without the trailing persistence barrier, for
/// restore paths reconciling many rings before one barrier. Truncation is
/// idempotent (re-running the walk reproduces the same writer), so the
/// deferred fence only delays, never weakens, the reconciliation.
pub fn truncate_uncommitted_unfenced<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    restored: u64,
) -> Result<u64, KernelError> {
    let reader = io.mem_read_u64(layout.base + hdr::READER)?;
    let mut writer = io.mem_read_u64(layout.base + hdr::WRITER)?;
    let visible = io.mem_read_u64(layout.base + hdr::VISIBLE_WRITER)?;
    // Walk back over rolled-back messages (never past what was already
    // made visible — those may have left the system).
    while writer > visible.max(reader) {
        let slot = layout.slot_addr(writer - 1);
        let tag = io.mem_read_u64(slot)?;
        if tag < restored {
            break;
        }
        writer -= 1;
    }
    // A crash here leaves the rolled-back slots published; re-running the
    // restore callback walks them back again (truncation is idempotent).
    io.crash_hook("ring.pre_truncate_store");
    io.mem_write_u64(layout.base + hdr::WRITER, writer)?;
    if visible > writer {
        io.mem_write_u64(layout.base + hdr::VISIBLE_WRITER, writer)?;
    }
    Ok(writer)
}

/// Checks the external-synchrony ring invariants after a restore to
/// version `restored`:
///
/// * pointer order `ack ≤ reader ≤ visible ≤ writer` (with ext-sync the
///   consumer only pops below the visible writer, so the reader can never
///   pass it);
/// * no still-published slot carries a tag from the rolled-back interval
///   (`tag ≥ restored`) — the restore callback must have truncated them.
///
/// Together these are the machine-checkable form of the §5 contract: a
/// message can leave the system only if its producing state survived.
pub fn check_ext_sync_invariants<M: MemIo>(
    io: &M,
    layout: &RingLayout,
    restored: u64,
) -> Result<(), String> {
    let reader = io.mem_read_u64(layout.base + hdr::READER).map_err(|e| format!("{e:?}"))?;
    let writer = io.mem_read_u64(layout.base + hdr::WRITER).map_err(|e| format!("{e:?}"))?;
    let visible =
        io.mem_read_u64(layout.base + hdr::VISIBLE_WRITER).map_err(|e| format!("{e:?}"))?;
    let ack = io.mem_read_u64(layout.base + hdr::ACK).map_err(|e| format!("{e:?}"))?;
    if ack > reader {
        return Err(format!("ack {ack} ahead of reader {reader}"));
    }
    if reader > visible {
        return Err(format!("reader {reader} ahead of visible writer {visible}"));
    }
    if visible > writer {
        return Err(format!("visible writer {visible} ahead of writer {writer}"));
    }
    for idx in reader..writer {
        let msg = match read_at(io, layout, idx) {
            Ok(m) => m,
            Err(e) => return Err(format!("slot {idx} unreadable: {e:?}")),
        };
        if msg.version >= restored {
            return Err(format!(
                "slot {idx} (seq {}) tagged v{} survived a restore to v{restored}",
                msg.seq, msg.version
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// A plain in-memory MemIo with a settable version, for unit tests.
    struct TestMem {
        bytes: Mutex<Vec<u8>>,
        version: std::sync::atomic::AtomicU64,
    }

    impl TestMem {
        fn new(len: usize) -> Self {
            Self {
                bytes: Mutex::new(vec![0; len]),
                version: std::sync::atomic::AtomicU64::new(0),
            }
        }
        fn set_version(&self, v: u64) {
            self.version.store(v, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl MemIo for TestMem {
        fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
            let g = self.bytes.lock();
            let a = addr as usize;
            buf.copy_from_slice(&g[a..a + buf.len()]);
            Ok(())
        }
        fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
            let mut g = self.bytes.lock();
            let a = addr as usize;
            g[a..a + data.len()].copy_from_slice(data);
            Ok(())
        }
        fn version(&self) -> u64 {
            self.version.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    fn layout() -> RingLayout {
        RingLayout { base: 0, nslots: 4, slot_size: 84 }
    }

    fn mem() -> TestMem {
        let l = layout();
        TestMem::new(l.byte_len() as usize)
    }

    #[test]
    fn push_pop_roundtrip() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        let s0 = push(&m, &l, 100, b"hello").unwrap();
        assert_eq!(s0, 0);
        // Not yet visible externally...
        assert_eq!(pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap(), None);
        // ...but internally poppable below the writer.
        let msg = pop_below(&m, &l, hdr::WRITER).unwrap().unwrap();
        assert_eq!(msg.seq, 100);
        assert_eq!(msg.payload, b"hello");
        assert_eq!(msg.version, 0);
    }

    #[test]
    fn visibility_follows_commits() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        m.set_version(5);
        push(&m, &l, 1, b"a").unwrap(); // tag 5
        m.set_version(6);
        push(&m, &l, 2, b"b").unwrap(); // tag 6
        // Commit of version 6 makes only tag-5 messages visible.
        advance_visible(&m, &l, 6).unwrap();
        let msg = pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap().unwrap();
        assert_eq!(msg.seq, 1);
        assert_eq!(pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap(), None);
        // Commit of 7 releases the rest.
        advance_visible(&m, &l, 7).unwrap();
        assert_eq!(pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap().unwrap().seq, 2);
    }

    #[test]
    fn capped_advance_holds_back_post_epoch_messages() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        m.set_version(5);
        push(&m, &l, 1, b"pre").unwrap(); // tag 5, before the pause
        let cap = header(&m, &l, hdr::WRITER).unwrap(); // epoch snapshot
        push(&m, &l, 2, b"post").unwrap(); // tag 5, clean core after pause
        // Commit of 6 covers only the pre-pause message despite both tags
        // preceding it.
        advance_visible_capped_unfenced(&m, &l, 6, cap).unwrap();
        assert_eq!(header(&m, &l, hdr::VISIBLE_WRITER).unwrap(), 1);
        assert_eq!(pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap().unwrap().seq, 1);
        assert_eq!(pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap(), None);
        // The next commit (no cap in force) releases it.
        advance_visible(&m, &l, 7).unwrap();
        assert_eq!(pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap().unwrap().seq, 2);
    }

    #[test]
    fn truncate_discards_rolled_back_messages() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        m.set_version(3);
        push(&m, &l, 1, b"committed").unwrap(); // tag 3
        advance_visible(&m, &l, 4).unwrap(); // v4 committed, msg visible
        m.set_version(4);
        push(&m, &l, 2, b"lost").unwrap(); // tag 4, v5 never commits
        // Crash; restore to version 4.
        truncate_uncommitted(&m, &l, 4).unwrap();
        assert_eq!(header(&m, &l, hdr::WRITER).unwrap(), 1);
        let msg = pop_below(&m, &l, hdr::VISIBLE_WRITER).unwrap().unwrap();
        assert_eq!(msg.seq, 1);
        assert_eq!(pop_below(&m, &l, hdr::WRITER).unwrap(), None);
    }

    #[test]
    fn truncate_never_recalls_visible_messages() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        m.set_version(3);
        push(&m, &l, 1, b"sent").unwrap();
        // Force-visible (e.g. the commit raced the crash but the NIC
        // already transmitted): truncation must not move writer below it.
        set_header(&m, &l, hdr::VISIBLE_WRITER, 1).unwrap();
        truncate_uncommitted(&m, &l, 3).unwrap();
        assert_eq!(header(&m, &l, hdr::WRITER).unwrap(), 1);
    }

    #[test]
    fn full_ring_rejects_until_acked() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        for i in 0..4 {
            push(&m, &l, i, b"x").unwrap();
        }
        assert_eq!(push(&m, &l, 9, b"x"), Err(RingError::Full));
        set_header(&m, &l, hdr::ACK, 2).unwrap();
        push(&m, &l, 9, b"x").unwrap();
        push(&m, &l, 10, b"x").unwrap();
        assert_eq!(push(&m, &l, 11, b"x"), Err(RingError::Full));
    }

    #[test]
    fn ack_ahead_of_writer_is_corruption_not_full() {
        // Regression: `writer - ack` used to underflow (panic in debug,
        // wrap to a huge in-use count in release — a permanently "full"
        // ring) when a corrupted header put ack ahead of the writer.
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        push(&m, &l, 1, b"x").unwrap(); // writer = 1
        set_header(&m, &l, hdr::ACK, 5).unwrap(); // ack > writer
        assert_eq!(
            push(&m, &l, 2, b"y"),
            Err(RingError::Corrupt("ring ack ahead of writer"))
        );
    }

    #[test]
    fn oversize_slot_len_is_corruption_not_truncation() {
        // Regression: a slot whose recorded length exceeds the payload
        // capacity was silently clamped, handing the consumer a truncated
        // payload that parses as a different (shorter) message.
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        push(&m, &l, 7, b"payload").unwrap();
        // Corrupt the length field of slot 0.
        let slot = l.base + hdr::SIZE;
        m.mem_write(slot + 16, &(l.max_payload() as u32 + 1).to_le_bytes()).unwrap();
        assert_eq!(
            read_at(&m, &l, 0),
            Err(RingError::Corrupt("slot length exceeds payload capacity"))
        );
        // The error propagates through pop_below without consuming.
        assert!(matches!(
            pop_below(&m, &l, hdr::WRITER),
            Err(RingError::Corrupt(_))
        ));
        assert_eq!(header(&m, &l, hdr::READER).unwrap(), 0);
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        push(&m, &l, 3, b"checksummed").unwrap();
        // Flip one payload bit in slot 0.
        let off = l.base + hdr::SIZE + SLOT_HDR;
        let mut b = [0u8; 1];
        m.mem_read(off, &mut b).unwrap();
        m.mem_write(off, &[b[0] ^ 0x40]).unwrap();
        assert_eq!(
            read_at(&m, &l, 0),
            Err(RingError::Corrupt("slot checksum mismatch"))
        );
        // The error propagates through pop_below without consuming.
        assert!(matches!(pop_below(&m, &l, hdr::WRITER), Err(RingError::Corrupt(_))));
        assert_eq!(header(&m, &l, hdr::READER).unwrap(), 0);
    }

    #[test]
    fn corrupt_slot_header_fails_checksum() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        m.set_version(9);
        push(&m, &l, 4, b"tagged").unwrap();
        // Tamper with the version tag (would otherwise change visibility).
        m.mem_write_u64(l.base + hdr::SIZE, 2).unwrap();
        assert_eq!(
            read_at(&m, &l, 0),
            Err(RingError::Corrupt("slot checksum mismatch"))
        );
    }

    #[test]
    fn oversize_payload_rejected() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        let big = vec![0u8; l.max_payload() + 1];
        assert_eq!(push(&m, &l, 0, &big), Err(RingError::TooLarge));
    }

    #[test]
    fn read_into_reuses_buffer_without_allocating() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        m.set_version(2);
        push(&m, &l, 11, b"first message").unwrap();
        push(&m, &l, 12, b"2nd").unwrap();
        let mut buf = Vec::new();
        let a = read_into(&m, &l, 0, &mut buf).unwrap();
        assert_eq!(a, SlotInfo { seq: 11, version: 2, len: 13 });
        assert_eq!(&buf[..a.len], b"first message");
        // Buffer grew to the slot capacity once; the second read reuses it.
        let cap = buf.capacity();
        let b = read_into(&m, &l, 1, &mut buf).unwrap();
        assert_eq!(b, SlotInfo { seq: 12, version: 2, len: 3 });
        assert_eq!(&buf[..b.len], b"2nd");
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn read_into_validates_crc_over_exact_length() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        push(&m, &l, 5, b"checked").unwrap();
        // Flip a payload bit: the in-place validation must catch it even
        // though the buffer may hold stale bytes beyond `len`.
        let off = l.base + hdr::SIZE + SLOT_HDR;
        let mut b = [0u8; 1];
        m.mem_read(off, &mut b).unwrap();
        m.mem_write(off, &[b[0] ^ 0x01]).unwrap();
        let mut buf = vec![0xAA; 64];
        assert_eq!(
            read_into(&m, &l, 0, &mut buf),
            Err(RingError::Corrupt("slot checksum mismatch"))
        );
    }

    #[test]
    fn staged_slots_invisible_until_published() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        m.set_version(3);
        let writer = header(&m, &l, hdr::WRITER).unwrap();
        let ack = header(&m, &l, hdr::ACK).unwrap();
        stage_at(&m, &l, writer, ack, 20, b"a").unwrap();
        stage_at(&m, &l, writer + 1, ack, 21, b"b").unwrap();
        stage_at(&m, &l, writer + 2, ack, 22, b"c").unwrap();
        // Nothing published yet: consumers see an empty ring.
        assert_eq!(header(&m, &l, hdr::WRITER).unwrap(), 0);
        assert_eq!(pop_below(&m, &l, hdr::WRITER).unwrap(), None);
        // One publish releases the whole batch in order.
        publish(&m, &l, writer + 3).unwrap();
        for (i, seq) in [20u64, 21, 22].iter().enumerate() {
            let msg = pop_below(&m, &l, hdr::WRITER).unwrap().unwrap();
            assert_eq!(msg.seq, *seq, "message {i}");
            assert_eq!(msg.version, 3);
        }
    }

    #[test]
    fn stage_respects_capacity_against_snapshotted_ack() {
        let m = mem();
        let l = layout(); // 4 slots
        init(&m, &l).unwrap();
        let ack = 0;
        for i in 0..4 {
            stage_at(&m, &l, i, ack, i, b"x").unwrap();
        }
        assert_eq!(stage_at(&m, &l, 4, ack, 4, b"x"), Err(RingError::Full));
        // A fresher ack frees slots for staging.
        assert_eq!(stage_at(&m, &l, 4, 1, 4, b"x"), Ok(()));
        // Corrupt ack (ahead of index) is corruption, not Full.
        assert_eq!(
            stage_at(&m, &l, 2, 7, 9, b"x"),
            Err(RingError::Corrupt("ring ack ahead of writer"))
        );
    }

    #[test]
    fn slots_wrap_around() {
        let m = mem();
        let l = layout();
        init(&m, &l).unwrap();
        for round in 0..3u64 {
            for i in 0..4u64 {
                let seq = round * 4 + i;
                push(&m, &l, seq, format!("m{seq}").as_bytes()).unwrap();
            }
            for i in 0..4u64 {
                let seq = round * 4 + i;
                let msg = pop_below(&m, &l, hdr::WRITER).unwrap().unwrap();
                assert_eq!(msg.seq, seq);
                assert_eq!(msg.payload, format!("m{seq}").as_bytes());
            }
            set_header(&m, &l, hdr::ACK, (round + 1) * 4).unwrap();
        }
    }
}
