//! The machine-local network port: transparent external synchrony (§5).
//!
//! The paper implements external synchrony "in a network server that
//! handles communications between clients and servers on the same
//! machine". [`NetPort`] is that boundary: the host side plays the
//! external clients plus the NIC (DMA into the rings), the SLS side plays
//! the server application using the modified-driver helpers
//! ([`server_poll`] / [`server_reply`]).
//!
//! * **RX ring** (requests, host → server): the ring data and producer
//!   pointer are eternal so requests survive a crash; the *server's* read
//!   cursor lives in ordinary (rolled-back) process memory, so a restored
//!   server re-processes everything after the restored checkpoint —
//!   requests are delivered at-least-once and responses are deduplicated
//!   by sequence number on the host side.
//! * **TX ring** (responses, server → host): responses become visible only
//!   after the checkpoint covering their producing state commits
//!   ([`CkptCallback::on_checkpoint`] advances the visible writer);
//!   the restore callback truncates responses whose state was rolled back
//!   (Figure 8(c)/(d)).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use treesls_checkpoint::CkptCallback;
use treesls_kernel::types::{KernelError, ObjId, Vaddr};
use treesls_kernel::Kernel;

use crate::ring::{self, hdr, MemIo, RingError, RingLayout};

/// Host-side memory access into a service's address space (the NIC's DMA
/// view).
#[derive(Clone)]
pub struct HostIo {
    kernel: Arc<Kernel>,
    vmspace: ObjId,
}

impl HostIo {
    /// Creates a DMA view into `vmspace`.
    pub fn new(kernel: Arc<Kernel>, vmspace: ObjId) -> Self {
        Self { kernel, vmspace }
    }
}

impl MemIo for HostIo {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        self.kernel.vm_read(self.vmspace, Vaddr(addr), buf)
    }
    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        self.kernel.vm_write(self.vmspace, Vaddr(addr), data)
    }
    fn version(&self) -> u64 {
        self.kernel.pers.global_version()
    }
    fn flush(&self) {
        self.kernel.pers.dev.persist_barrier();
    }
    fn crash_hook(&self, site: &'static str) {
        self.kernel.pers.dev.crash_schedule().site(site);
    }
}

/// Configuration of one port's rings.
#[derive(Debug, Clone, Copy)]
pub struct PortLayout {
    /// Request ring (host → server), in an eternal PMO.
    pub rx: RingLayout,
    /// Response ring (server → host), in an eternal PMO.
    pub tx: RingLayout,
    /// Address (in ordinary process memory) of the server's RX read
    /// cursor — deliberately *not* eternal so it rolls back with the
    /// server state.
    pub rx_cursor_addr: u64,
}

/// A machine-local network port with transparent external synchrony.
pub struct NetPort {
    io: HostIo,
    layout: PortLayout,
    ext_sync: AtomicBool,
    next_seq: AtomicU64,
    /// Host-side RX cursor sample taken at the previous checkpoint; its
    /// value is a lower bound on the *checkpointed* server cursor, so it
    /// is safe to release those slots for reuse.
    prev_cursor_sample: AtomicU64,
    pending: Mutex<HashMap<u64, Option<Vec<u8>>>>,
    cv: Condvar,
    pump_lock: Mutex<()>,
    /// Notification signalled on request arrival (the virtual NIC IRQ):
    /// lets the server block instead of polling an empty RX ring.
    doorbell: Mutex<Option<ObjId>>,
}

impl NetPort {
    /// Creates a port and initializes both rings.
    pub fn new(
        kernel: Arc<Kernel>,
        vmspace: ObjId,
        layout: PortLayout,
        ext_sync: bool,
    ) -> Result<Arc<Self>, KernelError> {
        let io = HostIo::new(kernel, vmspace);
        ring::init(&io, &layout.rx)?;
        ring::init(&io, &layout.tx)?;
        io.mem_write_u64(layout.rx_cursor_addr, 0)?;
        Ok(Self::from_io(io, layout, ext_sync))
    }

    /// Reattaches to existing rings after a restore, *without*
    /// reinitializing them (the rings are eternal and their contents must
    /// survive; the restore callback does the reconciliation).
    ///
    /// `next_seq` must be beyond any previously used sequence number so
    /// retransmitted and fresh requests never collide.
    pub fn attach(
        kernel: Arc<Kernel>,
        vmspace: ObjId,
        layout: PortLayout,
        ext_sync: bool,
        next_seq: u64,
    ) -> Arc<Self> {
        let port = Self::from_io(HostIo::new(kernel, vmspace), layout, ext_sync);
        port.next_seq.store(next_seq, Ordering::SeqCst);
        port
    }

    fn from_io(io: HostIo, layout: PortLayout, ext_sync: bool) -> Arc<Self> {
        Arc::new(Self {
            io,
            layout,
            ext_sync: AtomicBool::new(ext_sync),
            next_seq: AtomicU64::new(1),
            prev_cursor_sample: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            pump_lock: Mutex::new(()),
            doorbell: Mutex::new(None),
        })
    }

    /// The ring placement this port serves (e.g. to re-attach after a
    /// restore).
    pub fn layout(&self) -> PortLayout {
        self.layout
    }

    /// Binds the doorbell notification signalled on each request (the
    /// virtual interrupt that wakes a blocked server thread).
    pub fn set_doorbell(&self, notif: ObjId) {
        *self.doorbell.lock() = Some(notif);
    }

    /// Enables or disables delayed external visibility.
    pub fn set_ext_sync(&self, on: bool) {
        self.ext_sync.store(on, Ordering::SeqCst);
    }

    /// Returns whether external synchrony is enabled.
    pub fn ext_sync(&self) -> bool {
        self.ext_sync.load(Ordering::SeqCst)
    }

    /// Sends a request into the RX ring, returning its sequence number.
    pub fn send_request(&self, data: &[u8]) -> Result<u64, RingError> {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        self.pending.lock().insert(seq, None);
        ring::push(&self.io, &self.layout.rx, seq, data)?;
        // Ring the doorbell: wake the (possibly blocked) server thread.
        if let Some(n) = *self.doorbell.lock() {
            let _ = self.io.kernel.signal_object(n);
        }
        Ok(seq)
    }

    /// Drains visible responses from the TX ring into the pending map
    /// (one "NIC interrupt" worth of work). Safe to call concurrently.
    pub fn pump(&self) {
        let _g = self.pump_lock.lock();
        let limit = if self.ext_sync() { hdr::VISIBLE_WRITER } else { hdr::WRITER };
        let mut any = false;
        while let Ok(Some(msg)) = ring::pop_below(&self.io, &self.layout.tx, limit) {
            let mut pending = self.pending.lock();
            // Duplicate responses (server re-processed after restore) hit
            // an absent or already-fulfilled entry and are dropped.
            if let Some(slot) = pending.get_mut(&msg.seq) {
                if slot.is_none() {
                    *slot = Some(msg.payload);
                    any = true;
                }
            }
        }
        // Release consumed TX slots for reuse.
        if let Ok(reader) = ring::header(&self.io, &self.layout.tx, hdr::READER) {
            let _ = ring::set_header(&self.io, &self.layout.tx, hdr::ACK, reader);
        }
        // Without external synchrony no durability is promised for
        // requests, so consumed RX slots are released eagerly (with
        // ext-sync the checkpoint callback does this conservatively).
        if !self.ext_sync() {
            if let Ok(cursor) = self.io.mem_read_u64(self.layout.rx_cursor_addr) {
                let _ = ring::set_header(&self.io, &self.layout.rx, hdr::ACK, cursor);
            }
        }
        if any {
            self.cv.notify_all();
        }
    }

    /// Takes a fulfilled response without blocking.
    pub fn try_take(&self, seq: u64) -> Option<Vec<u8>> {
        let mut pending = self.pending.lock();
        match pending.get(&seq) {
            Some(Some(_)) => pending.remove(&seq).flatten(),
            _ => None,
        }
    }

    /// Sends a request and waits for its response.
    ///
    /// Returns `None` on timeout (the entry is abandoned; a duplicate
    /// response arriving later is dropped).
    pub fn call(&self, data: &[u8], timeout: Duration) -> Result<Option<Vec<u8>>, RingError> {
        let seq = self.send_request(data)?;
        let deadline = Instant::now() + timeout;
        loop {
            self.pump();
            {
                let mut pending = self.pending.lock();
                if matches!(pending.get(&seq), Some(Some(_))) {
                    return Ok(pending.remove(&seq).flatten());
                }
                if Instant::now() >= deadline {
                    pending.remove(&seq);
                    return Ok(None);
                }
                self.cv.wait_for(&mut pending, Duration::from_micros(50));
            }
        }
    }

    /// Number of requests awaiting responses.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().values().filter(|v| v.is_none()).count()
    }
}

impl CkptCallback for NetPort {
    fn on_checkpoint(&self, version: u64) {
        treesls_nvm::crash_site!(self.io.kernel.pers.dev.crash_schedule(), "extsync.pre_ckpt_cb");
        // Release responses whose producing state is now persistent.
        let _ = ring::advance_visible(&self.io, &self.layout.tx, version);
        // Double-buffered RX acknowledgement: the cursor sampled at the
        // *previous* checkpoint is ≤ the cursor captured by this commit,
        // so those request slots can never be needed again.
        if let Ok(cursor) = self.io.mem_read_u64(self.layout.rx_cursor_addr) {
            let prev = self.prev_cursor_sample.swap(cursor, Ordering::SeqCst);
            let _ = ring::set_header(&self.io, &self.layout.rx, hdr::ACK, prev);
        }
        // Observe the TX ring right after the publish: depth (unreleased
        // responses) and visible-lag (produced but still held back) are the
        // external-synchrony cost the paper's §5 evaluation reports.
        if let (Ok(writer), Ok(visible), Ok(ack)) = (
            ring::header(&self.io, &self.layout.tx, hdr::WRITER),
            ring::header(&self.io, &self.layout.tx, hdr::VISIBLE_WRITER),
            ring::header(&self.io, &self.layout.tx, hdr::ACK),
        ) {
            let kernel = &self.io.kernel;
            kernel.metrics.record_ring_publish();
            kernel
                .metrics
                .set_ring_gauges(writer.saturating_sub(ack), writer.saturating_sub(visible));
            kernel.pers.recorder().record(
                treesls_obs::EventKind::RingPublish,
                [version, writer, visible, ack, 0, 0],
            );
        }
        self.cv.notify_all();
    }

    fn on_restore(&self, version: u64) {
        treesls_nvm::crash_site!(self.io.kernel.pers.dev.crash_schedule(), "extsync.pre_restore_cb");
        // Discard responses produced by the rolled-back interval; the
        // restored server will re-produce them.
        let _ = ring::truncate_uncommitted(&self.io, &self.layout.tx, version);
        // The cursor sample is stale for the new epoch.
        self.prev_cursor_sample.store(0, Ordering::SeqCst);
        // Replay the doorbell interrupt if requests were already queued
        // when power failed: the rings are eternal, so the requests
        // survived, but the server may have been checkpointed *blocked*
        // on the doorbell — the interrupt edge died with the power, and
        // without a replay the server would sleep on undelivered requests
        // until the next fresh request happens to arrive.
        if let (Ok(cursor), Ok(writer)) = (
            self.io.mem_read_u64(self.layout.rx_cursor_addr),
            ring::header(&self.io, &self.layout.rx, hdr::WRITER),
        ) {
            if cursor < writer {
                if let Some(n) = *self.doorbell.lock() {
                    let _ = self.io.kernel.signal_object(n);
                }
            }
        }
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for NetPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetPort")
            .field("ext_sync", &self.ext_sync())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// Server-side (in-SLS) helper: polls the RX ring using the server's
/// private cursor, which lives in ordinary rolled-back memory.
pub fn server_poll<M: MemIo>(
    io: &M,
    layout: &PortLayout,
) -> Result<Option<ring::RingMsg>, RingError> {
    let cursor = io.mem_read_u64(layout.rx_cursor_addr)?;
    let writer = ring::header(io, &layout.rx, hdr::WRITER)?;
    if cursor >= writer {
        return Ok(None);
    }
    let msg = ring::read_at(io, &layout.rx, cursor)?;
    io.mem_write_u64(layout.rx_cursor_addr, cursor + 1)?;
    Ok(Some(msg))
}

/// Server-side helper: pushes a response correlated to `req_seq`.
pub fn server_reply<M: MemIo>(
    io: &M,
    layout: &PortLayout,
    req_seq: u64,
    data: &[u8],
) -> Result<(), RingError> {
    ring::push(io, &layout.tx, req_seq, data)?;
    Ok(())
}
