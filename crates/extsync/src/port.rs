//! Host-side DMA view and the modified-driver helpers (§5).
//!
//! The paper implements external synchrony "in a network server that
//! handles communications between clients and servers on the same
//! machine". This module holds the two halves both sides share:
//!
//! * [`HostIo`] — the host's byte-addressed window into a service's
//!   address space, playing the NIC's DMA engine (and the external
//!   clients behind it);
//! * [`server_poll`] / [`server_reply`] — the in-SLS driver helpers a
//!   server program uses to consume requests and publish responses.
//!
//! The port *device* itself — multi-queue rings, doorbells, the
//! commit-gated visibility barrier — lives in the `treesls-net` crate
//! (`VirtualNic`), which builds on these primitives.

use std::sync::Arc;

use treesls_kernel::types::{KernelError, ObjId, Vaddr};
use treesls_kernel::Kernel;

use crate::ring::{self, hdr, MemIo, RingError, RingLayout};

/// Host-side memory access into a service's address space (the NIC's DMA
/// view).
#[derive(Clone)]
pub struct HostIo {
    kernel: Arc<Kernel>,
    vmspace: ObjId,
}

impl HostIo {
    /// Creates a DMA view into `vmspace`.
    pub fn new(kernel: Arc<Kernel>, vmspace: ObjId) -> Self {
        Self { kernel, vmspace }
    }

    /// The kernel this view reaches through (for doorbell delivery,
    /// metrics and crash scheduling by device emulations built on top).
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The address space this view targets.
    pub fn vmspace(&self) -> ObjId {
        self.vmspace
    }
}

impl MemIo for HostIo {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        self.kernel.vm_read(self.vmspace, Vaddr(addr), buf)
    }
    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        self.kernel.vm_write(self.vmspace, Vaddr(addr), data)
    }
    fn version(&self) -> u64 {
        self.kernel.pers.global_version()
    }
    fn flush(&self) {
        self.kernel.pers.dev.persist_barrier();
    }
    fn crash_hook(&self, site: &'static str) {
        self.kernel.pers.dev.crash_schedule().site(site);
    }
}

/// Configuration of one queue's ring pair.
#[derive(Debug, Clone, Copy)]
pub struct PortLayout {
    /// Request ring (host → server), in an eternal PMO.
    pub rx: RingLayout,
    /// Response ring (server → host), in an eternal PMO.
    pub tx: RingLayout,
    /// Address (in ordinary process memory) of the server's RX read
    /// cursor — deliberately *not* eternal so it rolls back with the
    /// server state.
    pub rx_cursor_addr: u64,
}

/// Server-side (in-SLS) helper: polls the RX ring using the server's
/// private cursor, which lives in ordinary rolled-back memory.
pub fn server_poll<M: MemIo>(
    io: &M,
    layout: &PortLayout,
) -> Result<Option<ring::RingMsg>, RingError> {
    let cursor = io.mem_read_u64(layout.rx_cursor_addr)?;
    let writer = ring::header(io, &layout.rx, hdr::WRITER)?;
    if cursor >= writer {
        return Ok(None);
    }
    let msg = ring::read_at(io, &layout.rx, cursor)?;
    io.mem_write_u64(layout.rx_cursor_addr, cursor + 1)?;
    Ok(Some(msg))
}

/// Server-side helper: pushes a response correlated to `req_seq`.
pub fn server_reply<M: MemIo>(
    io: &M,
    layout: &PortLayout,
    req_seq: u64,
    data: &[u8],
) -> Result<(), RingError> {
    ring::push(io, &layout.tx, req_seq, data)?;
    Ok(())
}
