//! Transparent external synchrony for TreeSLS (§5 of the paper).
//!
//! An SLS must make sure "the state changes caused by a request are
//! persisted before sending responses to external systems". With
//! millisecond checkpoints, TreeSLS achieves this *transparently*: the
//! driver delays externally visible operations until the checkpoint
//! covering their producing state commits, and applications need no
//! persistence code at all.
//!
//! * [`ring`] — version-tagged ring buffers in eternal PMOs, implementing
//!   the `reader` / `writer` / `visible_writer` discipline of Figure 8.
//! * [`port`] — the host-side DMA view ([`HostIo`]) plus the in-SLS
//!   modified-driver helpers ([`port::server_poll`] /
//!   [`port::server_reply`]). The port *device* — multi-queue rings,
//!   doorbells, the commit-gated visibility barrier — is the
//!   `treesls-net` crate's `VirtualNic`, built on these primitives.

pub mod port;
pub mod ring;

pub use port::{HostIo, PortLayout};
pub use ring::{check_ext_sync_invariants, MemIo, RingError, RingLayout, RingMsg, SlotInfo};

use treesls_kernel::program::UserCtx;
use treesls_kernel::types::KernelError;

impl MemIo for UserCtx<'_> {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        self.read(addr, buf)
    }
    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        self.write(addr, data)
    }
    fn version(&self) -> u64 {
        self.global_version()
    }
    fn flush(&self) {
        // Under eADR this is free (the barrier no-ops); under ADR it
        // drains the ring stores so a crash cannot reorder a published
        // writer bump ahead of the slot contents. Baseline backends charge
        // their WAL-flush latency here instead.
        self.persist_barrier();
    }
    fn crash_hook(&self, site: &'static str) {
        self.crash_site(site);
    }
}
