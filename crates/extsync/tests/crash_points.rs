//! Exhaustive crash-point tests for the ring primitives alone.
//!
//! The whole-system enumeration in `tests/crash_schedule.rs` exercises the
//! rings through the kernel and checkpoint manager; this file cuts the
//! same external-synchrony protocol (Figure 8) down to the pure ring
//! algebra so that *every* interleaving of `push` × `advance_visible` ×
//! `pop_below` × `truncate_uncommitted` can be crashed and checked in
//! microseconds.
//!
//! The model: a `CrashMem` backend counts every store (and every version
//! commit) as an event; one run of the scripted lifecycle is replayed once
//! per event with a fuse armed to panic *before* that event mutates
//! memory — exactly the eADR model, where everything already stored is
//! durable and the interrupted store never happens. After each crash the
//! restore callback (`truncate_uncommitted`) runs against the surviving
//! bytes and the §5 contract is checked:
//!
//! * pointer order `ack ≤ reader ≤ visible ≤ writer`;
//! * no message that was externally observed is truncated;
//! * no surviving published slot carries a rolled-back version tag;
//! * truncation is idempotent (the restore callback itself may be
//!   interrupted and re-run).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use parking_lot::Mutex;
use treesls_extsync::ring::{self, hdr};
use treesls_extsync::{MemIo, RingLayout, RingMsg};
use treesls_nvm::InjectedCrash;

/// Four slots so the six-message script wraps and reuses slots — the
/// truncate/ack interplay only shows up once indices alias.
const LAYOUT: RingLayout = RingLayout { base: 0, nslots: 4, slot_size: 32 };

/// In-memory eADR model with an event fuse: every store (and every
/// version commit) is a potential crash cut, fired *before* the mutation.
struct CrashMem {
    bytes: Mutex<Vec<u8>>,
    version: AtomicU64,
    /// Events remaining before the injected crash; negative = disarmed.
    fuse: AtomicI64,
    events: AtomicU64,
}

impl CrashMem {
    fn new() -> Self {
        Self {
            bytes: Mutex::new(vec![0; LAYOUT.byte_len() as usize]),
            version: AtomicU64::new(0),
            fuse: AtomicI64::new(-1),
            events: AtomicU64::new(0),
        }
    }

    fn arm(&self, skip: u64) {
        self.fuse.store(skip as i64, Ordering::SeqCst);
    }

    fn disarm(&self) {
        self.fuse.store(-1, Ordering::SeqCst);
    }

    /// Counts one crash-candidate event; panics if the fuse runs out.
    fn event(&self) {
        self.events.fetch_add(1, Ordering::SeqCst);
        let f = self.fuse.load(Ordering::SeqCst);
        if f == 0 {
            self.fuse.store(-1, Ordering::SeqCst);
            std::panic::panic_any(InjectedCrash);
        } else if f > 0 {
            self.fuse.store(f - 1, Ordering::SeqCst);
        }
    }

    /// A checkpoint commit: the global version advances atomically with
    /// the commit, so it is one event of its own (a crash can land just
    /// before it, leaving the previous version restored).
    fn commit(&self, v: u64) {
        self.event();
        self.version.store(v, Ordering::SeqCst);
    }
}

impl MemIo for CrashMem {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), treesls_kernel::types::KernelError> {
        let bytes = self.bytes.lock();
        let a = addr as usize;
        buf.copy_from_slice(&bytes[a..a + buf.len()]);
        Ok(())
    }

    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), treesls_kernel::types::KernelError> {
        self.event();
        let mut bytes = self.bytes.lock();
        let a = addr as usize;
        bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

/// Pops everything externally visible and acknowledges it — the host-side
/// consumer of Figure 8, with the ack store as its own crash cut.
fn drain(mem: &CrashMem, observed: &mut Vec<RingMsg>) {
    while let Some(msg) = ring::pop_below(mem, &LAYOUT, hdr::VISIBLE_WRITER).unwrap() {
        observed.push(msg);
    }
    let reader = ring::header(mem, &LAYOUT, hdr::READER).unwrap();
    ring::set_header(mem, &LAYOUT, hdr::ACK, reader).unwrap();
}

/// Three checkpoint intervals of server work: 3 + 2 + 1 messages into a
/// 4-slot ring, each interval committed, made visible, and drained.
fn script(mem: &CrashMem, observed: &mut Vec<RingMsg>) {
    ring::init(mem, &LAYOUT).unwrap();
    for seq in 0..3u64 {
        ring::push(mem, &LAYOUT, seq, &[seq as u8; 8]).unwrap();
    }
    mem.commit(1);
    ring::advance_visible(mem, &LAYOUT, 1).unwrap();
    drain(mem, observed);
    for seq in 3..5u64 {
        ring::push(mem, &LAYOUT, seq, &[seq as u8; 8]).unwrap();
    }
    mem.commit(2);
    ring::advance_visible(mem, &LAYOUT, 2).unwrap();
    drain(mem, observed);
    ring::push(mem, &LAYOUT, 5, &[5u8; 8]).unwrap();
    mem.commit(3);
    ring::advance_visible(mem, &LAYOUT, 3).unwrap();
    drain(mem, observed);
}

#[test]
fn clean_run_delivers_every_message_in_order() {
    let mem = CrashMem::new();
    let mut observed = Vec::new();
    script(&mem, &mut observed);
    let seqs: Vec<u64> = observed.iter().map(|m| m.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    for msg in &observed {
        // Visibility is delayed: the commit covering a message always
        // postdates its append tag.
        assert!(msg.version < mem.version());
        assert_eq!(msg.payload, vec![msg.seq as u8; 8]);
    }
}

#[test]
fn every_crash_cut_preserves_external_synchrony() {
    // Dry run to count the crash-candidate events.
    let clean = CrashMem::new();
    let mut clean_observed = Vec::new();
    script(&clean, &mut clean_observed);
    let total = clean.events.load(Ordering::SeqCst);
    eprintln!("ring lifecycle: {total} crash cuts");
    assert_eq!(clean_observed.len(), 6);
    assert!(total > 30, "expected a dense event schedule, got {total}");

    for cut in 0..total {
        let mem = CrashMem::new();
        let mut observed = Vec::new();
        mem.arm(cut);
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| script(&mem, &mut observed)));
        mem.disarm();
        match run {
            Ok(()) => panic!("cut {cut} of {total} never fired"),
            Err(p) => {
                if p.downcast_ref::<InjectedCrash>().is_none() {
                    // A genuine bug tripped inside the script, not the fuse.
                    std::panic::resume_unwind(p);
                }
            }
        }

        // "Reboot": the surviving version is whatever last committed.
        let restored = mem.version();
        let writer1 = ring::truncate_uncommitted(&mem, &LAYOUT, restored).unwrap();

        ring::check_ext_sync_invariants(&mem, &LAYOUT, restored)
            .unwrap_or_else(|e| panic!("cut {cut}/{total} (restored v{restored}): {e}"));

        for msg in &observed {
            // Nothing may be both externally visible and rolled back: a
            // message the host already consumed must survive truncation…
            assert!(
                msg.seq < writer1,
                "cut {cut}: seq {} left the system but was truncated (writer now {writer1})",
                msg.seq
            );
            // …and must have been produced by a surviving interval.
            assert!(
                msg.version < restored,
                "cut {cut}: observed seq {} tagged v{} but only v{restored} survived",
                msg.seq,
                msg.version
            );
        }

        // The restore callback may itself be interrupted and re-run.
        let writer2 = ring::truncate_uncommitted(&mem, &LAYOUT, restored).unwrap();
        assert_eq!(writer1, writer2, "cut {cut}: truncation is not idempotent");

        // And the next checkpoint's visibility advance converges legally.
        let visible = ring::advance_visible(&mem, &LAYOUT, restored).unwrap();
        assert!(visible <= writer1, "cut {cut}: visible {visible} beyond writer {writer1}");
    }
}
