//! Binary buddy allocator over NVM page frames.
//!
//! All allocator state lives in the NVM metadata arena so it survives power
//! failures; every mutation goes through a journal [`Tx`], making each
//! alloc/free atomic (§3 of the paper, "the checkpoint manager needs to be
//! failure-resilient").
//!
//! Persistent layout at `layout.buddy_off`:
//!
//! ```text
//! +0                      magic        u64
//! +8                      frame_count  u64
//! +16                     first_frame  u64
//! +24                     heads[MAX_ORDER+1]  u32 each (NONE = u32::MAX)
//! +24 + 4*(MAX_ORDER+1)   meta[frame_count]   u8 each (block heads only)
//! then                    next[frame_count]   u32 each
//! then                    prev[frame_count]   u32 each
//! ```
//!
//! The `meta` byte of a *block head* encodes `order` (low 4 bits) and an
//! allocated bit (bit 6). Non-head frames carry no meaning: the block
//! structure is recovered by scanning heads low-to-high, each head covering
//! `1 << order` frames — blocks are always contiguous and aligned, so the
//! scan is unambiguous.

use treesls_nvm::{FrameId, NvmDevice};

use crate::error::AllocError;
use crate::journal::Tx;
use crate::layout::{align8, AllocLayout, MAX_ORDER};

const MAGIC: u64 = 0xB0DD_15B0_DD15_0001;
const NONE: u32 = u32::MAX;
const ALLOC_BIT: u8 = 1 << 6;
const ORDER_MASK: u8 = 0x0F;

/// The buddy allocator. Holds only volatile offsets; all state is in NVM.
#[derive(Debug)]
pub struct Buddy {
    off: usize,
    first_frame: u32,
    frame_count: u32,
}

struct Offsets {
    heads: usize,
    meta: usize,
    next: usize,
    prev: usize,
}

impl Buddy {
    /// Bytes of arena needed for `frame_count` frames.
    pub fn region_len(frame_count: u32) -> usize {
        let n = frame_count as usize;
        align8(24 + 4 * (MAX_ORDER as usize + 1)) + align8(n) + align8(4 * n) + align8(4 * n)
    }

    fn offsets(&self) -> Offsets {
        let n = self.frame_count as usize;
        let heads = self.off + 24;
        let meta = self.off + align8(24 + 4 * (MAX_ORDER as usize + 1));
        let next = meta + align8(n);
        let prev = next + align8(4 * n);
        Offsets { heads, meta, next, prev }
    }

    /// Formats a fresh buddy system covering the layout's frame range.
    pub fn format(dev: &NvmDevice, layout: &AllocLayout) -> Self {
        let b = Self {
            off: layout.buddy_off,
            first_frame: layout.first_frame,
            frame_count: layout.frame_count,
        };
        b.reformat(dev);
        b
    }

    /// Re-initializes all metadata to "everything free".
    ///
    /// Direct (unjournaled) writes: reformatting is idempotent, so a crash
    /// in the middle simply restarts it.
    pub fn reformat(&self, dev: &NvmDevice) {
        let meta = dev.meta();
        meta.write_u64(self.off, MAGIC);
        meta.write_u64(self.off + 8, self.frame_count as u64);
        meta.write_u64(self.off + 16, self.first_frame as u64);
        let o = self.offsets();
        for ord in 0..=MAX_ORDER {
            meta.write_u32(o.heads + 4 * ord as usize, NONE);
        }
        // Greedily cover the range with maximal aligned free blocks.
        let mut r: u32 = 0;
        while r < self.frame_count {
            let mut ord = MAX_ORDER;
            loop {
                let size = 1u32 << ord;
                if r.is_multiple_of(size) && r + size <= self.frame_count {
                    break;
                }
                ord -= 1;
            }
            // Insert directly (unjournaled format path).
            let head = meta.read_u32(o.heads + 4 * ord as usize);
            meta.write_u8(o.meta + r as usize, ord);
            meta.write_u32(o.next + 4 * r as usize, head);
            meta.write_u32(o.prev + 4 * r as usize, NONE);
            if head != NONE {
                meta.write_u32(o.prev + 4 * head as usize, r);
            }
            meta.write_u32(o.heads + 4 * ord as usize, r);
            r += 1 << ord;
        }
    }

    /// Reattaches to already-formatted metadata (after journal recovery).
    ///
    /// # Panics
    ///
    /// Panics if the magic number does not match (the arena was never
    /// formatted or is corrupt).
    pub fn attach(dev: &NvmDevice, layout: &AllocLayout) -> Self {
        let meta = dev.meta();
        assert_eq!(meta.read_u64(layout.buddy_off), MAGIC, "buddy magic mismatch");
        Self {
            off: layout.buddy_off,
            first_frame: meta.read_u64(layout.buddy_off + 16) as u32,
            frame_count: meta.read_u64(layout.buddy_off + 8) as u32,
        }
    }

    /// Number of frames managed.
    pub fn frame_count(&self) -> usize {
        self.frame_count as usize
    }

    fn rel(&self, frame: FrameId) -> u32 {
        frame.0 - self.first_frame
    }

    fn abs(&self, rel: u32) -> FrameId {
        FrameId(rel + self.first_frame)
    }

    fn read_meta(&self, dev: &NvmDevice, r: u32) -> u8 {
        dev.meta().read_u8(self.offsets().meta + r as usize)
    }

    fn list_remove(&self, dev: &NvmDevice, tx: &mut Tx<'_>, ord: u8, r: u32) {
        let o = self.offsets();
        let meta = dev.meta();
        let next = meta.read_u32(o.next + 4 * r as usize);
        let prev = meta.read_u32(o.prev + 4 * r as usize);
        if prev == NONE {
            tx.write_u32(o.heads + 4 * ord as usize, next);
        } else {
            tx.write_u32(o.next + 4 * prev as usize, next);
        }
        if next != NONE {
            tx.write_u32(o.prev + 4 * next as usize, prev);
        }
    }

    fn list_push(&self, dev: &NvmDevice, tx: &mut Tx<'_>, ord: u8, r: u32) {
        let o = self.offsets();
        let head = dev.meta().read_u32(o.heads + 4 * ord as usize);
        tx.write_u32(o.next + 4 * r as usize, head);
        tx.write_u32(o.prev + 4 * r as usize, NONE);
        if head != NONE {
            tx.write_u32(o.prev + 4 * head as usize, r);
        }
        tx.write_u32(o.heads + 4 * ord as usize, r);
    }

    /// Returns `true` if `r` is a genuine block head.
    ///
    /// Meta bytes of interior frames are stale, so a head claim is confirmed
    /// by walking the block partition from the nearest max-order boundary
    /// (blocks never span one, as every block is aligned to its own size).
    fn is_block_head(&self, dev: &NvmDevice, r: u32) -> bool {
        let mut pos = r & !((1u32 << MAX_ORDER) - 1);
        while pos < r {
            let ord = self.read_meta(dev, pos) & ORDER_MASK;
            pos += 1u32 << ord.min(MAX_ORDER);
        }
        pos == r
    }

    fn list_contains(&self, dev: &NvmDevice, ord: u8, r: u32) -> bool {
        let o = self.offsets();
        let meta = dev.meta();
        let mut cur = meta.read_u32(o.heads + 4 * ord as usize);
        while cur != NONE {
            if cur == r {
                return true;
            }
            cur = meta.read_u32(o.next + 4 * cur as usize);
        }
        false
    }

    /// Allocates a block of `1 << order` frames.
    pub fn alloc(&self, dev: &NvmDevice, tx: &mut Tx<'_>, order: u8) -> Result<FrameId, AllocError> {
        if order > MAX_ORDER {
            return Err(AllocError::OrderTooLarge);
        }
        let o = self.offsets();
        let meta = dev.meta();
        // Find the smallest order with a free block.
        let mut found = None;
        for ord in order..=MAX_ORDER {
            let head = meta.read_u32(o.heads + 4 * ord as usize);
            if head != NONE {
                found = Some((ord, head));
                break;
            }
        }
        let (mut ord, r) = found.ok_or(AllocError::OutOfMemory)?;
        self.list_remove(dev, tx, ord, r);
        // Split down to the requested order, freeing upper halves.
        while ord > order {
            ord -= 1;
            let upper = r + (1u32 << ord);
            tx.write_u8(o.meta + upper as usize, ord); // free head, order `ord`
            self.list_push(dev, tx, ord, upper);
        }
        tx.write_u8(o.meta + r as usize, order | ALLOC_BIT);
        Ok(self.abs(r))
    }

    /// Frees the block at `frame` previously allocated with `order`.
    pub fn free(
        &self,
        dev: &NvmDevice,
        tx: &mut Tx<'_>,
        frame: FrameId,
        order: u8,
    ) -> Result<(), AllocError> {
        if order > MAX_ORDER {
            return Err(AllocError::OrderTooLarge);
        }
        if frame.0 < self.first_frame || self.rel(frame) >= self.frame_count {
            return Err(AllocError::InvalidFree);
        }
        let mut r = self.rel(frame);
        if !r.is_multiple_of(1u32 << order) {
            return Err(AllocError::InvalidFree);
        }
        let m = self.read_meta(dev, r);
        if m != (order | ALLOC_BIT) || !self.is_block_head(dev, r) {
            return Err(AllocError::InvalidFree);
        }
        let o = self.offsets();
        let mut ord = order;
        // Eager merge with free buddies.
        while ord < MAX_ORDER {
            let buddy = r ^ (1u32 << ord);
            if buddy + (1u32 << ord) > self.frame_count {
                break;
            }
            let bm = self.read_meta(dev, buddy);
            if bm != ord {
                // Buddy is allocated, or free at a different order.
                break;
            }
            self.list_remove(dev, tx, ord, buddy);
            r = r.min(buddy);
            ord += 1;
        }
        tx.write_u8(o.meta + r as usize, ord);
        self.list_push(dev, tx, ord, r);
        Ok(())
    }

    /// Carves a *specific* block out of the free space (restore path).
    ///
    /// Finds the free block containing `frame`, splits it down and marks
    /// exactly `[frame, frame + 2^order)` allocated. Fails with
    /// [`AllocError::Overlap`] if the range is not currently free.
    pub fn carve(
        &self,
        dev: &NvmDevice,
        tx: &mut Tx<'_>,
        frame: FrameId,
        order: u8,
    ) -> Result<FrameId, AllocError> {
        if order > MAX_ORDER {
            return Err(AllocError::OrderTooLarge);
        }
        let r = self.rel(frame);
        if !r.is_multiple_of(1u32 << order) || r + (1u32 << order) > self.frame_count {
            return Err(AllocError::InvalidFree);
        }
        // Find the free block containing `r`. Candidate heads are `r` with
        // progressively more low bits cleared; a candidate is only genuine
        // if it is actually on the free list of that order (meta bytes of
        // interior frames are stale and must not be trusted).
        let mut containing = None;
        for ord in order..=MAX_ORDER {
            let cand = r & !((1u32 << ord) - 1);
            if self.read_meta(dev, cand) == ord && self.list_contains(dev, ord, cand) {
                containing = Some((cand, ord));
                break;
            }
        }
        let (mut head, mut ord) = containing.ok_or(AllocError::Overlap)?;
        let o = self.offsets();
        self.list_remove(dev, tx, ord, head);
        // Split, keeping the half containing `r`.
        while ord > order {
            ord -= 1;
            let lower = head;
            let upper = head + (1u32 << ord);
            let (keep, give) = if r >= upper { (upper, lower) } else { (lower, upper) };
            tx.write_u8(o.meta + give as usize, ord);
            self.list_push(dev, tx, ord, give);
            head = keep;
        }
        debug_assert_eq!(head, r);
        tx.write_u8(o.meta + r as usize, order | ALLOC_BIT);
        Ok(frame)
    }

    /// Counts free frames by walking the free lists.
    pub fn free_frames(&self, dev: &NvmDevice) -> usize {
        let o = self.offsets();
        let meta = dev.meta();
        let mut total = 0usize;
        for ord in 0..=MAX_ORDER {
            let mut cur = meta.read_u32(o.heads + 4 * ord as usize);
            while cur != NONE {
                total += 1usize << ord;
                cur = meta.read_u32(o.next + 4 * cur as usize);
            }
        }
        total
    }

    /// Verifies the persistent structures; see [`PmemAllocator::verify`].
    ///
    /// [`PmemAllocator::verify`]: crate::PmemAllocator::verify
    pub fn verify(&self, dev: &NvmDevice) -> Result<(), String> {
        let o = self.offsets();
        let meta = dev.meta();
        let n = self.frame_count;
        // Pass 1: scan block heads.
        let mut free_heads = std::collections::HashSet::new();
        let mut r = 0u32;
        while r < n {
            let m = self.read_meta(dev, r);
            let ord = m & ORDER_MASK;
            if ord > MAX_ORDER {
                return Err(format!("frame {r}: bad order {ord}"));
            }
            let size = 1u32 << ord;
            if !r.is_multiple_of(size) {
                return Err(format!("frame {r}: misaligned block of order {ord}"));
            }
            if r + size > n {
                return Err(format!("frame {r}: block of order {ord} overruns range"));
            }
            if m & ALLOC_BIT == 0 {
                free_heads.insert((r, ord));
            }
            r += size;
        }
        // Pass 2: free lists match the scan.
        let mut listed = std::collections::HashSet::new();
        for ord in 0..=MAX_ORDER {
            let mut cur = meta.read_u32(o.heads + 4 * ord as usize);
            let mut prev = NONE;
            let mut steps = 0u32;
            while cur != NONE {
                steps += 1;
                if steps > n {
                    return Err(format!("order {ord}: free list cycle"));
                }
                if !free_heads.contains(&(cur, ord)) {
                    return Err(format!("order {ord}: list member {cur} is not a free head"));
                }
                if meta.read_u32(o.prev + 4 * cur as usize) != prev {
                    return Err(format!("order {ord}: bad prev link at {cur}"));
                }
                if !listed.insert(cur) {
                    return Err(format!("frame {cur} on two free lists"));
                }
                prev = cur;
                cur = meta.read_u32(o.next + 4 * cur as usize);
            }
        }
        if listed.len() != free_heads.len() {
            return Err(format!(
                "{} free heads scanned but {} frames listed",
                free_heads.len(),
                listed.len()
            ));
        }
        // Pass 3: eager-merge invariant — no two free buddies at same order.
        for &(r, ord) in &free_heads {
            if ord < MAX_ORDER {
                let buddy = r ^ (1u32 << ord);
                if free_heads.contains(&(buddy, ord)) && buddy > r {
                    return Err(format!("free buddies {r} and {buddy} at order {ord} unmerged"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use std::sync::Arc;
    use treesls_nvm::LatencyModel;

    fn setup(frames: u32) -> (Arc<NvmDevice>, Buddy, Journal) {
        let layout = AllocLayout::for_device(0, frames);
        let dev = Arc::new(NvmDevice::new(
            frames as usize,
            layout.end_off,
            Arc::new(LatencyModel::disabled()),
        ));
        let j = Journal::format(&dev, layout.journal_off, layout.journal_records);
        let b = Buddy::format(&dev, &layout);
        (dev, b, j)
    }

    #[test]
    fn fresh_buddy_is_all_free() {
        let (dev, b, _) = setup(4096);
        assert_eq!(b.free_frames(&dev), 4096);
        b.verify(&dev).unwrap();
    }

    #[test]
    fn alloc_free_roundtrip() {
        let (dev, b, mut j) = setup(1024);
        let f = j.run(&dev, |tx| b.alloc(&dev, tx, 0)).unwrap();
        assert_eq!(b.free_frames(&dev), 1023);
        b.verify(&dev).unwrap();
        j.run(&dev, |tx| b.free(&dev, tx, f, 0)).unwrap();
        assert_eq!(b.free_frames(&dev), 1024);
        b.verify(&dev).unwrap();
    }

    #[test]
    fn split_and_merge_restore_max_blocks() {
        let (dev, b, mut j) = setup(1024);
        let frames: Vec<_> =
            (0..8).map(|_| j.run(&dev, |tx| b.alloc(&dev, tx, 0)).unwrap()).collect();
        b.verify(&dev).unwrap();
        for f in frames {
            j.run(&dev, |tx| b.free(&dev, tx, f, 0)).unwrap();
        }
        b.verify(&dev).unwrap();
        // Everything merged back: a max-order alloc must succeed.
        let big = j.run(&dev, |tx| b.alloc(&dev, tx, MAX_ORDER)).unwrap();
        assert_eq!(big.0 % (1 << MAX_ORDER), 0);
    }

    #[test]
    fn multi_order_allocations() {
        let (dev, b, mut j) = setup(4096);
        let a = j.run(&dev, |tx| b.alloc(&dev, tx, 3)).unwrap();
        let c = j.run(&dev, |tx| b.alloc(&dev, tx, 5)).unwrap();
        assert_eq!(b.free_frames(&dev), 4096 - 8 - 32);
        b.verify(&dev).unwrap();
        j.run(&dev, |tx| b.free(&dev, tx, a, 3)).unwrap();
        j.run(&dev, |tx| b.free(&dev, tx, c, 5)).unwrap();
        assert_eq!(b.free_frames(&dev), 4096);
    }

    #[test]
    fn oom_when_exhausted() {
        let (dev, b, mut j) = setup(4);
        for _ in 0..4 {
            j.run(&dev, |tx| b.alloc(&dev, tx, 0)).unwrap();
        }
        let r = j.run(&dev, |tx| b.alloc(&dev, tx, 0));
        assert_eq!(r, Err(AllocError::OutOfMemory));
        // Failed alloc must not corrupt state.
        b.verify(&dev).unwrap();
    }

    #[test]
    fn invalid_frees_rejected() {
        let (dev, b, mut j) = setup(64);
        let f = j.run(&dev, |tx| b.alloc(&dev, tx, 2)).unwrap();
        // Wrong order.
        assert_eq!(j.run(&dev, |tx| b.free(&dev, tx, f, 1)), Err(AllocError::InvalidFree));
        // Double free.
        j.run(&dev, |tx| b.free(&dev, tx, f, 2)).unwrap();
        assert_eq!(j.run(&dev, |tx| b.free(&dev, tx, f, 2)), Err(AllocError::InvalidFree));
        // Out of range.
        assert_eq!(
            j.run(&dev, |tx| b.free(&dev, tx, FrameId(1000), 0)),
            Err(AllocError::InvalidFree)
        );
        b.verify(&dev).unwrap();
    }

    #[test]
    fn non_power_of_two_range() {
        let (dev, b, mut j) = setup(1000);
        assert_eq!(b.free_frames(&dev), 1000);
        b.verify(&dev).unwrap();
        let mut got = Vec::new();
        loop {
            match j.run(&dev, |tx| b.alloc(&dev, tx, 0)) {
                Ok(f) => got.push(f),
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got.len(), 1000);
        let unique: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn carve_reserves_specific_block() {
        let (dev, b, mut j) = setup(256);
        let f = j.run(&dev, |tx| b.carve(&dev, tx, FrameId(64), 2)).unwrap();
        assert_eq!(f, FrameId(64));
        b.verify(&dev).unwrap();
        // Carving an overlapping block fails.
        assert_eq!(
            j.run(&dev, |tx| b.carve(&dev, tx, FrameId(64), 0)),
            Err(AllocError::Overlap)
        );
        assert_eq!(
            j.run(&dev, |tx| b.carve(&dev, tx, FrameId(66), 1)),
            Err(AllocError::Overlap)
        );
        // Adjacent carve succeeds.
        j.run(&dev, |tx| b.carve(&dev, tx, FrameId(68), 2)).unwrap();
        b.verify(&dev).unwrap();
        // Subsequent allocs never return the carved frames.
        let mut seen = std::collections::HashSet::new();
        while let Ok(f) = j.run(&dev, |tx| b.alloc(&dev, tx, 0)) {
            seen.insert(f.0);
        }
        for r in 64..72 {
            assert!(!seen.contains(&r), "carved frame {r} re-allocated");
        }
    }

    #[test]
    fn attach_after_recover_sees_same_state() {
        let layout = AllocLayout::for_device(0, 128);
        let dev = Arc::new(NvmDevice::new(128, layout.end_off, Arc::new(LatencyModel::disabled())));
        let mut j = Journal::format(&dev, layout.journal_off, layout.journal_records);
        let b = Buddy::format(&dev, &layout);
        let f = j.run(&dev, |tx| b.alloc(&dev, tx, 4)).unwrap();
        let _ = (b, j);
        // "Reboot".
        let _j2 = Journal::recover(&dev, layout.journal_off, layout.journal_records);
        let b2 = Buddy::attach(&dev, &layout);
        assert_eq!(b2.free_frames(&dev), 128 - 16);
        b2.verify(&dev).unwrap();
        let mut j2 = Journal::recover(&dev, layout.journal_off, layout.journal_records);
        j2.run(&dev, |tx| b2.free(&dev, tx, f, 4)).unwrap();
        assert_eq!(b2.free_frames(&dev), 128);
    }

    #[test]
    fn crash_injection_during_ops_always_recovers_consistent() {
        // Crash after every possible metadata write during a mixed
        // workload; after journal recovery the buddy must verify and the
        // free count must equal one of the two legal values.
        for cut in 0..200u64 {
            let layout = AllocLayout::for_device(0, 64);
            let dev =
                Arc::new(NvmDevice::new(64, layout.end_off, Arc::new(LatencyModel::disabled())));
            let mut j = Journal::format(&dev, layout.journal_off, layout.journal_records);
            let b = Buddy::format(&dev, &layout);
            let a = j.run(&dev, |tx| b.alloc(&dev, tx, 0)).unwrap();
            let before = b.free_frames(&dev);
            dev.meta().arm_crash_after(cut);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                j.run(&dev, |tx| b.alloc(&dev, tx, 2)).unwrap();
                j.run(&dev, |tx| b.free(&dev, tx, a, 0)).unwrap();
            }));
            dev.meta().disarm_crash();
            let _ = Journal::recover(&dev, layout.journal_off, layout.journal_records);
            let b2 = Buddy::attach(&dev, &layout);
            b2.verify(&dev).unwrap_or_else(|e| panic!("cut={cut}: {e}"));
            let after = b2.free_frames(&dev);
            if result.is_ok() {
                assert_eq!(after, before - 4 + 1, "cut={cut}");
            } else {
                // Rolled back to one of the operation boundaries.
                assert!(
                    after == before || after == before - 4 || after == before - 4 + 1,
                    "cut={cut}: free={after}, before={before}"
                );
            }
        }
    }
}
