//! Slab caches for small fixed-size NVM allocations.
//!
//! The checkpoint manager allocates many small records — backup object
//! headers, radix-tree nodes, capability-table shadows. Slabs carve 4 KiB
//! buddy frames into power-of-two size classes (64 B … 2 KiB) with a `u64`
//! occupancy bitmap per slab, all persisted in the NVM metadata arena and
//! mutated only through journal transactions.
//!
//! Persistent layout at `layout.slab_off`:
//!
//! ```text
//! +0    magic                u64
//! +8    partial_heads[class] u32 each (relative frame id, NONE = u32::MAX)
//! +8+4C descriptors[frame_count], 24 bytes each:
//!         +0  class+1  u8   (0 = frame is not a slab)
//!         +1  pad      3 B
//!         +4  next     u32  (partial list link)
//!         +8  prev     u32
//!         +12 pad      4 B
//!         +16 bitmap   u64  (bit i set = object i live)
//! ```

use treesls_nvm::{FrameId, NvmDevice, PAGE_SIZE};

use crate::buddy::Buddy;
use crate::error::AllocError;
use crate::journal::Tx;
use crate::layout::{align8, AllocLayout, SLAB_CLASSES};

const MAGIC: u64 = 0x51AB_51AB_51AB_0001;
const NONE: u32 = u32::MAX;
const DESC_SIZE: usize = 24;

/// An NVM address inside a slab frame: `(frame, byte offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NvmAddr {
    /// The frame holding the object.
    pub frame: FrameId,
    /// Byte offset of the object within the frame.
    pub offset: u32,
}

impl NvmAddr {
    /// Packs the address into a `u64` for persistence.
    pub fn to_raw(self) -> u64 {
        ((self.frame.0 as u64) << 32) | self.offset as u64
    }

    /// Unpacks an address produced by [`to_raw`](Self::to_raw).
    pub fn from_raw(raw: u64) -> Self {
        Self { frame: FrameId((raw >> 32) as u32), offset: raw as u32 }
    }
}

/// Returns the class index for an allocation of `size` bytes.
pub fn class_for(size: usize) -> Option<usize> {
    SLAB_CLASSES.iter().position(|&c| c >= size.max(1))
}

/// The slab heap. Holds volatile offsets only; all state is in NVM.
#[derive(Debug)]
pub struct SlabHeap {
    off: usize,
    first_frame: u32,
    frame_count: u32,
}

impl SlabHeap {
    /// Bytes of arena needed for `frame_count` frames.
    pub fn region_len(frame_count: u32) -> usize {
        align8(8 + 4 * SLAB_CLASSES.len()) + frame_count as usize * DESC_SIZE
    }

    fn heads_off(&self) -> usize {
        self.off + 8
    }

    fn desc_off(&self, rel: u32) -> usize {
        self.off + align8(8 + 4 * SLAB_CLASSES.len()) + rel as usize * DESC_SIZE
    }

    /// Formats a fresh slab heap.
    pub fn format(dev: &NvmDevice, layout: &AllocLayout) -> Self {
        let s = Self {
            off: layout.slab_off,
            first_frame: layout.first_frame,
            frame_count: layout.frame_count,
        };
        s.reformat(dev);
        s
    }

    /// Re-initializes to "no slabs". Unjournaled and idempotent.
    pub fn reformat(&self, dev: &NvmDevice) {
        let meta = dev.meta();
        meta.write_u64(self.off, MAGIC);
        for c in 0..SLAB_CLASSES.len() {
            meta.write_u32(self.heads_off() + 4 * c, NONE);
        }
        for r in 0..self.frame_count {
            meta.write_u8(self.desc_off(r), 0);
        }
    }

    /// Reattaches to already-formatted metadata.
    ///
    /// # Panics
    ///
    /// Panics if the magic number does not match.
    pub fn attach(dev: &NvmDevice, layout: &AllocLayout) -> Self {
        assert_eq!(dev.meta().read_u64(layout.slab_off), MAGIC, "slab magic mismatch");
        Self {
            off: layout.slab_off,
            first_frame: layout.first_frame,
            frame_count: layout.frame_count,
        }
    }

    fn rel(&self, frame: FrameId) -> u32 {
        frame.0 - self.first_frame
    }

    fn objs_per_slab(class: usize) -> u32 {
        (PAGE_SIZE / SLAB_CLASSES[class]) as u32
    }

    fn full_mask(class: usize) -> u64 {
        let n = Self::objs_per_slab(class);
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    fn partial_push(&self, dev: &NvmDevice, tx: &mut Tx<'_>, class: usize, r: u32) {
        let head = dev.meta().read_u32(self.heads_off() + 4 * class);
        tx.write_u32(self.desc_off(r) + 4, head);
        tx.write_u32(self.desc_off(r) + 8, NONE);
        if head != NONE {
            tx.write_u32(self.desc_off(head) + 8, r);
        }
        tx.write_u32(self.heads_off() + 4 * class, r);
    }

    fn partial_remove(&self, dev: &NvmDevice, tx: &mut Tx<'_>, class: usize, r: u32) {
        let meta = dev.meta();
        let next = meta.read_u32(self.desc_off(r) + 4);
        let prev = meta.read_u32(self.desc_off(r) + 8);
        if prev == NONE {
            tx.write_u32(self.heads_off() + 4 * class, next);
        } else {
            tx.write_u32(self.desc_off(prev) + 4, next);
        }
        if next != NONE {
            tx.write_u32(self.desc_off(next) + 8, prev);
        }
    }

    /// Allocates `size` bytes.
    pub fn alloc(
        &self,
        dev: &NvmDevice,
        buddy: &Buddy,
        tx: &mut Tx<'_>,
        size: usize,
    ) -> Result<NvmAddr, AllocError> {
        let class = class_for(size).ok_or(AllocError::SizeTooLarge)?;
        let meta = dev.meta();
        let mut r = meta.read_u32(self.heads_off() + 4 * class);
        if r == NONE {
            // No partial slab: grow by one buddy frame.
            let frame = buddy.alloc(dev, tx, 0)?;
            r = self.rel(frame);
            tx.write_u8(self.desc_off(r), class as u8 + 1);
            tx.write_u64(self.desc_off(r) + 16, 0);
            self.partial_push(dev, tx, class, r);
        }
        let bitmap = meta.read_u64(self.desc_off(r) + 16);
        let slot = (!bitmap).trailing_zeros();
        debug_assert!(slot < Self::objs_per_slab(class));
        let new_bitmap = bitmap | (1u64 << slot);
        tx.write_u64(self.desc_off(r) + 16, new_bitmap);
        if new_bitmap == Self::full_mask(class) {
            self.partial_remove(dev, tx, class, r);
        }
        Ok(NvmAddr {
            frame: FrameId(r + self.first_frame),
            offset: slot * SLAB_CLASSES[class] as u32,
        })
    }

    /// Frees an object previously allocated with the same original `size`.
    pub fn free(
        &self,
        dev: &NvmDevice,
        buddy: &Buddy,
        tx: &mut Tx<'_>,
        addr: NvmAddr,
        size: usize,
    ) -> Result<(), AllocError> {
        let class = class_for(size).ok_or(AllocError::SizeTooLarge)?;
        let r = self.rel(addr.frame);
        if r >= self.frame_count {
            return Err(AllocError::InvalidFree);
        }
        let meta = dev.meta();
        let tag = meta.read_u8(self.desc_off(r));
        if tag as usize != class + 1 {
            return Err(AllocError::InvalidFree);
        }
        let csize = SLAB_CLASSES[class] as u32;
        if !addr.offset.is_multiple_of(csize) {
            return Err(AllocError::InvalidFree);
        }
        let slot = addr.offset / csize;
        if slot >= Self::objs_per_slab(class) {
            return Err(AllocError::InvalidFree);
        }
        let bitmap = meta.read_u64(self.desc_off(r) + 16);
        if bitmap & (1u64 << slot) == 0 {
            return Err(AllocError::InvalidFree);
        }
        let was_full = bitmap == Self::full_mask(class);
        let new_bitmap = bitmap & !(1u64 << slot);
        tx.write_u64(self.desc_off(r) + 16, new_bitmap);
        if new_bitmap == 0 {
            // Slab empty: return the frame to the buddy system.
            if !was_full {
                self.partial_remove(dev, tx, class, r);
            }
            tx.write_u8(self.desc_off(r), 0);
            buddy.free(dev, tx, addr.frame, 0)?;
        } else if was_full {
            self.partial_push(dev, tx, class, r);
        }
        Ok(())
    }

    /// Carves a specific live object during restore (mark-and-sweep).
    pub fn carve(
        &self,
        dev: &NvmDevice,
        buddy: &Buddy,
        tx: &mut Tx<'_>,
        addr: NvmAddr,
        size: usize,
    ) -> Result<(), AllocError> {
        let class = class_for(size).ok_or(AllocError::SizeTooLarge)?;
        let r = self.rel(addr.frame);
        if r >= self.frame_count {
            return Err(AllocError::InvalidFree);
        }
        let meta = dev.meta();
        let tag = meta.read_u8(self.desc_off(r));
        if tag == 0 {
            // Frame not yet a slab: claim it from the buddy system.
            buddy.carve(dev, tx, addr.frame, 0)?;
            tx.write_u8(self.desc_off(r), class as u8 + 1);
            tx.write_u64(self.desc_off(r) + 16, 0);
            self.partial_push(dev, tx, class, r);
        } else if tag as usize != class + 1 {
            return Err(AllocError::Overlap);
        }
        let csize = SLAB_CLASSES[class] as u32;
        if !addr.offset.is_multiple_of(csize) || addr.offset / csize >= Self::objs_per_slab(class) {
            return Err(AllocError::InvalidFree);
        }
        let slot = addr.offset / csize;
        let bitmap = meta.read_u64(self.desc_off(r) + 16);
        if bitmap & (1u64 << slot) != 0 {
            return Err(AllocError::Overlap);
        }
        let new_bitmap = bitmap | (1u64 << slot);
        tx.write_u64(self.desc_off(r) + 16, new_bitmap);
        if new_bitmap == Self::full_mask(class) {
            self.partial_remove(dev, tx, class, r);
        }
        Ok(())
    }

    /// Counts live objects across all slabs (scan; diagnostics only).
    pub fn live_objects(&self, dev: &NvmDevice) -> usize {
        let meta = dev.meta();
        let mut total = 0usize;
        for r in 0..self.frame_count {
            if meta.read_u8(self.desc_off(r)) != 0 {
                total += meta.read_u64(self.desc_off(r) + 16).count_ones() as usize;
            }
        }
        total
    }

    /// Counts frames currently used as slabs.
    pub fn slab_frames(&self, dev: &NvmDevice) -> usize {
        let meta = dev.meta();
        (0..self.frame_count).filter(|&r| meta.read_u8(self.desc_off(r)) != 0).count()
    }

    /// Verifies slab invariants.
    pub fn verify(&self, dev: &NvmDevice) -> Result<(), String> {
        let meta = dev.meta();
        let mut on_list = std::collections::HashSet::new();
        for (class, _) in SLAB_CLASSES.iter().enumerate() {
            let mut cur = meta.read_u32(self.heads_off() + 4 * class);
            let mut prev = NONE;
            let mut steps = 0;
            while cur != NONE {
                steps += 1;
                if steps > self.frame_count {
                    return Err(format!("slab class {class}: partial list cycle"));
                }
                let tag = meta.read_u8(self.desc_off(cur));
                if tag as usize != class + 1 {
                    return Err(format!("slab class {class}: list member {cur} has tag {tag}"));
                }
                let bitmap = meta.read_u64(self.desc_off(cur) + 16);
                if bitmap == Self::full_mask(class) {
                    return Err(format!("slab class {class}: full slab {cur} on partial list"));
                }
                if meta.read_u32(self.desc_off(cur) + 8) != prev {
                    return Err(format!("slab class {class}: bad prev link at {cur}"));
                }
                if !on_list.insert(cur) {
                    return Err(format!("slab frame {cur} on two partial lists"));
                }
                prev = cur;
                cur = meta.read_u32(self.desc_off(cur) + 4);
            }
        }
        for r in 0..self.frame_count {
            let tag = meta.read_u8(self.desc_off(r));
            if tag == 0 {
                continue;
            }
            let class = tag as usize - 1;
            if class >= SLAB_CLASSES.len() {
                return Err(format!("slab frame {r}: bad class tag {tag}"));
            }
            let bitmap = meta.read_u64(self.desc_off(r) + 16);
            let mask = Self::full_mask(class);
            if bitmap & !mask != 0 {
                return Err(format!("slab frame {r}: bitmap bits beyond object count"));
            }
            if bitmap == 0 {
                return Err(format!("slab frame {r}: empty slab not returned to buddy"));
            }
            let partial = bitmap != mask;
            if partial && !on_list.contains(&r) {
                return Err(format!("slab frame {r}: partial slab missing from list"));
            }
            if !partial && on_list.contains(&r) {
                return Err(format!("slab frame {r}: full slab on partial list"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use std::sync::Arc;
    use treesls_nvm::LatencyModel;

    fn setup(frames: u32) -> (Arc<NvmDevice>, Buddy, SlabHeap, Journal) {
        let layout = AllocLayout::for_device(0, frames);
        let dev = Arc::new(NvmDevice::new(
            frames as usize,
            layout.end_off,
            Arc::new(LatencyModel::disabled()),
        ));
        let j = Journal::format(&dev, layout.journal_off, layout.journal_records);
        let b = Buddy::format(&dev, &layout);
        let s = SlabHeap::format(&dev, &layout);
        (dev, b, s, j)
    }

    #[test]
    fn class_selection() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(64), Some(0));
        assert_eq!(class_for(65), Some(1));
        assert_eq!(class_for(2048), Some(SLAB_CLASSES.len() - 1));
        assert_eq!(class_for(2049), None);
    }

    #[test]
    fn addr_raw_roundtrip() {
        let a = NvmAddr { frame: FrameId(77), offset: 1920 };
        assert_eq!(NvmAddr::from_raw(a.to_raw()), a);
    }

    #[test]
    fn alloc_free_roundtrip() {
        let (dev, b, s, mut j) = setup(64);
        let a = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 100)).unwrap();
        assert_eq!(s.live_objects(&dev), 1);
        assert_eq!(s.slab_frames(&dev), 1);
        s.verify(&dev).unwrap();
        b.verify(&dev).unwrap();
        j.run(&dev, |tx| s.free(&dev, &b, tx, a, 100)).unwrap();
        assert_eq!(s.live_objects(&dev), 0);
        assert_eq!(s.slab_frames(&dev), 0);
        // Frame returned to buddy.
        assert_eq!(b.free_frames(&dev), 64);
        s.verify(&dev).unwrap();
        b.verify(&dev).unwrap();
    }

    #[test]
    fn fills_slab_then_grows() {
        let (dev, b, s, mut j) = setup(64);
        // 2048-byte class: 2 objects per slab.
        let a1 = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 2048)).unwrap();
        let a2 = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 2048)).unwrap();
        assert_eq!(a1.frame, a2.frame);
        assert_ne!(a1.offset, a2.offset);
        let a3 = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 2048)).unwrap();
        assert_ne!(a3.frame, a1.frame);
        assert_eq!(s.slab_frames(&dev), 2);
        s.verify(&dev).unwrap();
        // Free one from the full slab: it returns to the partial list and
        // serves the next allocation.
        j.run(&dev, |tx| s.free(&dev, &b, tx, a1, 2048)).unwrap();
        s.verify(&dev).unwrap();
        let a4 = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 2048)).unwrap();
        assert_eq!(a4, a1);
    }

    #[test]
    fn distinct_classes_use_distinct_slabs() {
        let (dev, b, s, mut j) = setup(64);
        let small = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 64)).unwrap();
        let large = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 1024)).unwrap();
        assert_ne!(small.frame, large.frame);
        s.verify(&dev).unwrap();
        j.run(&dev, |tx| s.free(&dev, &b, tx, small, 64)).unwrap();
        j.run(&dev, |tx| s.free(&dev, &b, tx, large, 1024)).unwrap();
        assert_eq!(b.free_frames(&dev), 64);
    }

    #[test]
    fn invalid_frees_rejected() {
        let (dev, b, s, mut j) = setup(64);
        let a = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 100)).unwrap();
        // Wrong size class.
        assert_eq!(
            j.run(&dev, |tx| s.free(&dev, &b, tx, a, 2000)),
            Err(AllocError::InvalidFree)
        );
        // Misaligned offset.
        let bad = NvmAddr { frame: a.frame, offset: a.offset + 1 };
        assert_eq!(j.run(&dev, |tx| s.free(&dev, &b, tx, bad, 100)), Err(AllocError::InvalidFree));
        // Dead slot.
        let dead = NvmAddr { frame: a.frame, offset: a.offset + 128 };
        assert_eq!(
            j.run(&dev, |tx| s.free(&dev, &b, tx, dead, 100)),
            Err(AllocError::InvalidFree)
        );
        // Double free.
        j.run(&dev, |tx| s.free(&dev, &b, tx, a, 100)).unwrap();
        assert_eq!(j.run(&dev, |tx| s.free(&dev, &b, tx, a, 100)), Err(AllocError::InvalidFree));
        s.verify(&dev).unwrap();
        b.verify(&dev).unwrap();
    }

    #[test]
    fn many_allocations_unique_addresses() {
        let (dev, b, s, mut j) = setup(256);
        let mut addrs = std::collections::HashSet::new();
        for _ in 0..500 {
            let a = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 64)).unwrap();
            assert!(addrs.insert(a), "duplicate address {a:?}");
        }
        assert_eq!(s.live_objects(&dev), 500);
        s.verify(&dev).unwrap();
        b.verify(&dev).unwrap();
        for a in addrs {
            j.run(&dev, |tx| s.free(&dev, &b, tx, a, 64)).unwrap();
        }
        assert_eq!(b.free_frames(&dev), 256);
    }

    #[test]
    fn carve_rebuilds_live_objects() {
        let (dev, b, s, mut j) = setup(64);
        let a1 = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 256)).unwrap();
        let a2 = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 256)).unwrap();
        // Simulate restore: reformat and carve only a1.
        b.reformat(&dev);
        s.reformat(&dev);
        j.run(&dev, |tx| s.carve(&dev, &b, tx, a1, 256)).unwrap();
        s.verify(&dev).unwrap();
        b.verify(&dev).unwrap();
        assert_eq!(s.live_objects(&dev), 1);
        // Double carve of the same object is an overlap.
        assert_eq!(j.run(&dev, |tx| s.carve(&dev, &b, tx, a1, 256)), Err(AllocError::Overlap));
        // a2's slot can be re-used by fresh allocations now.
        let fresh = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 256)).unwrap();
        assert_eq!(fresh, a2);
    }

    #[test]
    fn crash_injection_during_slab_ops_recovers() {
        for cut in 0..150u64 {
            let layout = AllocLayout::for_device(0, 64);
            let dev =
                Arc::new(NvmDevice::new(64, layout.end_off, Arc::new(LatencyModel::disabled())));
            let mut j = Journal::format(&dev, layout.journal_off, layout.journal_records);
            let b = Buddy::format(&dev, &layout);
            let s = SlabHeap::format(&dev, &layout);
            let a = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 512)).unwrap();
            dev.meta().arm_crash_after(cut);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = j.run(&dev, |tx| s.alloc(&dev, &b, tx, 512));
                let _ = j.run(&dev, |tx| s.free(&dev, &b, tx, a, 512));
            }));
            dev.meta().disarm_crash();
            let _ = Journal::recover(&dev, layout.journal_off, layout.journal_records);
            let b2 = Buddy::attach(&dev, &layout);
            let s2 = SlabHeap::attach(&dev, &layout);
            b2.verify(&dev).unwrap_or_else(|e| panic!("cut={cut}: buddy: {e}"));
            s2.verify(&dev).unwrap_or_else(|e| panic!("cut={cut}: slab: {e}"));
        }
    }
}
