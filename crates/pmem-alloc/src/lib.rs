//! The failure-resilient NVM allocator of the TreeSLS checkpoint manager.
//!
//! The checkpoint manager "uses a buddy system to manage all NVM resources
//! in TreeSLS" with "slab systems ... to facilitate the allocation of small
//! fixed-sized objects", and "leverages redo/undo journaling to maintain the
//! crash consistency of the checkpoint manager" (§3 of the paper). This
//! crate implements exactly that trio:
//!
//! * [`buddy`] — a binary buddy allocator over NVM page frames whose free
//!   lists and per-frame block headers live *inside* the NVM metadata arena,
//!   so they survive power failures byte-for-byte.
//! * [`slab`] — size-class slab caches carved out of buddy frames, for the
//!   small fixed-size records of the backup capability tree.
//! * [`journal`] — an undo journal: every metadata word is logged before it
//!   is overwritten, and an interrupted operation is rolled back during
//!   recovery, making every alloc/free atomic with respect to crashes.
//!
//! The allocator is deliberately *not* checkpointed (it would otherwise have
//! to checkpoint itself); instead it is repaired on reboot by
//! [`PmemAllocator::recover`] and then reconciled against the reachable set
//! of the backup capability tree (mark-and-sweep via
//! [`PmemAllocator::rebuild`]), mirroring step ❼ of the paper's Figure 5.

pub mod buddy;
pub mod error;
pub mod journal;
pub mod layout;
pub mod slab;

use std::sync::Arc;

use parking_lot::Mutex;
use treesls_nvm::{FrameId, NvmDevice};

pub use error::AllocError;
pub use layout::AllocLayout;
pub use slab::NvmAddr;

use buddy::Buddy;
use journal::Journal;
use slab::SlabHeap;

/// Statistics describing the allocator's current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Total frames managed by the buddy system.
    pub total_frames: usize,
    /// Frames currently free (summed over all orders).
    pub free_frames: usize,
    /// Live slab objects.
    pub live_slab_objects: usize,
    /// Frames currently backing slabs.
    pub slab_frames: usize,
}

/// The combined buddy + slab allocator with undo journaling.
///
/// All public operations are atomic with respect to simulated power
/// failures: each takes a journal transaction around its metadata writes, so
/// recovery either observes the operation fully applied or fully rolled
/// back.
#[derive(Debug)]
pub struct PmemAllocator {
    dev: Arc<NvmDevice>,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    buddy: Buddy,
    slab: SlabHeap,
    journal: Journal,
}

impl PmemAllocator {
    /// Formats the metadata region and creates a fresh allocator managing
    /// frames `[layout.first_frame, layout.first_frame + layout.frame_count)`.
    pub fn format(dev: Arc<NvmDevice>, layout: AllocLayout) -> Self {
        let journal = Journal::format(&dev, layout.journal_off, layout.journal_records);
        let buddy = Buddy::format(&dev, &layout);
        let slab = SlabHeap::format(&dev, &layout);
        Self { dev, inner: Mutex::new(Inner { buddy, slab, journal }) }
    }

    /// Recovers the allocator after a power failure.
    ///
    /// First replays the undo journal to roll back any in-flight operation,
    /// then reattaches to the (now consistent) metadata.
    pub fn recover(dev: Arc<NvmDevice>, layout: AllocLayout) -> Self {
        let journal = Journal::recover(&dev, layout.journal_off, layout.journal_records);
        let buddy = Buddy::attach(&dev, &layout);
        let slab = SlabHeap::attach(&dev, &layout);
        Self { dev, inner: Mutex::new(Inner { buddy, slab, journal }) }
    }

    /// Allocates a block of `1 << order` contiguous frames.
    pub fn alloc_frames(&self, order: u8) -> Result<FrameId, AllocError> {
        let mut g = self.inner.lock();
        let Inner { buddy, journal, .. } = &mut *g;
        journal.run(&self.dev, |j| buddy.alloc(&self.dev, j, order))
    }

    /// Frees a block previously returned by [`alloc_frames`] with the same
    /// `order`.
    ///
    /// [`alloc_frames`]: Self::alloc_frames
    pub fn free_frames(&self, frame: FrameId, order: u8) -> Result<(), AllocError> {
        let mut g = self.inner.lock();
        let Inner { buddy, journal, .. } = &mut *g;
        journal.run(&self.dev, |j| buddy.free(&self.dev, j, frame, order))
    }

    /// Allocates one frame (order 0); convenience for the page-fault path.
    pub fn alloc_page(&self) -> Result<FrameId, AllocError> {
        self.alloc_frames(0)
    }

    /// Frees one frame (order 0).
    pub fn free_page(&self, frame: FrameId) -> Result<(), AllocError> {
        self.free_frames(frame, 0)
    }

    /// Allocates `size` bytes from the slab caches.
    ///
    /// Sizes above the largest class are rejected; use frame allocation for
    /// bulk data.
    pub fn slab_alloc(&self, size: usize) -> Result<NvmAddr, AllocError> {
        let mut g = self.inner.lock();
        let Inner { buddy, slab, journal } = &mut *g;
        journal.run(&self.dev, |j| slab.alloc(&self.dev, buddy, j, size))
    }

    /// Frees a slab allocation of the given original `size`.
    pub fn slab_free(&self, addr: NvmAddr, size: usize) -> Result<(), AllocError> {
        let mut g = self.inner.lock();
        let Inner { buddy, slab, journal } = &mut *g;
        journal.run(&self.dev, |j| slab.free(&self.dev, buddy, j, addr, size))
    }

    /// Point-in-time occupancy statistics.
    pub fn stats(&self) -> AllocStats {
        let g = self.inner.lock();
        AllocStats {
            total_frames: g.buddy.frame_count(),
            free_frames: g.buddy.free_frames(&self.dev),
            live_slab_objects: g.slab.live_objects(&self.dev),
            slab_frames: g.slab.slab_frames(&self.dev),
        }
    }

    /// Verifies internal invariants, returning a description of the first
    /// violation found.
    ///
    /// Checked invariants: free lists are well-formed doubly-linked lists,
    /// no block appears on two lists, buddies of free blocks are not both
    /// free at the same order (they would have merged), and every frame is
    /// accounted for exactly once.
    pub fn verify(&self) -> Result<(), String> {
        let g = self.inner.lock();
        g.buddy.verify(&self.dev)?;
        g.slab.verify(&self.dev)
    }

    /// Rebuilds the allocator state from the reachable set during restore.
    ///
    /// After a crash, allocations performed since the last checkpoint refer
    /// to objects that the restore rolls back; the paper identifies and
    /// undoes them "by comparing system's state at crash with the last
    /// checkpoint's state". `reachable_blocks` are the `(frame, order)`
    /// buddy blocks referenced by the recovered system, and
    /// `reachable_slab_objs` the `(addr, size)` slab objects. Everything
    /// else returns to the free lists.
    pub fn rebuild(
        &self,
        reachable_blocks: &[(FrameId, u8)],
        reachable_slab_objs: &[(NvmAddr, usize)],
    ) -> Result<(), AllocError> {
        let mut g = self.inner.lock();
        let Inner { buddy, slab, journal } = &mut *g;
        // Reformatting is idempotent; a crash mid-rebuild restarts it.
        buddy.reformat(&self.dev);
        slab.reformat(&self.dev);
        for &(frame, order) in reachable_blocks {
            journal.run(&self.dev, |j| buddy.carve(&self.dev, j, frame, order))?;
        }
        for &(addr, size) in reachable_slab_objs {
            journal.run(&self.dev, |j| slab.carve(&self.dev, buddy, j, addr, size))?;
        }
        Ok(())
    }

    /// Torn/corrupt journal tail records truncated by the last recovery
    /// (0 for a freshly formatted allocator or a clean log).
    pub fn journal_truncated(&self) -> u64 {
        self.inner.lock().journal.truncated_records()
    }

    /// Most undo records any single transaction has logged since boot —
    /// the journal-capacity telemetry surfaced by the metrics registry.
    pub fn journal_high_water(&self) -> u64 {
        self.inner.lock().journal.high_water_records()
    }

    /// The device this allocator manages.
    pub fn device(&self) -> &Arc<NvmDevice> {
        &self.dev
    }
}
