//! On-NVM layout of the allocator metadata.
//!
//! The metadata arena of the [`NvmDevice`](treesls_nvm::NvmDevice) is carved
//! into fixed regions at format time. Offsets are bytes from the start of
//! the arena. The first [`AllocLayout::GLOBAL_META_RESERVED`] bytes are left
//! for the checkpoint manager's global metadata (global version number,
//! commit record, backup-tree root — see `treesls-checkpoint`).

/// Maximum buddy order: blocks range from 1 frame (4 KiB) to
/// `1 << MAX_ORDER` frames (4 MiB).
pub const MAX_ORDER: u8 = 10;

/// Slab size classes in bytes. Classes are powers of two so a 4 KiB slab
/// frame holds at most 64 objects and its occupancy fits a `u64` bitmap.
pub const SLAB_CLASSES: &[usize] = &[64, 128, 256, 512, 1024, 2048];

/// Byte layout of the allocator's metadata regions.
///
/// Construct with [`AllocLayout::for_device`], which sizes every region
/// from the device's frame count and packs them after the reserved global
/// metadata area.
#[derive(Debug, Clone, Copy)]
pub struct AllocLayout {
    /// First frame id managed by the buddy system.
    pub first_frame: u32,
    /// Number of frames managed.
    pub frame_count: u32,
    /// Offset of the undo journal header.
    pub journal_off: usize,
    /// Capacity of the undo journal in records.
    pub journal_records: usize,
    /// Offset of the buddy header (magic, counts, free-list heads).
    pub buddy_off: usize,
    /// Offset of the slab region (class heads + per-frame descriptors).
    pub slab_off: usize,
    /// Offset of the flight-recorder event ring (cache-line aligned; see
    /// `treesls-obs`).
    pub recorder_off: usize,
    /// Capacity of the flight-recorder ring in 64-byte slots.
    pub recorder_slots: usize,
    /// Total metadata bytes consumed (for arena sizing).
    pub end_off: usize,
}

impl AllocLayout {
    /// Bytes at the start of the arena reserved for the checkpoint
    /// manager's global metadata.
    pub const GLOBAL_META_RESERVED: usize = 4096;

    /// Default journal capacity in records.
    ///
    /// A single buddy alloc/free touches O(`MAX_ORDER`) list words; slabs a
    /// handful more. 512 records is an order of magnitude of headroom.
    pub const DEFAULT_JOURNAL_RECORDS: usize = 512;

    /// Size of one flight-recorder slot in bytes (one cache line).
    ///
    /// Must equal `treesls_obs::SLOT_LEN`; the recorder's append is a
    /// single-cache-line store, which is what makes it atomic-or-absent
    /// under every persistence model (see `OBSERVABILITY.md`).
    pub const RECORDER_SLOT_LEN: usize = 64;

    /// Default flight-recorder capacity in slots (16 KiB of arena).
    pub const DEFAULT_RECORDER_SLOTS: usize = 256;

    /// Computes the layout for a device managing `frame_count` frames
    /// starting at frame `first_frame`.
    pub fn for_device(first_frame: u32, frame_count: u32) -> Self {
        let journal_off = Self::GLOBAL_META_RESERVED;
        let journal_records = Self::DEFAULT_JOURNAL_RECORDS;
        let journal_len = crate::journal::Journal::region_len(journal_records);
        let buddy_off = align8(journal_off + journal_len);
        let buddy_len = crate::buddy::Buddy::region_len(frame_count);
        let slab_off = align8(buddy_off + buddy_len);
        let slab_len = crate::slab::SlabHeap::region_len(frame_count);
        let recorder_off = align_to(slab_off + slab_len, Self::RECORDER_SLOT_LEN);
        let recorder_slots = Self::DEFAULT_RECORDER_SLOTS;
        let end_off = align8(recorder_off + recorder_slots * Self::RECORDER_SLOT_LEN);
        Self {
            first_frame,
            frame_count,
            journal_off,
            journal_records,
            buddy_off,
            slab_off,
            recorder_off,
            recorder_slots,
            end_off,
        }
    }

    /// Returns the minimum metadata-arena length for `frame_count` frames.
    pub fn required_meta_len(frame_count: u32) -> usize {
        Self::for_device(0, frame_count).end_off
    }
}

pub(crate) fn align8(x: usize) -> usize {
    (x + 7) & !7
}

/// Rounds `x` up to a multiple of `to` (a power of two).
fn align_to(x: usize, to: usize) -> usize {
    (x + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let l = AllocLayout::for_device(0, 1024);
        assert!(l.journal_off >= AllocLayout::GLOBAL_META_RESERVED);
        assert!(l.buddy_off > l.journal_off);
        assert!(l.slab_off > l.buddy_off);
        assert!(l.recorder_off > l.slab_off);
        assert!(l.end_off >= l.recorder_off + l.recorder_slots * AllocLayout::RECORDER_SLOT_LEN);
    }

    #[test]
    fn recorder_region_is_cache_line_aligned() {
        for frames in [64u32, 1024, 16384] {
            let l = AllocLayout::for_device(0, frames);
            assert_eq!(l.recorder_off % AllocLayout::RECORDER_SLOT_LEN, 0);
            assert_eq!(l.recorder_slots, AllocLayout::DEFAULT_RECORDER_SLOTS);
        }
    }

    #[test]
    fn layout_scales_with_frames() {
        let small = AllocLayout::required_meta_len(64);
        let large = AllocLayout::required_meta_len(65536);
        assert!(large > small);
    }

    #[test]
    fn align8_works() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
    }
}
