//! Allocator error types.

use std::fmt;

/// Errors returned by the NVM allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block of the requested order (or larger) exists.
    OutOfMemory,
    /// The requested order exceeds the maximum supported block size.
    OrderTooLarge,
    /// A free targeted a block that is not currently allocated at that
    /// address/order, or a slab free targeted a dead object.
    InvalidFree,
    /// The requested slab size exceeds the largest size class.
    SizeTooLarge,
    /// A rebuild tried to carve a block that overlaps an already carved one.
    Overlap,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of NVM frames"),
            AllocError::OrderTooLarge => write!(f, "requested order exceeds maximum"),
            AllocError::InvalidFree => write!(f, "free of unallocated or mismatched block"),
            AllocError::SizeTooLarge => write!(f, "slab size exceeds largest class"),
            AllocError::Overlap => write!(f, "rebuild carve overlaps existing block"),
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(AllocError::OutOfMemory.to_string().contains("NVM"));
        assert!(AllocError::InvalidFree.to_string().contains("free"));
    }
}
