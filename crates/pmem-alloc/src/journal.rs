//! Undo journal for allocator metadata.
//!
//! Every mutation of buddy/slab metadata goes through a [`Tx`], which logs
//! the old value of each word to a persistent journal area *before*
//! overwriting it. If power fails mid-operation, [`Journal::recover`] walks
//! the log backwards and restores the old values, so the allocator state is
//! always "the operation never happened" or "the operation completed" —
//! the atomicity the paper's checkpoint manager requires for its in-flight
//! malloc/free operations.
//!
//! Persistent layout at `off`:
//!
//! ```text
//! +0   txid   u64   0 = no transaction in flight (commit point)
//! +8   count  u64   number of valid records
//! +16  records[cap] each 32 bytes: { offset u64, old u64, len u64,
//!                                    crc u32, pad u32 }
//! ```
//!
//! Every record carries a CRC-32 over its payload. Replay forward-scans
//! the claimed `count` and treats the first record that fails validation
//! as the **end of the log** (truncate-and-continue): with the flush/fence
//! ordering below only the in-flight tail record can ever be torn, so
//! dropping it is exactly the "operation never happened" semantics. The
//! number of truncated records is surfaced through
//! [`Journal::truncated_records`] into the `RecoveryReport`.
//!
//! ADR ordering contract (all no-ops under eADR):
//!
//! 1. transaction open: `count = 0`, `txid` → flush + fence before any
//!    record or target store;
//! 2. each record (and the count covering it) is flushed + fenced before
//!    its target word is overwritten — the undo image is durable first;
//! 3. commit: a full persist barrier drains the target stores, then
//!    `txid = 0` (the commit point) gets its own flush + fence.

use treesls_nvm::{crc32, MetaArena, NvmDevice};

use crate::error::AllocError;

const REC_SIZE: usize = 32;
const HDR_SIZE: usize = 16;

/// Encodes a record's payload for checksumming.
fn record_crc(target: u64, old: u64, len: u64) -> u32 {
    let mut buf = [0u8; 24];
    buf[..8].copy_from_slice(&target.to_le_bytes());
    buf[8..16].copy_from_slice(&old.to_le_bytes());
    buf[16..].copy_from_slice(&len.to_le_bytes());
    crc32(&buf)
}

/// Reads and validates the record at arena offset `rec`; `None` if its
/// checksum fails or its length field is not a legal word size.
fn read_record(meta: &MetaArena, rec: usize) -> Option<(usize, u64, u64)> {
    let target = meta.read_u64(rec);
    let old = meta.read_u64(rec + 8);
    let len = meta.read_u64(rec + 16);
    if meta.read_u32(rec + 24) != record_crc(target, old, len) {
        return None;
    }
    matches!(len, 1 | 4 | 8).then_some((target as usize, old, len))
}

/// Applies one undo record.
fn undo(meta: &MetaArena, target: usize, old: u64, len: u64) {
    match len {
        1 => meta.write_u8(target, old as u8),
        4 => meta.write_u32(target, old as u32),
        8 => meta.write_u64(target, old),
        _ => unreachable!("read_record validated the length"),
    }
}

/// The undo journal. One instance guards one allocator.
#[derive(Debug)]
pub struct Journal {
    off: usize,
    cap: usize,
    next_tx: u64,
    /// Torn/corrupt tail records dropped by the last recovery.
    truncated: u64,
    /// Most records any single transaction has logged (capacity telemetry).
    high_water: u64,
}

impl Journal {
    /// Bytes of arena needed for a journal with `records` capacity.
    pub fn region_len(records: usize) -> usize {
        HDR_SIZE + records * REC_SIZE
    }

    /// Formats a fresh (idle) journal at `off`.
    pub fn format(dev: &NvmDevice, off: usize, cap: usize) -> Self {
        let meta = dev.meta();
        meta.write_u64(off, 0);
        meta.write_u64(off + 8, 0);
        meta.flush(off, HDR_SIZE);
        meta.fence();
        Self { off, cap, next_tx: 1, truncated: 0, high_water: 0 }
    }

    /// Most undo records any single transaction has logged since this
    /// handle was created — how close the journal has come to its
    /// [`region_len`](Self::region_len) capacity.
    pub fn high_water_records(&self) -> u64 {
        self.high_water
    }

    /// Torn/corrupt tail records dropped during the last `recover` (0 for
    /// a freshly formatted journal or a clean log).
    pub fn truncated_records(&self) -> u64 {
        self.truncated
    }

    /// Recovers the journal after a power failure, rolling back any
    /// in-flight transaction. A record that fails its checksum ends the
    /// log: it (and anything the header claims beyond it) is truncated
    /// instead of aborting recovery.
    pub fn recover(dev: &NvmDevice, off: usize, cap: usize) -> Self {
        let meta = dev.meta();
        let txid = meta.read_u64(off);
        let mut truncated = 0u64;
        if txid != 0 {
            treesls_nvm::crash_site!(dev.crash_schedule(), "journal.pre_rollback");
            let count = (meta.read_u64(off + 8) as usize).min(cap);
            // Forward-validate: the first torn record is the end of log.
            let mut valid = Vec::with_capacity(count);
            for i in 0..count {
                match read_record(meta, off + HDR_SIZE + i * REC_SIZE) {
                    Some(rec) => valid.push(rec),
                    None => {
                        truncated = (count - i) as u64;
                        break;
                    }
                }
            }
            // Undo in reverse order: later records may overwrite earlier
            // ones, and the oldest logged value must win.
            for &(target, old, len) in valid.iter().rev() {
                undo(meta, target, old, len);
            }
            dev.persist_barrier();
            meta.write_u64(off + 8, 0);
            // Commit point of the rollback itself.
            meta.write_u64(off, 0);
            meta.flush(off, HDR_SIZE);
            meta.fence();
        }
        Self { off, cap, next_tx: txid.wrapping_add(1).max(1), truncated, high_water: 0 }
    }

    /// Runs `f` inside a journal transaction.
    ///
    /// On `Ok` the transaction commits; on `Err` all logged writes are
    /// rolled back before returning, so failed operations leave no trace.
    pub fn run<T>(
        &mut self,
        dev: &NvmDevice,
        f: impl FnOnce(&mut Tx<'_>) -> Result<T, AllocError>,
    ) -> Result<T, AllocError> {
        let meta = dev.meta();
        meta.write_u64(self.off + 8, 0);
        meta.write_u64(self.off, self.next_tx);
        // The open header must be durable before any record or target
        // store, or recovery could see records without a transaction.
        meta.flush(self.off, HDR_SIZE);
        meta.fence();
        treesls_nvm::crash_site!(dev.crash_schedule(), "journal.tx_open");
        self.next_tx = self.next_tx.wrapping_add(1).max(1);
        let mut tx = Tx { dev, off: self.off, cap: self.cap, count: 0 };
        let result = f(&mut tx);
        self.high_water = self.high_water.max(tx.count as u64);
        match result {
            Ok(v) => {
                treesls_nvm::crash_site!(dev.crash_schedule(), "journal.pre_commit");
                // All target stores drain before the commit point.
                dev.persist_barrier();
                meta.write_u64(self.off, 0);
                meta.flush(self.off, 8);
                meta.fence();
                Ok(v)
            }
            Err(e) => {
                let count = tx.count;
                for i in (0..count).rev() {
                    let rec = self.off + HDR_SIZE + i * REC_SIZE;
                    let (target, old, len) =
                        read_record(meta, rec).expect("just-written record is valid");
                    undo(meta, target, old, len);
                }
                dev.persist_barrier();
                meta.write_u64(self.off + 8, 0);
                meta.write_u64(self.off, 0);
                meta.flush(self.off, HDR_SIZE);
                meta.fence();
                Err(e)
            }
        }
    }
}

/// An open journal transaction; all metadata writes go through it.
#[derive(Debug)]
pub struct Tx<'a> {
    dev: &'a NvmDevice,
    off: usize,
    cap: usize,
    count: usize,
}

impl Tx<'_> {
    fn log(&mut self, target: usize, old: u64, len: u64) {
        assert!(self.count < self.cap, "journal overflow: raise journal_records");
        let rec = self.off + HDR_SIZE + self.count * REC_SIZE;
        let meta = self.dev.meta();
        meta.write_u64(rec, target as u64);
        meta.write_u64(rec + 8, old);
        meta.write_u64(rec + 16, len);
        meta.write_u32(rec + 24, record_crc(target as u64, old, len));
        self.count += 1;
        meta.write_u64(self.off + 8, self.count as u64);
        // The undo image (and the count covering it) must be durable
        // before the target word is overwritten.
        meta.flush(rec, REC_SIZE);
        meta.flush(self.off + 8, 8);
        meta.fence();
    }

    /// Journaled `u8` write at arena offset `target`.
    pub fn write_u8(&mut self, target: usize, v: u8) {
        let old = self.dev.meta().read_u8(target);
        if old == v {
            return;
        }
        self.log(target, old as u64, 1);
        self.dev.meta().write_u8(target, v);
    }

    /// Journaled `u32` write at arena offset `target`.
    pub fn write_u32(&mut self, target: usize, v: u32) {
        let old = self.dev.meta().read_u32(target);
        if old == v {
            return;
        }
        self.log(target, old as u64, 4);
        self.dev.meta().write_u32(target, v);
    }

    /// Journaled `u64` write at arena offset `target`.
    pub fn write_u64(&mut self, target: usize, v: u64) {
        let old = self.dev.meta().read_u64(target);
        if old == v {
            return;
        }
        self.log(target, old, 8);
        self.dev.meta().write_u64(target, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use treesls_nvm::LatencyModel;

    fn dev() -> Arc<NvmDevice> {
        Arc::new(NvmDevice::new(4, 4096, Arc::new(LatencyModel::disabled())))
    }

    #[test]
    fn committed_tx_persists() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        j.run(&d, |tx| {
            tx.write_u64(1000, 42);
            tx.write_u32(1008, 7);
            Ok(())
        })
        .unwrap();
        assert_eq!(d.meta().read_u64(1000), 42);
        assert_eq!(d.meta().read_u32(1008), 7);
        // Journal is idle after commit.
        assert_eq!(d.meta().read_u64(0), 0);
    }

    #[test]
    fn failed_tx_rolls_back() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 11);
        let r: Result<(), AllocError> = j.run(&d, |tx| {
            tx.write_u64(1000, 99);
            Err(AllocError::OutOfMemory)
        });
        assert_eq!(r, Err(AllocError::OutOfMemory));
        assert_eq!(d.meta().read_u64(1000), 11);
    }

    #[test]
    fn recover_rolls_back_in_flight_tx() {
        let d = dev();
        let j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 5);
        d.meta().write_u64(1008, 6);
        // Simulate a crash mid-transaction: run the writes but "lose power"
        // before the commit by reproducing run()'s prefix manually.
        d.meta().write_u64(8, 0);
        d.meta().write_u64(0, 77); // txid
        let mut tx = Tx { dev: &d, off: 0, cap: 16, count: 0 };
        tx.write_u64(1000, 500);
        tx.write_u64(1008, 600);
        let _ = tx;
        // No commit. Power comes back:
        let j2 = Journal::recover(&d, 0, 16);
        assert_eq!(d.meta().read_u64(1000), 5);
        assert_eq!(d.meta().read_u64(1008), 6);
        assert_eq!(d.meta().read_u64(0), 0);
        assert_eq!(j2.truncated_records(), 0);
        let _ = j;
    }

    #[test]
    fn recover_of_idle_journal_is_noop() {
        let d = dev();
        let _ = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 123);
        let _ = Journal::recover(&d, 0, 16);
        assert_eq!(d.meta().read_u64(1000), 123);
    }

    #[test]
    fn overwrites_of_same_word_roll_back_to_oldest() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 1);
        let _ = j.run(&d, |tx| -> Result<(), AllocError> {
            tx.write_u64(1000, 2);
            tx.write_u64(1000, 3);
            Err(AllocError::InvalidFree)
        });
        assert_eq!(d.meta().read_u64(1000), 1);
    }

    #[test]
    fn noop_writes_are_not_logged() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 9);
        j.run(&d, |tx| {
            tx.write_u64(1000, 9);
            Ok(())
        })
        .unwrap();
        // Count stayed zero (offset +8).
        assert_eq!(d.meta().read_u64(8), 0);
    }

    #[test]
    fn torn_tail_record_is_truncated_not_fatal() {
        let d = dev();
        let _ = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 5);
        // Open a transaction with one valid record...
        d.meta().write_u64(0, 9); // txid
        let mut tx = Tx { dev: &d, off: 0, cap: 16, count: 0 };
        tx.write_u64(1000, 50);
        let _ = tx;
        // ...then fake a torn second record: bump the count past a record
        // whose CRC was never written (all-zero body, garbage target).
        let rec1 = HDR_SIZE + REC_SIZE;
        d.meta().write_u64(rec1, 1008);
        d.meta().write_u64(8, 2);
        let j = Journal::recover(&d, 0, 16);
        // The valid record rolled back; the torn tail was dropped.
        assert_eq!(d.meta().read_u64(1000), 5);
        assert_eq!(d.meta().read_u64(0), 0);
        assert_eq!(j.truncated_records(), 1);
    }

    #[test]
    fn corrupt_record_length_ends_the_log() {
        let d = dev();
        let _ = Journal::format(&d, 0, 16);
        // A record with a valid CRC but an illegal length is still rejected.
        let rec = HDR_SIZE;
        d.meta().write_u64(rec, 1000);
        d.meta().write_u64(rec + 8, 1);
        d.meta().write_u64(rec + 16, 3); // not 1/4/8
        d.meta().write_u32(rec + 24, record_crc(1000, 1, 3));
        d.meta().write_u64(8, 1);
        d.meta().write_u64(0, 4); // txid: force a rollback pass
        let j = Journal::recover(&d, 0, 16);
        assert_eq!(j.truncated_records(), 1);
    }

    #[test]
    fn crash_injection_at_every_tick_recovers() {
        // Run a two-word transaction, crashing after every possible write,
        // and check recovery always restores the pre-state or the committed
        // post-state.
        for cut in 0..24u64 {
            let d = dev();
            let mut j = Journal::format(&d, 0, 16);
            d.meta().write_u64(1000, 5);
            d.meta().write_u64(1008, 6);
            d.meta().arm_crash_after(cut);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                j.run(&d, |tx| {
                    tx.write_u64(1000, 50);
                    tx.write_u64(1008, 60);
                    Ok(())
                })
            }));
            d.meta().disarm_crash();
            let _ = Journal::recover(&d, 0, 16);
            let a = d.meta().read_u64(1000);
            let b = d.meta().read_u64(1008);
            if result.is_ok() {
                assert_eq!((a, b), (50, 60), "cut={cut}");
            } else {
                assert_eq!((a, b), (5, 6), "cut={cut}: partial state survived");
            }
        }
    }

    #[test]
    fn torn_crash_at_every_cut_of_every_write_recovers() {
        // Same two-word transaction under the torn-write model: crash
        // mid-write at every cache-line cut class of every meta write.
        for skip in 0..24u64 {
            for cut in 0..2u32 {
                let d = dev();
                let mut j = Journal::format(&d, 0, 16);
                d.meta().write_u64(1000, 5);
                d.meta().write_u64(1008, 6);
                d.crash_schedule().arm(treesls_nvm::CrashPoint::TornWrite { skip, cut });
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    j.run(&d, |tx| {
                        tx.write_u64(1000, 50);
                        tx.write_u64(1008, 60);
                        Ok(())
                    })
                }));
                d.crash_schedule().disarm();
                let _ = Journal::recover(&d, 0, 16);
                let a = d.meta().read_u64(1000);
                let b = d.meta().read_u64(1008);
                if result.is_ok() {
                    assert_eq!((a, b), (50, 60), "skip={skip} cut={cut}");
                } else {
                    // A tear during the 8-byte aligned commit store cannot
                    // actually tear it (no interior line boundary), so the
                    // crash may land just *after* the commit point: both the
                    // pre- and post-states are legal, a mix is not.
                    assert!(
                        (a, b) == (5, 6) || (a, b) == (50, 60),
                        "skip={skip} cut={cut}: partial state ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn adr_crash_with_line_drops_at_every_tick_recovers() {
        // The same enumeration under ADR: at the crash point every pending
        // (unfenced) line is dropped, and recovery must still land on the
        // pre- or post-state thanks to the journal's flush/fence contract.
        for cut in 0..24u64 {
            let d = dev();
            d.set_persist_mode(treesls_nvm::PersistMode::Adr { reorder_window: 1024 });
            let mut j = Journal::format(&d, 0, 16);
            d.meta().write_u64(1000, 5);
            d.meta().write_u64(1008, 6);
            d.persist_barrier();
            d.meta().arm_crash_after(cut);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                j.run(&d, |tx| {
                    tx.write_u64(1000, 50);
                    tx.write_u64(1008, 60);
                    Ok(())
                })
            }));
            d.meta().disarm_crash();
            if result.is_err() {
                // Power failure: every unfenced line is lost.
                d.settle_crash(u64::MAX);
            }
            d.set_persist_mode(treesls_nvm::PersistMode::Eadr);
            let _ = Journal::recover(&d, 0, 16);
            let a = d.meta().read_u64(1000);
            let b = d.meta().read_u64(1008);
            if result.is_ok() {
                assert_eq!((a, b), (50, 60), "cut={cut}");
            } else {
                assert_eq!((a, b), (5, 6), "cut={cut}: partial state survived");
            }
        }
    }
}
