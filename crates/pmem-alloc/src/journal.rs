//! Undo journal for allocator metadata.
//!
//! Every mutation of buddy/slab metadata goes through a [`Tx`], which logs
//! the old value of each word to a persistent journal area *before*
//! overwriting it. If power fails mid-operation, [`Journal::recover`] walks
//! the log backwards and restores the old values, so the allocator state is
//! always "the operation never happened" or "the operation completed" —
//! the atomicity the paper's checkpoint manager requires for its in-flight
//! malloc/free operations.
//!
//! Persistent layout at `off`:
//!
//! ```text
//! +0   txid   u64   0 = no transaction in flight (commit point)
//! +8   count  u64   number of valid records
//! +16  records[cap] each 24 bytes: { offset u64, old u64, len u64 }
//! ```
//!
//! With eADR semantics every store is durable in program order, so writing
//! `txid = 0` is the commit point and needs no further fencing.

use treesls_nvm::NvmDevice;

use crate::error::AllocError;

const REC_SIZE: usize = 24;
const HDR_SIZE: usize = 16;

/// The undo journal. One instance guards one allocator.
#[derive(Debug)]
pub struct Journal {
    off: usize,
    cap: usize,
    next_tx: u64,
}

impl Journal {
    /// Bytes of arena needed for a journal with `records` capacity.
    pub fn region_len(records: usize) -> usize {
        HDR_SIZE + records * REC_SIZE
    }

    /// Formats a fresh (idle) journal at `off`.
    pub fn format(dev: &NvmDevice, off: usize, cap: usize) -> Self {
        dev.meta().write_u64(off, 0);
        dev.meta().write_u64(off + 8, 0);
        Self { off, cap, next_tx: 1 }
    }

    /// Recovers the journal after a power failure, rolling back any
    /// in-flight transaction.
    pub fn recover(dev: &NvmDevice, off: usize, cap: usize) -> Self {
        let meta = dev.meta();
        let txid = meta.read_u64(off);
        if txid != 0 {
            treesls_nvm::crash_site!(dev.crash_schedule(), "journal.pre_rollback");
            let count = meta.read_u64(off + 8) as usize;
            // Undo in reverse order: later records may overwrite earlier
            // ones, and the oldest logged value must win.
            for i in (0..count.min(cap)).rev() {
                let rec = off + HDR_SIZE + i * REC_SIZE;
                let target = meta.read_u64(rec) as usize;
                let old = meta.read_u64(rec + 8);
                let len = meta.read_u64(rec + 16);
                match len {
                    1 => meta.write_u8(target, old as u8),
                    4 => meta.write_u32(target, old as u32),
                    8 => meta.write_u64(target, old),
                    other => unreachable!("corrupt journal record length {other}"),
                }
            }
            meta.write_u64(off + 8, 0);
            // Commit point of the rollback itself.
            meta.write_u64(off, 0);
        }
        Self { off, cap, next_tx: txid.wrapping_add(1).max(1) }
    }

    /// Runs `f` inside a journal transaction.
    ///
    /// On `Ok` the transaction commits; on `Err` all logged writes are
    /// rolled back before returning, so failed operations leave no trace.
    pub fn run<T>(
        &mut self,
        dev: &NvmDevice,
        f: impl FnOnce(&mut Tx<'_>) -> Result<T, AllocError>,
    ) -> Result<T, AllocError> {
        let meta = dev.meta();
        meta.write_u64(self.off + 8, 0);
        meta.write_u64(self.off, self.next_tx);
        treesls_nvm::crash_site!(dev.crash_schedule(), "journal.tx_open");
        self.next_tx = self.next_tx.wrapping_add(1).max(1);
        let mut tx = Tx { dev, off: self.off, cap: self.cap, count: 0 };
        let result = f(&mut tx);
        match result {
            Ok(v) => {
                treesls_nvm::crash_site!(dev.crash_schedule(), "journal.pre_commit");
                // Commit point.
                meta.write_u64(self.off, 0);
                Ok(v)
            }
            Err(e) => {
                let count = tx.count;
                for i in (0..count).rev() {
                    let rec = self.off + HDR_SIZE + i * REC_SIZE;
                    let target = meta.read_u64(rec) as usize;
                    let old = meta.read_u64(rec + 8);
                    let len = meta.read_u64(rec + 16);
                    match len {
                        1 => meta.write_u8(target, old as u8),
                        4 => meta.write_u32(target, old as u32),
                        8 => meta.write_u64(target, old),
                        other => unreachable!("corrupt journal record length {other}"),
                    }
                }
                meta.write_u64(self.off + 8, 0);
                meta.write_u64(self.off, 0);
                Err(e)
            }
        }
    }
}

/// An open journal transaction; all metadata writes go through it.
#[derive(Debug)]
pub struct Tx<'a> {
    dev: &'a NvmDevice,
    off: usize,
    cap: usize,
    count: usize,
}

impl Tx<'_> {
    fn log(&mut self, target: usize, old: u64, len: u64) {
        assert!(self.count < self.cap, "journal overflow: raise journal_records");
        let rec = self.off + HDR_SIZE + self.count * REC_SIZE;
        let meta = self.dev.meta();
        meta.write_u64(rec, target as u64);
        meta.write_u64(rec + 8, old);
        meta.write_u64(rec + 16, len);
        self.count += 1;
        meta.write_u64(self.off + 8, self.count as u64);
    }

    /// Journaled `u8` write at arena offset `target`.
    pub fn write_u8(&mut self, target: usize, v: u8) {
        let old = self.dev.meta().read_u8(target);
        if old == v {
            return;
        }
        self.log(target, old as u64, 1);
        self.dev.meta().write_u8(target, v);
    }

    /// Journaled `u32` write at arena offset `target`.
    pub fn write_u32(&mut self, target: usize, v: u32) {
        let old = self.dev.meta().read_u32(target);
        if old == v {
            return;
        }
        self.log(target, old as u64, 4);
        self.dev.meta().write_u32(target, v);
    }

    /// Journaled `u64` write at arena offset `target`.
    pub fn write_u64(&mut self, target: usize, v: u64) {
        let old = self.dev.meta().read_u64(target);
        if old == v {
            return;
        }
        self.log(target, old, 8);
        self.dev.meta().write_u64(target, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use treesls_nvm::LatencyModel;

    fn dev() -> Arc<NvmDevice> {
        Arc::new(NvmDevice::new(4, 4096, Arc::new(LatencyModel::disabled())))
    }

    #[test]
    fn committed_tx_persists() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        j.run(&d, |tx| {
            tx.write_u64(1000, 42);
            tx.write_u32(1008, 7);
            Ok(())
        })
        .unwrap();
        assert_eq!(d.meta().read_u64(1000), 42);
        assert_eq!(d.meta().read_u32(1008), 7);
        // Journal is idle after commit.
        assert_eq!(d.meta().read_u64(0), 0);
    }

    #[test]
    fn failed_tx_rolls_back() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 11);
        let r: Result<(), AllocError> = j.run(&d, |tx| {
            tx.write_u64(1000, 99);
            Err(AllocError::OutOfMemory)
        });
        assert_eq!(r, Err(AllocError::OutOfMemory));
        assert_eq!(d.meta().read_u64(1000), 11);
    }

    #[test]
    fn recover_rolls_back_in_flight_tx() {
        let d = dev();
        let j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 5);
        d.meta().write_u64(1008, 6);
        // Simulate a crash mid-transaction: run the writes but "lose power"
        // before the commit by reproducing run()'s prefix manually.
        d.meta().write_u64(8, 0);
        d.meta().write_u64(0, 77); // txid
        let mut tx = Tx { dev: &d, off: 0, cap: 16, count: 0 };
        tx.write_u64(1000, 500);
        tx.write_u64(1008, 600);
        drop(tx);
        // No commit. Power comes back:
        let _j2 = Journal::recover(&d, 0, 16);
        assert_eq!(d.meta().read_u64(1000), 5);
        assert_eq!(d.meta().read_u64(1008), 6);
        assert_eq!(d.meta().read_u64(0), 0);
        let _ = j;
    }

    #[test]
    fn recover_of_idle_journal_is_noop() {
        let d = dev();
        let _ = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 123);
        let _ = Journal::recover(&d, 0, 16);
        assert_eq!(d.meta().read_u64(1000), 123);
    }

    #[test]
    fn overwrites_of_same_word_roll_back_to_oldest() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 1);
        let _ = j.run(&d, |tx| -> Result<(), AllocError> {
            tx.write_u64(1000, 2);
            tx.write_u64(1000, 3);
            Err(AllocError::InvalidFree)
        });
        assert_eq!(d.meta().read_u64(1000), 1);
    }

    #[test]
    fn noop_writes_are_not_logged() {
        let d = dev();
        let mut j = Journal::format(&d, 0, 16);
        d.meta().write_u64(1000, 9);
        j.run(&d, |tx| {
            tx.write_u64(1000, 9);
            Ok(())
        })
        .unwrap();
        // Count stayed zero (offset +8).
        assert_eq!(d.meta().read_u64(8), 0);
    }

    #[test]
    fn crash_injection_at_every_tick_recovers() {
        // Run a two-word transaction, crashing after every possible write,
        // and check recovery always restores the pre-state or the committed
        // post-state.
        for cut in 0..20u64 {
            let d = dev();
            let mut j = Journal::format(&d, 0, 16);
            d.meta().write_u64(1000, 5);
            d.meta().write_u64(1008, 6);
            d.meta().arm_crash_after(cut);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                j.run(&d, |tx| {
                    tx.write_u64(1000, 50);
                    tx.write_u64(1008, 60);
                    Ok(())
                })
            }));
            d.meta().disarm_crash();
            let _ = Journal::recover(&d, 0, 16);
            let a = d.meta().read_u64(1000);
            let b = d.meta().read_u64(1008);
            if result.is_ok() {
                assert_eq!((a, b), (50, 60), "cut={cut}");
            } else {
                assert_eq!((a, b), (5, 6), "cut={cut}: partial state survived");
            }
        }
    }
}
