//! Property-based tests for the failure-resilient NVM allocator.
//!
//! Random operation sequences (allocs and frees of random orders and slab
//! sizes) must preserve the allocator invariants checked by `verify()`,
//! never hand out overlapping blocks, and always recover to a consistent
//! state from a crash injected at a random metadata-write tick.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use treesls_nvm::{FrameId, LatencyModel, NvmDevice};
use treesls_pmem_alloc::{AllocError, AllocLayout, PmemAllocator};

const FRAMES: u32 = 256;

fn fresh() -> PmemAllocator {
    let layout = AllocLayout::for_device(0, FRAMES);
    let dev = Arc::new(NvmDevice::new(
        FRAMES as usize,
        layout.end_off,
        Arc::new(LatencyModel::disabled()),
    ));
    PmemAllocator::format(dev, layout)
}

#[derive(Debug, Clone)]
enum Op {
    AllocFrames(u8),
    FreeOldestBlock,
    SlabAlloc(usize),
    SlabFreeOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5).prop_map(Op::AllocFrames),
        Just(Op::FreeOldestBlock),
        (1usize..2048).prop_map(Op::SlabAlloc),
        Just(Op::SlabFreeOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let a = fresh();
        let mut blocks: Vec<(FrameId, u8)> = Vec::new();
        let mut slabs: Vec<(treesls_pmem_alloc::NvmAddr, usize)> = Vec::new();
        let mut owned: HashMap<u32, (u32, bool)> = HashMap::new(); // frame -> (span, live)
        for op in ops {
            match op {
                Op::AllocFrames(order) => match a.alloc_frames(order) {
                    Ok(f) => {
                        let span = 1u32 << order;
                        // No overlap with any live block.
                        for (&start, &(s, live)) in &owned {
                            if live {
                                prop_assert!(
                                    f.0 + span <= start || start + s <= f.0,
                                    "overlap: new [{}, {}) vs live [{}, {})",
                                    f.0, f.0 + span, start, start + s
                                );
                            }
                        }
                        owned.insert(f.0, (span, true));
                        blocks.push((f, order));
                    }
                    Err(AllocError::OutOfMemory) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                },
                Op::FreeOldestBlock => {
                    if !blocks.is_empty() {
                        let (f, order) = blocks.remove(0);
                        a.free_frames(f, order).expect("valid free");
                        owned.get_mut(&f.0).expect("tracked").1 = false;
                    }
                }
                Op::SlabAlloc(size) => match a.slab_alloc(size) {
                    Ok(addr) => slabs.push((addr, size)),
                    Err(AllocError::OutOfMemory) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                },
                Op::SlabFreeOldest => {
                    if !slabs.is_empty() {
                        let (addr, size) = slabs.remove(0);
                        a.slab_free(addr, size).expect("valid slab free");
                    }
                }
            }
            a.verify().map_err(TestCaseError::fail)?;
        }
        // Tear down everything: all frames must return.
        for (f, order) in blocks {
            a.free_frames(f, order).expect("final free");
        }
        for (addr, size) in slabs {
            a.slab_free(addr, size).expect("final slab free");
        }
        a.verify().map_err(TestCaseError::fail)?;
        prop_assert_eq!(a.stats().free_frames, FRAMES as usize);
    }

    #[test]
    fn crash_at_random_tick_recovers_consistent(
        seed_ops in proptest::collection::vec(op_strategy(), 1..40),
        cut in 0u64..400,
    ) {
        let layout = AllocLayout::for_device(0, FRAMES);
        let dev = Arc::new(NvmDevice::new(
            FRAMES as usize,
            layout.end_off,
            Arc::new(LatencyModel::disabled()),
        ));
        let a = PmemAllocator::format(Arc::clone(&dev), layout);
        let mut blocks: Vec<(FrameId, u8)> = Vec::new();
        let mut slabs: Vec<(treesls_pmem_alloc::NvmAddr, usize)> = Vec::new();
        dev.meta().arm_crash_after(cut);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for op in &seed_ops {
                match op {
                    Op::AllocFrames(order) => {
                        if let Ok(f) = a.alloc_frames(*order) {
                            blocks.push((f, *order));
                        }
                    }
                    Op::FreeOldestBlock => {
                        if !blocks.is_empty() {
                            let (f, order) = blocks.remove(0);
                            let _ = a.free_frames(f, order);
                        }
                    }
                    Op::SlabAlloc(size) => {
                        if let Ok(addr) = a.slab_alloc(*size) {
                            slabs.push((addr, *size));
                        }
                    }
                    Op::SlabFreeOldest => {
                        if !slabs.is_empty() {
                            let (addr, size) = slabs.remove(0);
                            let _ = a.slab_free(addr, size);
                        }
                    }
                }
            }
        }));
        dev.meta().disarm_crash();
        drop(a);
        // Power comes back: journal replay must leave a consistent heap.
        let recovered = PmemAllocator::recover(dev, layout);
        recovered.verify().map_err(TestCaseError::fail)?;
        // The recovered allocator still works.
        let f = recovered.alloc_page();
        prop_assert!(f.is_ok() || matches!(f, Err(AllocError::OutOfMemory)));
        let _ = result;
    }
}
