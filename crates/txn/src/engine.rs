//! Multi-key transactions over the copy-on-write store.
//!
//! The engine is optimistic concurrency control with first-committer-wins
//! validation, shaped by what external synchrony already guarantees:
//!
//! * **begin** snapshots the stable sequence number;
//! * **read** resolves against the transaction's own write set first
//!   (read-your-writes), then the stable root, recording the observed
//!   per-key version stamp in the read set;
//! * **write / delete** only buffer into the working set — the stable
//!   tree is untouched until commit;
//! * **commit** re-validates every read stamp and write target against
//!   the *current* stable root. A key whose stamp moved since the
//!   snapshot means another transaction committed first → the whole
//!   transaction aborts with [`TxnError::Conflict`] and leaves no trace.
//!   A valid transaction turns its working set into primary + index
//!   [`StoreOp`]s and publishes them through
//!   [`TxnStore::commit_apply`] — one selector flip, all or nothing.
//!
//! Working sets live in ordinary volatile service state, **not** in
//! checkpointed memory: an uncommitted transaction is supposed to die
//! with a crash. Committed state becomes durable at the next checkpoint
//! round, and the commit *response* is released by the NIC's commit gate
//! only after that round lands — so a client that saw "committed" can
//! never lose the transaction, and a client that never saw the response
//! may retry idempotently.
//!
//! Scans validate the stamps of the records they returned (no phantom
//! protection: a scan re-run at commit time may see inserts that slipped
//! between — the documented isolation level is snapshot-validated OCC,
//! not full serializability over predicates).

use treesls_extsync::MemIo;

use crate::store::{
    index_key, primary_key, space_range, CKey, Record, StoreOp, TxnStore, KEY_LEN, SPACE_INDEX,
    SPACE_PRIMARY, VAL_CAP,
};

/// Maximum buffered writes per transaction.
pub const MAX_WRITES: usize = 64;
/// Maximum tracked read stamps per transaction.
pub const MAX_READS: usize = 256;

/// Why a transaction operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// First-committer-wins validation failed: another transaction
    /// committed a conflicting key after this one's snapshot.
    Conflict,
    /// The transaction id is not active (never begun, already finished,
    /// or its working set died with a crash).
    UnknownTxn,
    /// The store ran out of nodes.
    Full,
    /// The working set hit [`MAX_WRITES`] / [`MAX_READS`].
    Limit,
    /// A memory access failed (fatal for the caller's request).
    Io,
}

/// One buffered mutation in a transaction's working set.
#[derive(Debug, Clone)]
pub struct WriteOp {
    /// Primary key.
    pub key: [u8; KEY_LEN],
    /// Secondary-index tag (all zeros = unindexed).
    pub tag: [u8; KEY_LEN],
    /// `Some(value)` = upsert, `None` = delete.
    pub val: Option<Vec<u8>>,
}

/// A live transaction's working set.
#[derive(Debug, Clone)]
pub struct TxnState {
    /// Stable sequence at begin.
    pub snapshot: u64,
    /// `(composite key, stamp observed)` for every read; stamp 0 = the
    /// key was absent.
    pub reads: Vec<(CKey, u64)>,
    /// Buffered writes in arrival order (later wins on the same key).
    pub writes: Vec<WriteOp>,
    /// Monotonic time at begin, for the commit-latency histogram.
    pub begun: std::time::Instant,
}

impl TxnState {
    /// Fresh working set against stable sequence `snapshot`.
    pub fn new(snapshot: u64) -> TxnState {
        TxnState {
            snapshot,
            reads: Vec::new(),
            writes: Vec::new(),
            begun: std::time::Instant::now(),
        }
    }

    fn record_read(&mut self, ckey: CKey, stamp: u64) -> Result<(), TxnError> {
        if let Some(r) = self.reads.iter_mut().find(|(k, _)| *k == ckey) {
            // Keep the first observation: validation checks that the
            // stamp never moved across the whole transaction.
            let _ = r;
            return Ok(());
        }
        if self.reads.len() >= MAX_READS {
            return Err(TxnError::Limit);
        }
        self.reads.push((ckey, stamp));
        Ok(())
    }

    /// The transaction's own latest buffered write for `key`, if any.
    pub fn own_write(&self, key: &[u8; KEY_LEN]) -> Option<&WriteOp> {
        self.writes.iter().rev().find(|w| w.key == *key)
    }
}

/// Reads `key` inside transaction `txn` (read-your-writes, then the
/// stable root), recording the read stamp for validation.
pub fn txn_read<M: MemIo>(
    store: &TxnStore,
    io: &M,
    txn: &mut TxnState,
    key: &[u8; KEY_LEN],
) -> Result<Option<Record>, TxnError> {
    if let Some(w) = txn.own_write(key) {
        return Ok(w.val.as_ref().map(|v| Record {
            ckey: primary_key(key),
            wseq: txn.snapshot,
            tag: w.tag,
            val: v.clone(),
        }));
    }
    let ckey = primary_key(key);
    let rec = store.get(io, &ckey).map_err(|_| TxnError::Io)?;
    txn.record_read(ckey, rec.as_ref().map_or(0, |r| r.wseq))?;
    Ok(rec)
}

/// Buffers an upsert/delete into transaction `txn`'s working set.
pub fn txn_write(txn: &mut TxnState, op: WriteOp) -> Result<(), TxnError> {
    if op.val.as_ref().is_some_and(|v| v.len() > VAL_CAP) {
        return Err(TxnError::Limit);
    }
    if txn.writes.len() >= MAX_WRITES {
        return Err(TxnError::Limit);
    }
    txn.writes.push(op);
    Ok(())
}

/// Range-scans the primary space (`space == SPACE_PRIMARY`, from `lo`,
/// minor part ignored) or one index tag (`space == SPACE_INDEX`, tag in
/// `lo`), validating the stamps of everything returned. Outside a
/// transaction pass `txn = None` for a plain stable-snapshot scan.
pub fn txn_scan<M: MemIo>(
    store: &TxnStore,
    io: &M,
    txn: Option<&mut TxnState>,
    space: u8,
    lo: &[u8; KEY_LEN],
    hi: &[u8; KEY_LEN],
    limit: usize,
) -> Result<Vec<Record>, TxnError> {
    let (clo, chi) = match space {
        SPACE_INDEX => (index_key(lo, &[0u8; KEY_LEN]), index_key(hi, &[0xffu8; KEY_LEN])),
        _ => (primary_key(lo), primary_key(hi)),
    };
    let (slo, shi) = space_range(space);
    let clo = clo.max(slo);
    let chi = chi.min(shi);
    let recs = store.scan(io, &clo, &chi, limit).map_err(|_| TxnError::Io)?;
    if let Some(txn) = txn {
        for r in &recs {
            txn.record_read(r.ckey, r.wseq)?;
        }
    }
    Ok(recs)
}

/// Validates `txn` against the current stable root and, if clean, applies
/// its working set (primary records plus their secondary-index entries)
/// as one atomic publication with sequence `meta.seq + 1`.
///
/// First-committer-wins: any read stamp that moved, or any write target
/// stamped after the snapshot, aborts the transaction with
/// [`TxnError::Conflict`] — the caller drops the working set and nothing
/// was published.
///
/// Returns the new committed sequence on success.
pub fn txn_commit<M: MemIo>(
    store: &TxnStore,
    io: &M,
    txn: &TxnState,
) -> Result<u64, TxnError> {
    let meta = store.meta(io).map_err(|_| TxnError::Io)?;
    // Validate the read set: every stamp must be exactly what the
    // transaction observed (0 = still absent).
    for (ckey, seen) in &txn.reads {
        let cur = store.get(io, ckey).map_err(|_| TxnError::Io)?;
        if cur.map_or(0, |r| r.wseq) != *seen {
            return Err(TxnError::Conflict);
        }
    }
    // Validate the write set: a blind write conflicts only when someone
    // committed the key after this transaction's snapshot.
    for w in &txn.writes {
        let cur = store.get(io, &primary_key(&w.key)).map_err(|_| TxnError::Io)?;
        if cur.map_or(0, |r| r.wseq) > txn.snapshot {
            return Err(TxnError::Conflict);
        }
    }
    if txn.writes.is_empty() {
        // Read-only transactions validate and commit without publishing.
        return Ok(meta.seq);
    }
    let new_seq = meta.seq + 1;
    // Collapse to last-write-wins per key, preserving first-buffer order.
    let mut ops: Vec<StoreOp> = Vec::new();
    let mut keys_done: Vec<[u8; KEY_LEN]> = Vec::new();
    for w in &txn.writes {
        if keys_done.contains(&w.key) {
            continue;
        }
        keys_done.push(w.key);
        let w = txn.own_write(&w.key).expect("key just seen");
        let prior = store.get(io, &primary_key(&w.key)).map_err(|_| TxnError::Io)?;
        let old_tag = prior.as_ref().map(|r| r.tag).filter(|t| *t != [0u8; KEY_LEN]);
        match &w.val {
            Some(v) => {
                ops.push(StoreOp::Put { ckey: primary_key(&w.key), tag: w.tag, val: v.clone() });
                if let Some(old) = old_tag {
                    if old != w.tag {
                        ops.push(StoreOp::Del { ckey: index_key(&old, &w.key) });
                    }
                }
                if w.tag != [0u8; KEY_LEN] {
                    ops.push(StoreOp::Put {
                        ckey: index_key(&w.tag, &w.key),
                        tag: [0u8; KEY_LEN],
                        val: w.key.to_vec(),
                    });
                }
            }
            None => {
                ops.push(StoreOp::Del { ckey: primary_key(&w.key) });
                if let Some(old) = old_tag {
                    ops.push(StoreOp::Del { ckey: index_key(&old, &w.key) });
                }
            }
        }
    }
    store.commit_apply(io, &ops, new_seq)?;
    Ok(new_seq)
}

/// Walks the whole store and checks primary ↔ secondary exact
/// consistency: every tagged primary record has exactly its one index
/// entry, and every index entry points at a primary record carrying that
/// tag. Returns the number of primary records, or an error string naming
/// the first violation.
pub fn check_index_consistency<M: MemIo>(store: &TxnStore, io: &M) -> Result<usize, String> {
    let (plo, phi) = space_range(SPACE_PRIMARY);
    let primaries = store.scan(io, &plo, &phi, usize::MAX).map_err(|e| format!("scan: {e:?}"))?;
    let (ilo, ihi) = space_range(SPACE_INDEX);
    let index = store.scan(io, &ilo, &ihi, usize::MAX).map_err(|e| format!("scan: {e:?}"))?;
    let mut expect: std::collections::BTreeSet<CKey> = Default::default();
    for p in &primaries {
        if p.tag != [0u8; KEY_LEN] {
            let mut key = [0u8; KEY_LEN];
            key.copy_from_slice(&p.ckey[1..1 + KEY_LEN]);
            expect.insert(index_key(&p.tag, &key));
        }
    }
    for e in &index {
        if !expect.remove(&e.ckey) {
            return Err(format!("orphan index entry {:?}", &e.ckey[..8]));
        }
    }
    if let Some(missing) = expect.iter().next() {
        return Err(format!("missing index entry {:?}", &missing[..8]));
    }
    Ok(primaries.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::region_len;
    use std::cell::RefCell;
    use treesls_kernel::types::KernelError;

    struct Flat {
        mem: RefCell<Vec<u8>>,
    }
    impl Flat {
        fn new(len: usize) -> Flat {
            Flat { mem: RefCell::new(vec![0; len]) }
        }
    }
    impl MemIo for Flat {
        fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
            let m = self.mem.borrow();
            buf.copy_from_slice(&m[addr as usize..addr as usize + buf.len()]);
            Ok(())
        }
        fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
            let mut m = self.mem.borrow_mut();
            m[addr as usize..addr as usize + data.len()].copy_from_slice(data);
            Ok(())
        }
        fn version(&self) -> u64 {
            0
        }
    }

    fn key(i: u64) -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        k[..8].copy_from_slice(&i.to_be_bytes());
        k
    }

    fn setup() -> (Flat, TxnStore) {
        let io = Flat::new(region_len(256) as usize);
        let s = TxnStore::format(&io, 0, 256).unwrap();
        (io, s)
    }

    fn upsert(key_: [u8; KEY_LEN], v: &[u8]) -> WriteOp {
        WriteOp { key: key_, tag: [0; KEY_LEN], val: Some(v.to_vec()) }
    }

    #[test]
    fn multi_key_commit_is_atomic_and_visible() {
        let (io, s) = setup();
        let mut t = TxnState::new(s.meta(&io).unwrap().seq);
        txn_write(&mut t, upsert(key(1), b"a")).unwrap();
        txn_write(&mut t, upsert(key(2), b"b")).unwrap();
        let seq = txn_commit(&s, &io, &t).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(s.get(&io, &primary_key(&key(1))).unwrap().unwrap().val, b"a");
        assert_eq!(s.get(&io, &primary_key(&key(2))).unwrap().unwrap().val, b"b");
    }

    #[test]
    fn first_committer_wins_on_write_write() {
        let (io, s) = setup();
        let mut a = TxnState::new(0);
        let mut b = TxnState::new(0);
        txn_write(&mut a, upsert(key(5), b"A")).unwrap();
        txn_write(&mut b, upsert(key(5), b"B")).unwrap();
        assert_eq!(txn_commit(&s, &io, &a), Ok(1));
        assert_eq!(txn_commit(&s, &io, &b), Err(TxnError::Conflict));
        assert_eq!(s.get(&io, &primary_key(&key(5))).unwrap().unwrap().val, b"A");
    }

    #[test]
    fn stale_read_aborts() {
        let (io, s) = setup();
        let mut seed = TxnState::new(0);
        txn_write(&mut seed, upsert(key(9), b"v0")).unwrap();
        txn_commit(&s, &io, &seed).unwrap();

        let mut reader = TxnState::new(s.meta(&io).unwrap().seq);
        let r = txn_read(&s, &io, &mut reader, &key(9)).unwrap().unwrap();
        assert_eq!(r.val, b"v0");
        // A second transaction rewrites the key the reader depends on.
        let mut w = TxnState::new(s.meta(&io).unwrap().seq);
        txn_write(&mut w, upsert(key(9), b"v1")).unwrap();
        txn_commit(&s, &io, &w).unwrap();
        // The reader's commit (writing a different key) must abort: its
        // read of key 9 is stale.
        txn_write(&mut reader, upsert(key(10), b"dep")).unwrap();
        assert_eq!(txn_commit(&s, &io, &reader), Err(TxnError::Conflict));
        assert!(s.get(&io, &primary_key(&key(10))).unwrap().is_none());
    }

    #[test]
    fn read_absent_then_insert_elsewhere_conflicts() {
        let (io, s) = setup();
        let mut t = TxnState::new(0);
        assert!(txn_read(&s, &io, &mut t, &key(3)).unwrap().is_none());
        let mut other = TxnState::new(0);
        txn_write(&mut other, upsert(key(3), b"x")).unwrap();
        txn_commit(&s, &io, &other).unwrap();
        txn_write(&mut t, upsert(key(4), b"y")).unwrap();
        assert_eq!(txn_commit(&s, &io, &t), Err(TxnError::Conflict));
    }

    #[test]
    fn read_your_own_writes() {
        let (io, s) = setup();
        let mut t = TxnState::new(0);
        txn_write(&mut t, upsert(key(1), b"mine")).unwrap();
        let r = txn_read(&s, &io, &mut t, &key(1)).unwrap().unwrap();
        assert_eq!(r.val, b"mine");
        // Buffered deletes read as absent.
        txn_write(&mut t, WriteOp { key: key(1), tag: [0; KEY_LEN], val: None }).unwrap();
        assert!(txn_read(&s, &io, &mut t, &key(1)).unwrap().is_none());
    }

    #[test]
    fn index_follows_tag_changes() {
        let (io, s) = setup();
        let t1 = key(100);
        let t2 = key(200);
        let mut a = TxnState::new(0);
        txn_write(&mut a, WriteOp { key: key(1), tag: t1, val: Some(b"v".to_vec()) }).unwrap();
        txn_commit(&s, &io, &a).unwrap();
        assert_eq!(check_index_consistency(&s, &io), Ok(1));
        // Retag: old index entry must go, new one must appear.
        let mut b = TxnState::new(s.meta(&io).unwrap().seq);
        txn_write(&mut b, WriteOp { key: key(1), tag: t2, val: Some(b"w".to_vec()) }).unwrap();
        txn_commit(&s, &io, &b).unwrap();
        assert_eq!(check_index_consistency(&s, &io), Ok(1));
        let hits = txn_scan(&s, &io, None, SPACE_INDEX, &t2, &t2, 10).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(txn_scan(&s, &io, None, SPACE_INDEX, &t1, &t1, 10).unwrap().is_empty());
        // Delete drops both primary and index entries.
        let mut c = TxnState::new(s.meta(&io).unwrap().seq);
        txn_write(&mut c, WriteOp { key: key(1), tag: [0; KEY_LEN], val: None }).unwrap();
        txn_commit(&s, &io, &c).unwrap();
        assert_eq!(check_index_consistency(&s, &io), Ok(0));
    }

    #[test]
    fn scan_validates_returned_stamps() {
        let (io, s) = setup();
        let mut seed = TxnState::new(0);
        for i in 0..10 {
            txn_write(&mut seed, upsert(key(i), b"v")).unwrap();
        }
        txn_commit(&s, &io, &seed).unwrap();
        let mut t = TxnState::new(s.meta(&io).unwrap().seq);
        let hits =
            txn_scan(&s, &io, Some(&mut t), SPACE_PRIMARY, &key(0), &key(5), 100).unwrap();
        assert_eq!(hits.len(), 5);
        // Concurrent rewrite of a scanned key aborts the scanner.
        let mut w = TxnState::new(s.meta(&io).unwrap().seq);
        txn_write(&mut w, upsert(key(2), b"new")).unwrap();
        txn_commit(&s, &io, &w).unwrap();
        txn_write(&mut t, upsert(key(50), b"dep")).unwrap();
        assert_eq!(txn_commit(&s, &io, &t), Err(TxnError::Conflict));
    }

    #[test]
    fn read_only_txn_commits_without_bumping_seq() {
        let (io, s) = setup();
        let mut seed = TxnState::new(0);
        txn_write(&mut seed, upsert(key(1), b"v")).unwrap();
        txn_commit(&s, &io, &seed).unwrap();
        let mut t = TxnState::new(s.meta(&io).unwrap().seq);
        txn_read(&s, &io, &mut t, &key(1)).unwrap();
        assert_eq!(txn_commit(&s, &io, &t), Ok(1));
        assert_eq!(s.meta(&io).unwrap().seq, 1);
    }

    #[test]
    fn working_set_limits_are_enforced() {
        let mut t = TxnState::new(0);
        for i in 0..MAX_WRITES as u64 {
            txn_write(&mut t, upsert(key(i), b"v")).unwrap();
        }
        assert_eq!(txn_write(&mut t, upsert(key(9999), b"v")), Err(TxnError::Limit));
        assert_eq!(
            txn_write(&mut TxnState::new(0), upsert(key(0), &[0u8; VAL_CAP + 1])),
            Err(TxnError::Limit)
        );
    }
}
