//! Copy-on-write B+ tree with stable-root / working-root publication.
//!
//! The store keeps primary records and secondary-index entries in **one**
//! ordered tree over composite keys, so a commit that touches both
//! publishes them with a single root switch. The update discipline is the
//! stable-root vs working-root split of persistent index structures:
//!
//! * the **stable root** is whatever the live meta slot points at — reads
//!   and conflict validation only ever traverse it;
//! * a commit builds a **working root** by copy-on-write path duplication
//!   against the stable root (nodes allocated this commit are mutated in
//!   place, everything older is copied first);
//! * publication writes the *inactive* meta slot (root, sequence,
//!   allocator watermark, free list) and then flips the one-word slot
//!   selector. The flip is the only write that changes visible state.
//!
//! Because the store lives in ordinary checkpointed process memory, its
//! durability point is the checkpoint round, not individual stores: a
//! checkpoint captures the heap at one instant (the epoch flip), so the
//! image either holds the old selector (commit invisible, its working
//! nodes unreachable garbage that the persisted allocator watermark
//! reclaims) or the new selector (commit fully visible). No instant
//! between two stores of a commit ever exposes a partial transaction —
//! that is the invariant the `txn.*` crash sites let the fault
//! enumeration check.
//!
//! Superseded nodes recycle through two free-stack regions that ping-pong
//! with the meta slots: a commit consumes entries from the stable free
//! stack and writes the survivors plus its own supersedures into the
//! inactive region, so the stable tree's free list is never scribbled on
//! before the flip.

use treesls_extsync::MemIo;
use treesls_kernel::types::KernelError;

use crate::engine::TxnError;

/// Store magic (header word 0).
pub const MAGIC: u64 = 0x7A17_5713_0001;
/// Bytes per tree node (one page).
pub const NODE_SIZE: u64 = 4096;
/// Primary / secondary key length on the wire (matches the KV protocol).
pub const KEY_LEN: usize = 16;
/// Composite key length: space byte + 16-byte major + 16-byte minor.
pub const CKEY_LEN: usize = 33;
/// Value capacity per record.
pub const VAL_CAP: usize = 64;
/// Leaf entry: ckey + wseq + tag + vlen + val.
const ENTRY_LEN: usize = CKEY_LEN + 8 + KEY_LEN + 2 + VAL_CAP;
/// Max entries per leaf node.
pub const LEAF_MAX: usize = (NODE_SIZE as usize - 8) / ENTRY_LEN;
/// Max separator keys per inner node (children = keys + 1).
pub const INNER_MAX: usize = 99;
/// Byte offset of the child-pointer array inside an inner node.
const CHILD_OFF: usize = 8 + INNER_MAX * CKEY_LEN;

/// Key space tag for primary records (`ckey = [0x00, key, 0…]`).
pub const SPACE_PRIMARY: u8 = 0;
/// Key space tag for secondary-index entries (`ckey = [0x01, tag, key]`).
pub const SPACE_INDEX: u8 = 1;

/// Composite tree key: one space byte, a 16-byte major part and a
/// 16-byte minor part, compared lexicographically.
pub type CKey = [u8; CKEY_LEN];

/// Builds the primary-space composite key for `key`.
pub fn primary_key(key: &[u8; KEY_LEN]) -> CKey {
    let mut k = [0u8; CKEY_LEN];
    k[0] = SPACE_PRIMARY;
    k[1..1 + KEY_LEN].copy_from_slice(key);
    k
}

/// Builds the index-space composite key for `(tag, key)`: entries sort by
/// tag first, so an equal-tag range scan enumerates the tag's members.
pub fn index_key(tag: &[u8; KEY_LEN], key: &[u8; KEY_LEN]) -> CKey {
    let mut k = [0u8; CKEY_LEN];
    k[0] = SPACE_INDEX;
    k[1..1 + KEY_LEN].copy_from_slice(tag);
    k[1 + KEY_LEN..].copy_from_slice(key);
    k
}

/// The smallest and one-past-largest composite keys of a key space.
pub fn space_range(space: u8) -> (CKey, CKey) {
    let mut lo = [0u8; CKEY_LEN];
    lo[0] = space;
    let mut hi = [0xffu8; CKEY_LEN];
    hi[0] = space;
    (lo, hi)
}

/// Header offsets (all in page 0 of the store region).
mod off {
    /// Magic word.
    pub const MAGIC: u64 = 0;
    /// Node capacity.
    pub const NODE_CAP: u64 = 8;
    /// Live meta-slot selector (0 or 1) — the publication word.
    pub const SEL: u64 = 16;
    /// Meta slot 0 / 1 base.
    pub const META: [u64; 2] = [64, 128];
    /// Meta slot field offsets: root (+0), seq (+8), alloc_next (+16),
    /// free_len (+24).
    pub const M_ROOT: u64 = 0;
    /// Committed sequence number field.
    pub const M_SEQ: u64 = 8;
    /// Allocator bump watermark field.
    pub const M_ALLOC: u64 = 16;
    /// Free-stack length field.
    pub const M_FREE: u64 = 24;
}

/// One decoded record: composite key, last-writer sequence, index tag,
/// value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The composite key this record is stored under.
    pub ckey: CKey,
    /// Sequence number of the transaction that last wrote it.
    pub wseq: u64,
    /// The secondary-index tag carried by primary records (zeros when
    /// unindexed; index-space entries keep it zeroed).
    pub tag: [u8; KEY_LEN],
    /// Value bytes (primary: the stored value; index: the member key).
    pub val: Vec<u8>,
}

/// One entry being written into the working root: key, writer sequence,
/// index tag, value.
struct PutEntry<'a> {
    ckey: &'a CKey,
    wseq: u64,
    tag: &'a [u8; KEY_LEN],
    val: &'a [u8],
}

/// One mutation of a commit's write set, in composite-key terms.
#[derive(Debug, Clone)]
pub enum StoreOp {
    /// Insert or overwrite a record.
    Put {
        /// Composite key to store under.
        ckey: CKey,
        /// Index tag recorded with the entry.
        tag: [u8; KEY_LEN],
        /// Value bytes (`len <= VAL_CAP`).
        val: Vec<u8>,
    },
    /// Remove a record if present.
    Del {
        /// Composite key to remove.
        ckey: CKey,
    },
}

impl StoreOp {
    fn ckey(&self) -> &CKey {
        match self {
            StoreOp::Put { ckey, .. } | StoreOp::Del { ckey } => ckey,
        }
    }
    /// True for index-space mutations (drives the `txn.index_update`
    /// crash site).
    pub fn is_index(&self) -> bool {
        self.ckey()[0] == SPACE_INDEX
    }
}

/// The stable snapshot a meta slot describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Root node index + 1 (0 = empty tree).
    pub root: u64,
    /// Committed transaction sequence number.
    pub seq: u64,
    /// Allocator bump watermark (nodes below it are or were in use).
    pub alloc_next: u64,
    /// Entries in the live free stack.
    pub free_len: u64,
    /// Which meta slot is live.
    pub sel: u64,
}

/// Handle to a formatted store region inside one address space.
#[derive(Debug, Clone, Copy)]
pub struct TxnStore {
    /// Base address of the store region.
    pub base: u64,
    /// Maximum number of tree nodes.
    pub node_cap: u64,
}

/// Pages occupied by one free-stack region for `node_cap` nodes.
fn free_stack_pages(node_cap: u64) -> u64 {
    (node_cap * 8).div_ceil(4096)
}

/// Total bytes a store with `node_cap` nodes occupies (header page + two
/// free-stack regions + the node array).
pub fn region_len(node_cap: u64) -> u64 {
    4096 + 2 * free_stack_pages(node_cap) * 4096 + node_cap * NODE_SIZE
}

/// In-memory image of one node, staged for a single whole-node write.
struct Node {
    buf: Box<[u8; NODE_SIZE as usize]>,
}

impl Node {
    fn new_leaf() -> Node {
        let mut buf = Box::new([0u8; NODE_SIZE as usize]);
        buf[0] = 1;
        Node { buf }
    }
    fn new_inner() -> Node {
        Node { buf: Box::new([0u8; NODE_SIZE as usize]) }
    }
    fn is_leaf(&self) -> bool {
        self.buf[0] == 1
    }
    fn nkeys(&self) -> usize {
        u16::from_le_bytes([self.buf[2], self.buf[3]]) as usize
    }
    fn set_nkeys(&mut self, n: usize) {
        self.buf[2..4].copy_from_slice(&(n as u16).to_le_bytes());
    }

    // ---- leaf accessors --------------------------------------------------
    fn entry_off(i: usize) -> usize {
        8 + i * ENTRY_LEN
    }
    fn leaf_key(&self, i: usize) -> CKey {
        let o = Self::entry_off(i);
        self.buf[o..o + CKEY_LEN].try_into().unwrap()
    }
    fn leaf_record(&self, i: usize) -> Record {
        let o = Self::entry_off(i);
        let wseq = u64::from_le_bytes(self.buf[o + CKEY_LEN..o + CKEY_LEN + 8].try_into().unwrap());
        let tag: [u8; KEY_LEN] =
            self.buf[o + CKEY_LEN + 8..o + CKEY_LEN + 8 + KEY_LEN].try_into().unwrap();
        let vo = o + CKEY_LEN + 8 + KEY_LEN;
        let vlen = u16::from_le_bytes(self.buf[vo..vo + 2].try_into().unwrap()) as usize;
        let vlen = vlen.min(VAL_CAP);
        Record {
            ckey: self.leaf_key(i),
            wseq,
            tag,
            val: self.buf[vo + 2..vo + 2 + vlen].to_vec(),
        }
    }
    fn set_leaf_entry(&mut self, i: usize, ckey: &CKey, wseq: u64, tag: &[u8; KEY_LEN], val: &[u8]) {
        let o = Self::entry_off(i);
        self.buf[o..o + CKEY_LEN].copy_from_slice(ckey);
        self.buf[o + CKEY_LEN..o + CKEY_LEN + 8].copy_from_slice(&wseq.to_le_bytes());
        self.buf[o + CKEY_LEN + 8..o + CKEY_LEN + 8 + KEY_LEN].copy_from_slice(tag);
        let vo = o + CKEY_LEN + 8 + KEY_LEN;
        self.buf[vo..vo + 2].copy_from_slice(&(val.len() as u16).to_le_bytes());
        self.buf[vo + 2..vo + 2 + VAL_CAP].fill(0);
        self.buf[vo + 2..vo + 2 + val.len()].copy_from_slice(val);
    }
    /// Shifts entries `[i, nkeys)` one slot toward the back (insert gap).
    fn leaf_open_gap(&mut self, i: usize) {
        let n = self.nkeys();
        let src = Self::entry_off(i);
        let end = Self::entry_off(n);
        self.buf.copy_within(src..end, src + ENTRY_LEN);
    }
    /// Removes entry `i`, closing the gap.
    fn leaf_remove(&mut self, i: usize) {
        let n = self.nkeys();
        let src = Self::entry_off(i + 1);
        let end = Self::entry_off(n);
        self.buf.copy_within(src..end, Self::entry_off(i));
        self.set_nkeys(n - 1);
    }

    // ---- inner accessors -------------------------------------------------
    fn inner_key(&self, i: usize) -> CKey {
        let o = 8 + i * CKEY_LEN;
        self.buf[o..o + CKEY_LEN].try_into().unwrap()
    }
    fn set_inner_key(&mut self, i: usize, k: &CKey) {
        let o = 8 + i * CKEY_LEN;
        self.buf[o..o + CKEY_LEN].copy_from_slice(k);
    }
    fn child(&self, i: usize) -> u64 {
        let o = CHILD_OFF + i * 8;
        u64::from_le_bytes(self.buf[o..o + 8].try_into().unwrap())
    }
    fn set_child(&mut self, i: usize, c: u64) {
        let o = CHILD_OFF + i * 8;
        self.buf[o..o + 8].copy_from_slice(&c.to_le_bytes());
    }
    /// Child index covering `key`: the first separator greater than `key`
    /// selects its left child.
    fn route(&self, key: &CKey) -> usize {
        let n = self.nkeys();
        for i in 0..n {
            if *key < self.inner_key(i) {
                return i;
            }
        }
        n
    }
}

impl TxnStore {
    fn free_base(&self, region: u64) -> u64 {
        self.base + 4096 + region * free_stack_pages(self.node_cap) * 4096
    }
    fn node_base(&self, idx: u64) -> u64 {
        self.base + 4096 + 2 * free_stack_pages(self.node_cap) * 4096 + idx * NODE_SIZE
    }

    /// Formats an empty store at `base` with room for `node_cap` nodes.
    pub fn format<M: MemIo>(io: &M, base: u64, node_cap: u64) -> Result<TxnStore, KernelError> {
        io.mem_write_u64(base + off::NODE_CAP, node_cap)?;
        io.mem_write_u64(base + off::SEL, 0)?;
        for slot in off::META {
            for f in [off::M_ROOT, off::M_SEQ, off::M_ALLOC, off::M_FREE] {
                io.mem_write_u64(base + slot + f, 0)?;
            }
        }
        // Magic last, so a half-formatted region never attaches.
        io.mem_write_u64(base + off::MAGIC, MAGIC)?;
        Ok(TxnStore { base, node_cap })
    }

    /// Attaches to a previously formatted store.
    pub fn attach<M: MemIo>(io: &M, base: u64) -> Result<Option<TxnStore>, KernelError> {
        if io.mem_read_u64(base + off::MAGIC)? != MAGIC {
            return Ok(None);
        }
        let node_cap = io.mem_read_u64(base + off::NODE_CAP)?;
        Ok(Some(TxnStore { base, node_cap }))
    }

    /// Reads the live meta slot (the stable snapshot).
    pub fn meta<M: MemIo>(&self, io: &M) -> Result<Meta, KernelError> {
        let sel = io.mem_read_u64(self.base + off::SEL)? & 1;
        let slot = self.base + off::META[sel as usize];
        Ok(Meta {
            root: io.mem_read_u64(slot + off::M_ROOT)?,
            seq: io.mem_read_u64(slot + off::M_SEQ)?,
            alloc_next: io.mem_read_u64(slot + off::M_ALLOC)?,
            free_len: io.mem_read_u64(slot + off::M_FREE)?,
            sel,
        })
    }

    fn read_node<M: MemIo>(&self, io: &M, idx: u64) -> Result<Node, KernelError> {
        let mut buf = Box::new([0u8; NODE_SIZE as usize]);
        io.mem_read(self.node_base(idx), &mut buf[..])?;
        Ok(Node { buf })
    }
    fn write_node<M: MemIo>(&self, io: &M, idx: u64, node: &Node) -> Result<(), KernelError> {
        io.mem_write(self.node_base(idx), &node.buf[..])
    }

    /// Point lookup against the stable root. Returns `None` when absent.
    pub fn get<M: MemIo>(&self, io: &M, ckey: &CKey) -> Result<Option<Record>, KernelError> {
        let meta = self.meta(io)?;
        self.get_at(io, meta.root, ckey)
    }

    /// Point lookup against an explicit root (0 = empty).
    pub fn get_at<M: MemIo>(
        &self,
        io: &M,
        root: u64,
        ckey: &CKey,
    ) -> Result<Option<Record>, KernelError> {
        if root == 0 {
            return Ok(None);
        }
        let mut idx = root - 1;
        loop {
            let node = self.read_node(io, idx)?;
            if node.is_leaf() {
                let n = node.nkeys();
                for i in 0..n {
                    let k = node.leaf_key(i);
                    if k == *ckey {
                        return Ok(Some(node.leaf_record(i)));
                    }
                    if k > *ckey {
                        break;
                    }
                }
                return Ok(None);
            }
            idx = node.child(node.route(ckey));
        }
    }

    /// In-order range scan `[lo, hi)` against the stable root, stopping
    /// after `limit` records.
    pub fn scan<M: MemIo>(
        &self,
        io: &M,
        lo: &CKey,
        hi: &CKey,
        limit: usize,
    ) -> Result<Vec<Record>, KernelError> {
        let meta = self.meta(io)?;
        let mut out = Vec::new();
        if meta.root != 0 && limit > 0 {
            self.scan_node(io, meta.root - 1, lo, hi, limit, &mut out)?;
        }
        Ok(out)
    }

    fn scan_node<M: MemIo>(
        &self,
        io: &M,
        idx: u64,
        lo: &CKey,
        hi: &CKey,
        limit: usize,
        out: &mut Vec<Record>,
    ) -> Result<(), KernelError> {
        let node = self.read_node(io, idx)?;
        if node.is_leaf() {
            for i in 0..node.nkeys() {
                if out.len() >= limit {
                    return Ok(());
                }
                let k = node.leaf_key(i);
                if k >= *hi {
                    return Ok(());
                }
                if k >= *lo {
                    out.push(node.leaf_record(i));
                }
            }
            return Ok(());
        }
        let n = node.nkeys();
        for i in 0..=n {
            if out.len() >= limit {
                return Ok(());
            }
            // Child i covers [key[i-1], key[i]): prune subtrees fully
            // outside the range.
            if i > 0 && node.inner_key(i - 1) >= *hi {
                return Ok(());
            }
            if i < n && node.inner_key(i) <= *lo {
                continue;
            }
            self.scan_node(io, node.child(i), lo, hi, limit, out)?;
        }
        Ok(())
    }

    /// Applies one commit's write set by copy-on-write against the stable
    /// root and publishes it as sequence `new_seq` with a single selector
    /// flip. Named crash sites fire at the index writes, just before the
    /// flip, and just after it.
    pub fn commit_apply<M: MemIo>(
        &self,
        io: &M,
        ops: &[StoreOp],
        new_seq: u64,
    ) -> Result<(), TxnError> {
        let meta = self.meta(io).map_err(|_| TxnError::Io)?;
        let mut alloc = CommitAlloc::load(self, io, &meta)?;
        let mut root = meta.root;
        for op in ops {
            if op.is_index() {
                // A secondary-index entry is about to be built into the
                // working root — a crash here must never surface a primary
                // write without its index entry (or vice versa).
                io.crash_hook("txn.index_update");
            }
            root = match op {
                StoreOp::Put { ckey, tag, val } => {
                    let entry = PutEntry { ckey, wseq: new_seq, tag, val: val.as_slice() };
                    self.insert(io, &mut alloc, root, &entry)?
                }
                StoreOp::Del { ckey } => self.remove(io, &mut alloc, root, ckey)?,
            };
        }
        // Publish: free stack first, then the inactive meta slot, then the
        // selector. Before the flip the stable snapshot is untouched.
        let new_sel = meta.sel ^ 1;
        let free_base = self.free_base(new_sel);
        let survivors = alloc.survivors();
        for (i, idx) in survivors.iter().enumerate() {
            io.mem_write_u64(free_base + i as u64 * 8, *idx).map_err(|_| TxnError::Io)?;
        }
        let slot = self.base + off::META[new_sel as usize];
        io.mem_write_u64(slot + off::M_ROOT, root).map_err(|_| TxnError::Io)?;
        io.mem_write_u64(slot + off::M_SEQ, new_seq).map_err(|_| TxnError::Io)?;
        io.mem_write_u64(slot + off::M_ALLOC, alloc.next).map_err(|_| TxnError::Io)?;
        io.mem_write_u64(slot + off::M_FREE, survivors.len() as u64).map_err(|_| TxnError::Io)?;
        io.crash_hook("txn.pre_publish");
        io.mem_write_u64(self.base + off::SEL, new_sel).map_err(|_| TxnError::Io)?;
        io.crash_hook("txn.commit_visible");
        Ok(())
    }

    /// CoW insert of one entry; returns the (possibly new) root handle.
    fn insert<M: MemIo>(
        &self,
        io: &M,
        alloc: &mut CommitAlloc,
        root: u64,
        e: &PutEntry<'_>,
    ) -> Result<u64, TxnError> {
        let ckey = e.ckey;
        if root == 0 {
            let (idx, mut leaf) = alloc.alloc(Node::new_leaf())?;
            leaf.set_leaf_entry(0, ckey, e.wseq, e.tag, e.val);
            leaf.set_nkeys(1);
            self.write_node(io, idx, &leaf).map_err(|_| TxnError::Io)?;
            return Ok(idx + 1);
        }
        let mut cur_idx = alloc.cow(self, io, root - 1)?;
        let new_root;
        {
            let cur = alloc.fresh(self, io, cur_idx)?;
            if (cur.is_leaf() && cur.nkeys() >= LEAF_MAX)
                || (!cur.is_leaf() && cur.nkeys() >= INNER_MAX)
            {
                // Grow a new root above the full old one, then split.
                let (ridx, mut rootn) = alloc.alloc(Node::new_inner())?;
                rootn.set_child(0, cur_idx);
                rootn.set_nkeys(0);
                self.write_node(io, ridx, &rootn).map_err(|_| TxnError::Io)?;
                self.split_child(io, alloc, ridx, 0)?;
                new_root = ridx;
            } else {
                new_root = cur_idx;
            }
        }
        cur_idx = new_root;
        loop {
            let node = self.read_node(io, cur_idx).map_err(|_| TxnError::Io)?;
            if node.is_leaf() {
                let mut node = node;
                let n = node.nkeys();
                let mut i = 0;
                while i < n && node.leaf_key(i) < *ckey {
                    i += 1;
                }
                if i < n && node.leaf_key(i) == *ckey {
                    node.set_leaf_entry(i, ckey, e.wseq, e.tag, e.val);
                } else {
                    node.leaf_open_gap(i);
                    node.set_leaf_entry(i, ckey, e.wseq, e.tag, e.val);
                    node.set_nkeys(n + 1);
                }
                self.write_node(io, cur_idx, &node).map_err(|_| TxnError::Io)?;
                return Ok(new_root + 1);
            }
            let mut i = node.route(ckey);
            let child_idx = alloc.cow(self, io, node.child(i))?;
            if child_idx != node.child(i) {
                let mut node = node;
                node.set_child(i, child_idx);
                self.write_node(io, cur_idx, &node).map_err(|_| TxnError::Io)?;
            }
            let child = self.read_node(io, child_idx).map_err(|_| TxnError::Io)?;
            let full = (child.is_leaf() && child.nkeys() >= LEAF_MAX)
                || (!child.is_leaf() && child.nkeys() >= INNER_MAX);
            if full {
                self.split_child(io, alloc, cur_idx, i)?;
                let node = self.read_node(io, cur_idx).map_err(|_| TxnError::Io)?;
                i = node.route(ckey);
                cur_idx = node.child(i);
            } else {
                cur_idx = child_idx;
            }
        }
    }

    /// Splits the full (fresh) child `i` of the fresh inner node
    /// `parent_idx` into two fresh halves.
    fn split_child<M: MemIo>(
        &self,
        io: &M,
        alloc: &mut CommitAlloc,
        parent_idx: u64,
        i: usize,
    ) -> Result<(), TxnError> {
        let mut parent = self.read_node(io, parent_idx).map_err(|_| TxnError::Io)?;
        let child_idx = parent.child(i);
        let mut child = self.read_node(io, child_idx).map_err(|_| TxnError::Io)?;
        let (sep, right_idx) = if child.is_leaf() {
            let n = child.nkeys();
            let mid = n / 2;
            let (ridx, mut right) = alloc.alloc(Node::new_leaf())?;
            for j in mid..n {
                let r = child.leaf_record(j);
                right.set_leaf_entry(j - mid, &r.ckey, r.wseq, &r.tag, &r.val);
            }
            right.set_nkeys(n - mid);
            child.set_nkeys(mid);
            let sep = right.leaf_key(0);
            self.write_node(io, ridx, &right).map_err(|_| TxnError::Io)?;
            (sep, ridx)
        } else {
            let n = child.nkeys();
            let mid = n / 2;
            let (ridx, mut right) = alloc.alloc(Node::new_inner())?;
            for j in mid + 1..n {
                right.set_inner_key(j - mid - 1, &child.inner_key(j));
            }
            for j in mid + 1..=n {
                right.set_child(j - mid - 1, child.child(j));
            }
            right.set_nkeys(n - mid - 1);
            let sep = child.inner_key(mid);
            child.set_nkeys(mid);
            self.write_node(io, ridx, &right).map_err(|_| TxnError::Io)?;
            (sep, ridx)
        };
        self.write_node(io, child_idx, &child).map_err(|_| TxnError::Io)?;
        // Insert separator + right child into the parent.
        let n = parent.nkeys();
        let mut keys: Vec<CKey> = (0..n).map(|j| parent.inner_key(j)).collect();
        let mut children: Vec<u64> = (0..=n).map(|j| parent.child(j)).collect();
        keys.insert(i, sep);
        children.insert(i + 1, right_idx);
        for (j, k) in keys.iter().enumerate() {
            parent.set_inner_key(j, k);
        }
        for (j, c) in children.iter().enumerate() {
            parent.set_child(j, *c);
        }
        parent.set_nkeys(n + 1);
        self.write_node(io, parent_idx, &parent).map_err(|_| TxnError::Io)
    }

    /// CoW delete (lazy: leaves may empty out, separators stay).
    fn remove<M: MemIo>(
        &self,
        io: &M,
        alloc: &mut CommitAlloc,
        root: u64,
        ckey: &CKey,
    ) -> Result<u64, TxnError> {
        if root == 0 {
            return Ok(0);
        }
        // Probe first: only CoW the path when the key exists.
        if self.get_at(io, root, ckey).map_err(|_| TxnError::Io)?.is_none() {
            return Ok(root);
        }
        let new_root = alloc.cow(self, io, root - 1)?;
        let mut cur_idx = new_root;
        loop {
            let node = self.read_node(io, cur_idx).map_err(|_| TxnError::Io)?;
            if node.is_leaf() {
                let mut node = node;
                for i in 0..node.nkeys() {
                    if node.leaf_key(i) == *ckey {
                        node.leaf_remove(i);
                        break;
                    }
                }
                self.write_node(io, cur_idx, &node).map_err(|_| TxnError::Io)?;
                return Ok(new_root + 1);
            }
            let i = node.route(ckey);
            let child_idx = alloc.cow(self, io, node.child(i))?;
            if child_idx != node.child(i) {
                let mut node = node;
                node.set_child(i, child_idx);
                self.write_node(io, cur_idx, &node).map_err(|_| TxnError::Io)?;
            }
            cur_idx = child_idx;
        }
    }
}

/// Per-commit node allocator: consumes the stable free stack, bump
/// allocates past the watermark, and remembers which stable nodes this
/// commit superseded so publication can recycle them.
struct CommitAlloc {
    next: u64,
    node_cap: u64,
    /// Free-stack entries loaded from the stable region (consumed from
    /// the back).
    free: Vec<u64>,
    /// Stable nodes replaced by fresh copies this commit.
    freed: Vec<u64>,
    /// Nodes allocated this commit (mutable in place).
    fresh: std::collections::HashSet<u64>,
}

impl CommitAlloc {
    fn load<M: MemIo>(store: &TxnStore, io: &M, meta: &Meta) -> Result<CommitAlloc, TxnError> {
        let base = store.free_base(meta.sel);
        let mut free = Vec::with_capacity(meta.free_len as usize);
        for i in 0..meta.free_len {
            free.push(io.mem_read_u64(base + i * 8).map_err(|_| TxnError::Io)?);
        }
        Ok(CommitAlloc {
            next: meta.alloc_next,
            node_cap: store.node_cap,
            free,
            freed: Vec::new(),
            fresh: std::collections::HashSet::new(),
        })
    }

    fn alloc_idx(&mut self) -> Result<u64, TxnError> {
        if let Some(idx) = self.free.pop() {
            self.fresh.insert(idx);
            return Ok(idx);
        }
        if self.next >= self.node_cap {
            return Err(TxnError::Full);
        }
        let idx = self.next;
        self.next += 1;
        self.fresh.insert(idx);
        Ok(idx)
    }

    fn alloc(&mut self, node: Node) -> Result<(u64, Node), TxnError> {
        Ok((self.alloc_idx()?, node))
    }

    /// Returns a mutable-in-place handle for `idx`: itself when the node
    /// is already fresh this commit, otherwise a fresh copy (the old node
    /// goes on the supersedure list).
    fn cow<M: MemIo>(&mut self, store: &TxnStore, io: &M, idx: u64) -> Result<u64, TxnError> {
        if self.fresh.contains(&idx) {
            return Ok(idx);
        }
        let node = store.read_node(io, idx).map_err(|_| TxnError::Io)?;
        let new_idx = self.alloc_idx()?;
        store.write_node(io, new_idx, &node).map_err(|_| TxnError::Io)?;
        self.freed.push(idx);
        Ok(new_idx)
    }

    fn fresh<M: MemIo>(&self, store: &TxnStore, io: &M, idx: u64) -> Result<Node, TxnError> {
        store.read_node(io, idx).map_err(|_| TxnError::Io)
    }

    /// The next snapshot's free stack: unconsumed stable entries plus
    /// everything this commit superseded.
    fn survivors(&self) -> Vec<u64> {
        let mut v = self.free.clone();
        v.extend_from_slice(&self.freed);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Flat-memory MemIo for unit tests.
    struct Flat {
        mem: RefCell<Vec<u8>>,
    }
    impl Flat {
        fn new(len: usize) -> Flat {
            Flat { mem: RefCell::new(vec![0; len]) }
        }
    }
    impl MemIo for Flat {
        fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
            let m = self.mem.borrow();
            buf.copy_from_slice(&m[addr as usize..addr as usize + buf.len()]);
            Ok(())
        }
        fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
            let mut m = self.mem.borrow_mut();
            m[addr as usize..addr as usize + data.len()].copy_from_slice(data);
            Ok(())
        }
        fn version(&self) -> u64 {
            0
        }
    }

    fn key(i: u64) -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        k[..8].copy_from_slice(&i.to_be_bytes());
        k
    }

    fn put(i: u64, tag: u64, v: u64) -> StoreOp {
        StoreOp::Put { ckey: primary_key(&key(i)), tag: key(tag), val: v.to_le_bytes().to_vec() }
    }

    #[test]
    fn put_get_roundtrip_and_seq() {
        let io = Flat::new(region_len(64) as usize);
        let s = TxnStore::format(&io, 0, 64).unwrap();
        s.commit_apply(&io, &[put(1, 0, 10), put(2, 0, 20)], 1).unwrap();
        let r = s.get(&io, &primary_key(&key(1))).unwrap().unwrap();
        assert_eq!(r.val, 10u64.to_le_bytes().to_vec());
        assert_eq!(r.wseq, 1);
        assert_eq!(s.meta(&io).unwrap().seq, 1);
        assert!(s.get(&io, &primary_key(&key(3))).unwrap().is_none());
    }

    #[test]
    fn overwrite_updates_wseq_and_value() {
        let io = Flat::new(region_len(64) as usize);
        let s = TxnStore::format(&io, 0, 64).unwrap();
        s.commit_apply(&io, &[put(7, 0, 1)], 1).unwrap();
        s.commit_apply(&io, &[put(7, 0, 2)], 2).unwrap();
        let r = s.get(&io, &primary_key(&key(7))).unwrap().unwrap();
        assert_eq!(r.wseq, 2);
        assert_eq!(r.val, 2u64.to_le_bytes().to_vec());
    }

    #[test]
    fn delete_removes_and_survives_absent_delete() {
        let io = Flat::new(region_len(64) as usize);
        let s = TxnStore::format(&io, 0, 64).unwrap();
        s.commit_apply(&io, &[put(1, 0, 1), put(2, 0, 2)], 1).unwrap();
        s.commit_apply(&io, &[StoreOp::Del { ckey: primary_key(&key(1)) }], 2).unwrap();
        assert!(s.get(&io, &primary_key(&key(1))).unwrap().is_none());
        assert!(s.get(&io, &primary_key(&key(2))).unwrap().is_some());
        // Deleting an absent key is a no-op, not an error.
        s.commit_apply(&io, &[StoreOp::Del { ckey: primary_key(&key(9)) }], 3).unwrap();
        assert_eq!(s.meta(&io).unwrap().seq, 3);
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let io = Flat::new(region_len(256) as usize);
        let s = TxnStore::format(&io, 0, 256).unwrap();
        let ops: Vec<StoreOp> = (0..100).rev().map(|i| put(i, 0, i)).collect();
        s.commit_apply(&io, &ops, 1).unwrap();
        let (lo, hi) = space_range(SPACE_PRIMARY);
        let all = s.scan(&io, &lo, &hi, 1000).unwrap();
        assert_eq!(all.len(), 100);
        for w in all.windows(2) {
            assert!(w[0].ckey < w[1].ckey);
        }
        let some = s.scan(&io, &primary_key(&key(10)), &primary_key(&key(20)), 1000).unwrap();
        assert_eq!(some.len(), 10);
        let capped = s.scan(&io, &lo, &hi, 7).unwrap();
        assert_eq!(capped.len(), 7);
    }

    #[test]
    fn many_commits_recycle_nodes() {
        // Node churn across many small commits must stay within a modest
        // cap: supersedures recycle through the free stacks.
        let io = Flat::new(region_len(128) as usize);
        let s = TxnStore::format(&io, 0, 128).unwrap();
        for seq in 1..=500u64 {
            s.commit_apply(&io, &[put(seq % 40, 0, seq)], seq).unwrap();
        }
        let meta = s.meta(&io).unwrap();
        assert_eq!(meta.seq, 500);
        assert!(meta.alloc_next <= 128, "alloc watermark {} escaped", meta.alloc_next);
        for i in 0..40u64 {
            assert!(s.get(&io, &primary_key(&key(i))).unwrap().is_some());
        }
    }

    #[test]
    fn splits_preserve_every_key() {
        let io = Flat::new(region_len(512) as usize);
        let s = TxnStore::format(&io, 0, 512).unwrap();
        for seq in 1..=300u64 {
            s.commit_apply(&io, &[put(seq * 7919 % 1000, 0, seq)], seq).unwrap();
        }
        let mut expect: std::collections::BTreeMap<u64, u64> = Default::default();
        for seq in 1..=300u64 {
            expect.insert(seq * 7919 % 1000, seq);
        }
        for (k, v) in expect {
            let r = s.get(&io, &primary_key(&key(k))).unwrap().unwrap();
            assert_eq!(r.val, v.to_le_bytes().to_vec(), "key {k}");
        }
    }

    #[test]
    fn index_entries_share_the_commit() {
        let io = Flat::new(region_len(128) as usize);
        let s = TxnStore::format(&io, 0, 128).unwrap();
        let k = key(1);
        let tag = key(77);
        let ops = vec![
            StoreOp::Put { ckey: primary_key(&k), tag, val: vec![9] },
            StoreOp::Put { ckey: index_key(&tag, &k), tag: [0; KEY_LEN], val: k.to_vec() },
        ];
        s.commit_apply(&io, &ops, 1).unwrap();
        let idx = s.get(&io, &index_key(&tag, &k)).unwrap().unwrap();
        assert_eq!(idx.val, k.to_vec());
        // Index range scan by tag prefix finds the member.
        let lo = index_key(&tag, &[0u8; KEY_LEN]);
        let hi = index_key(&tag, &[0xffu8; KEY_LEN]);
        let hits = s.scan(&io, &lo, &hi, 10).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn full_store_reports_full_not_corrupt() {
        let io = Flat::new(region_len(2) as usize);
        let s = TxnStore::format(&io, 0, 2).unwrap();
        s.commit_apply(&io, &[put(1, 0, 1)], 1).unwrap();
        // Capacity 2 cannot CoW a leaf and grow: expect Full, and the
        // stable snapshot must be unaffected.
        let mut seq = 2;
        let mut err = None;
        for i in 2..40u64 {
            match s.commit_apply(&io, &[put(i, 0, i)], seq) {
                Ok(()) => seq += 1,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(TxnError::Full));
        assert!(s.get(&io, &primary_key(&key(1))).unwrap().is_some());
    }
}
