//! The transaction service behind a NIC queue.
//!
//! [`TxnService`] plugs the OCC engine into the `treesls-net` poll-mode
//! runtime: the queue's `PollServer` loop decodes each frame with
//! [`TxnOp::decode`] and dispatches it here. The **store** lives in the
//! service vmspace's checkpointed heap (rolled back on crash as one
//! consistent instant); the **working sets** live in this host-side
//! struct's `Mutex<HashMap>` — deliberately volatile, because an
//! uncommitted transaction is supposed to die with a crash. A client that
//! resends a transaction id after recovery gets [`TxnResp::UnknownTxn`]
//! (its working set is gone) and restarts the transaction.
//!
//! Transactions are **single-shard**: all frames of one transaction must
//! arrive on the same queue (deployments pin the txn service to one
//! queue; cross-shard two-phase commit is a ROADMAP follow-on).
//!
//! Responses carrying a commit acknowledgement are released to the host
//! by the NIC's commit gate only after the covering checkpoint lands, so
//! §5 holds for multi-key transactions with no extra machinery here.

use std::collections::HashMap;

use parking_lot::Mutex;
use treesls_kernel::program::UserCtx;
use treesls_net::{Service, ServiceError};
use treesls_obs::EventKind;

use crate::engine::{txn_commit, txn_read, txn_scan, txn_write, TxnError, TxnState, WriteOp};
use crate::store::{primary_key, TxnStore, KEY_LEN};
use crate::wire::{error_resp, ScanRow, TxnOp, TxnResp, FLAG_RETRY};

/// Hard cap on concurrently live working sets (bounds host memory under a
/// client that begins transactions and never finishes them).
pub const MAX_LIVE_TXNS: usize = 4096;

/// Decoded bounds of one scan frame: key space, range, and row cap.
struct ScanBounds<'a> {
    space: u8,
    lo: &'a [u8; KEY_LEN],
    hi: &'a [u8; KEY_LEN],
    limit: u16,
}

/// The transactional KV + secondary-index protocol served through the NIC
/// poll runtime.
#[derive(Debug)]
pub struct TxnService {
    /// Store region base inside the service vmspace.
    pub store_base: u64,
    /// Tree node capacity of the store region.
    pub node_cap: u64,
    /// Live working sets by client-chosen transaction id.
    live: Mutex<HashMap<u64, TxnState>>,
}

impl TxnService {
    /// New service over a store region at `store_base` with `node_cap`
    /// tree nodes.
    pub fn new(store_base: u64, node_cap: u64) -> TxnService {
        TxnService { store_base, node_cap, live: Mutex::new(HashMap::new()) }
    }

    /// Number of currently live (begun, unfinished) transactions.
    pub fn live_txns(&self) -> usize {
        self.live.lock().len()
    }

    /// Drops every live working set. The restore path calls this so the
    /// host-side state matches what a real crash does to uncommitted
    /// transactions: they vanish, and clients get
    /// [`TxnResp::UnknownTxn`] on their next frame.
    pub fn reset_working_sets(&self) {
        self.live.lock().clear();
    }

    fn attach(&self, ctx: &UserCtx<'_>) -> Result<TxnStore, ServiceError> {
        TxnStore::attach(ctx, self.store_base)
            .map_err(|_| ServiceError)?
            .ok_or(ServiceError)
    }

    fn begin(&self, store: &TxnStore, ctx: &UserCtx<'_>, txn: u64, flags: u8) -> TxnResp {
        if flags & FLAG_RETRY != 0 {
            ctx.metrics().record_txn_retry();
        }
        let Ok(meta) = store.meta(ctx) else { return TxnResp::Error };
        let mut live = self.live.lock();
        if live.len() >= MAX_LIVE_TXNS && !live.contains_key(&txn) {
            return TxnResp::Error;
        }
        // Re-beginning an id replaces the old working set (the client
        // gave up on it).
        live.insert(txn, TxnState::new(meta.seq));
        TxnResp::Ok { seq: meta.seq }
    }

    fn read(&self, store: &TxnStore, ctx: &UserCtx<'_>, txn: u64, key: &[u8; KEY_LEN]) -> TxnResp {
        if txn == 0 {
            // Auto-commit read: straight off the stable root.
            return match store.get(ctx, &primary_key(key)) {
                Ok(Some(r)) => TxnResp::Value { val: r.val },
                Ok(None) => TxnResp::Miss,
                Err(_) => TxnResp::Error,
            };
        }
        let mut live = self.live.lock();
        let Some(state) = live.get_mut(&txn) else { return TxnResp::UnknownTxn };
        match txn_read(store, ctx, state, key) {
            Ok(Some(r)) => TxnResp::Value { val: r.val },
            Ok(None) => TxnResp::Miss,
            Err(e) => error_resp(e),
        }
    }

    fn write(
        &self,
        store: &TxnStore,
        ctx: &UserCtx<'_>,
        txn: u64,
        op: WriteOp,
    ) -> TxnResp {
        if txn == 0 {
            // Auto-commit single-key transaction.
            let mut state = TxnState::new(u64::MAX);
            if let Err(e) = txn_write(&mut state, op) {
                return error_resp(e);
            }
            return self.finish_commit(store, ctx, 0, &state);
        }
        let mut live = self.live.lock();
        let Some(state) = live.get_mut(&txn) else { return TxnResp::UnknownTxn };
        match txn_write(state, op) {
            Ok(()) => TxnResp::Ok { seq: state.writes.len() as u64 },
            Err(e) => error_resp(e),
        }
    }

    fn scan(&self, store: &TxnStore, ctx: &UserCtx<'_>, txn: u64, b: ScanBounds<'_>) -> TxnResp {
        let limit = (b.limit as usize).min(crate::engine::MAX_READS);
        let res = if txn == 0 {
            txn_scan(store, ctx, None, b.space, b.lo, b.hi, limit)
        } else {
            let mut live = self.live.lock();
            let Some(state) = live.get_mut(&txn) else { return TxnResp::UnknownTxn };
            txn_scan(store, ctx, Some(state), b.space, b.lo, b.hi, limit)
        };
        match res {
            Ok(recs) => {
                TxnResp::Scan { rows: recs.iter().map(ScanRow::from_record).collect() }
            }
            Err(e) => error_resp(e),
        }
    }

    /// Runs validation + publication for a finished working set and
    /// records the outcome (metrics + flight event). The working set has
    /// already been removed from the live map.
    fn finish_commit(
        &self,
        store: &TxnStore,
        ctx: &UserCtx<'_>,
        txn: u64,
        state: &TxnState,
    ) -> TxnResp {
        match txn_commit(store, ctx, state) {
            Ok(seq) => {
                let latency_ns = state.begun.elapsed().as_nanos() as u64;
                ctx.metrics().record_txn_commit(latency_ns);
                ctx.recorder().record(
                    EventKind::TxnCommit,
                    [
                        seq,
                        txn,
                        state.writes.len() as u64,
                        state.reads.len() as u64,
                        latency_ns,
                        state.snapshot,
                    ],
                );
                TxnResp::Ok { seq }
            }
            Err(TxnError::Conflict) => {
                ctx.metrics().record_txn_abort();
                TxnResp::Conflict
            }
            Err(e) => {
                ctx.metrics().record_txn_abort();
                error_resp(e)
            }
        }
    }

    fn commit(&self, store: &TxnStore, ctx: &UserCtx<'_>, txn: u64) -> TxnResp {
        let Some(state) = self.live.lock().remove(&txn) else { return TxnResp::UnknownTxn };
        self.finish_commit(store, ctx, txn, &state)
    }

    fn abort(&self, txn: u64) -> TxnResp {
        match self.live.lock().remove(&txn) {
            Some(_) => TxnResp::Ok { seq: 0 },
            None => TxnResp::UnknownTxn,
        }
    }
}

impl Service for TxnService {
    fn init(&self, ctx: &mut UserCtx<'_>) -> Result<(), ServiceError> {
        TxnStore::format(ctx, self.store_base, self.node_cap)
            .map(|_| ())
            .map_err(|_| ServiceError)
    }

    fn handle(
        &self,
        ctx: &mut UserCtx<'_>,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), ServiceError> {
        let store = self.attach(ctx)?;
        let resp = match TxnOp::decode(payload) {
            Some(TxnOp::Begin { txn, flags }) => self.begin(&store, ctx, txn, flags),
            Some(TxnOp::Read { txn, key }) => self.read(&store, ctx, txn, &key),
            Some(TxnOp::Write { txn, key, tag, val }) => {
                self.write(&store, ctx, txn, WriteOp { key, tag, val })
            }
            Some(TxnOp::Scan { txn, space, lo, hi, limit }) => {
                self.scan(&store, ctx, txn, ScanBounds { space, lo: &lo, hi: &hi, limit })
            }
            Some(TxnOp::Commit { txn }) => self.commit(&store, ctx, txn),
            Some(TxnOp::Abort { txn }) => self.abort(txn),
            Some(TxnOp::BeginRead { txn, flags, key }) => {
                match self.begin(&store, ctx, txn, flags) {
                    TxnResp::Ok { .. } => self.read(&store, ctx, txn, &key),
                    other => other,
                }
            }
            Some(TxnOp::WriteCommit { txn, key, tag, val }) => {
                let wr = self.write(&store, ctx, txn, WriteOp { key, tag, val });
                match wr {
                    TxnResp::Ok { .. } if txn != 0 => self.commit(&store, ctx, txn),
                    other => other,
                }
            }
            None => TxnResp::Error,
        };
        resp.encode_into(out);
        Ok(())
    }
}
