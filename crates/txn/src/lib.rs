//! `treesls-txn`: multi-key transactions with commit-gated visibility
//! and secondary indexes over the TreeSLS single-level store.
//!
//! The paper's external-synchrony argument (§5) says a whole-system
//! persistent kernel makes transactional guarantees *cheap*: since every
//! externally visible response already waits for the covering checkpoint,
//! a storage engine gets "no committed-then-lost, no visible partial
//! transaction" without a write-ahead log. This crate is that engine:
//!
//! * [`store`] — a copy-on-write B+ tree in checkpointed service memory.
//!   Primary records and secondary-index entries share one composite-key
//!   space, so a commit publishes both with a single selector-word flip
//!   (the only write that changes visible state — the invariant the
//!   `txn.*` crash sites let fault enumeration verify).
//! * [`engine`] — optimistic concurrency control with
//!   first-committer-wins validation: begin snapshots the stable
//!   sequence, reads record per-key version stamps, commit re-validates
//!   and aborts with [`TxnError::Conflict`](engine::TxnError) on any
//!   moved stamp.
//! * [`wire`] — the transaction verbs (opcode range 8–15, disjoint from
//!   the KV protocol), including the paired `BeginRead`/`WriteCommit`
//!   fast path that lets an open-loop generator drive interactive
//!   read-modify-write transactions.
//! * [`service`] — the [`Service`](treesls_net::Service) implementation
//!   behind a NIC queue; working sets are volatile host state that dies
//!   with a crash, exactly like uncommitted transactions should.
//! * [`gate`] — a checkpoint callback tracking the durable commit
//!   frontier, the anchor for the §5 oracle.

#![deny(missing_docs)]

pub mod engine;
pub mod gate;
pub mod service;
pub mod store;
pub mod wire;

pub use engine::{check_index_consistency, TxnError, TxnState, WriteOp};
pub use gate::TxnGate;
pub use service::TxnService;
pub use store::{index_key, primary_key, Record, StoreOp, TxnStore, KEY_LEN, VAL_CAP};
pub use wire::{ScanRow, TxnOp, TxnResp};
