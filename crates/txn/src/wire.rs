//! Wire protocol for the transaction verbs.
//!
//! Extends the KV wire surface (opcodes 1–3 in `treesls-apps`) with a
//! disjoint opcode range for multi-key transactions. Frames are
//! little-endian and length-prefixed only by the ring slot, so decoders
//! must reject every truncated or oversized frame without panicking —
//! property-tested in `treesls-apps/tests/wire_prop.rs`.
//!
//! Transaction ids are **client-chosen**: a tenant picks ids it knows are
//! unique (e.g. `tenant << 48 | counter`), which lets a driver pair a
//! `BeginRead` with a later `WriteCommit` without waiting for the first
//! response, and makes retries after a crash explicit (the server lost
//! every working set; a resent id simply begins a fresh transaction).

use crate::engine::TxnError;
use crate::store::{Record, KEY_LEN, VAL_CAP};

/// Begin a transaction. Payload: `txn_id`, flags.
pub const OP_TXN_BEGIN: u8 = 8;
/// Read one key inside (or outside, id 0) a transaction.
pub const OP_TXN_READ: u8 = 9;
/// Buffer one upsert/delete into a transaction's working set.
pub const OP_TXN_WRITE: u8 = 10;
/// Range-scan the primary space or one index tag.
pub const OP_TXN_SCAN: u8 = 11;
/// Validate and publish a transaction.
pub const OP_TXN_COMMIT: u8 = 12;
/// Drop a transaction's working set.
pub const OP_TXN_ABORT: u8 = 13;
/// Begin + read in one frame (the paired-RMW fast path).
pub const OP_TXN_BEGIN_READ: u8 = 14;
/// Write + commit in one frame (the paired-RMW fast path).
pub const OP_TXN_WRITE_COMMIT: u8 = 15;

// The KV protocol owns opcodes 1..=3; the txn verbs start above it, and
// status codes sit above every opcode.
const _: () = assert!(OP_TXN_BEGIN > 3);
const _: () = assert!(ST_TXN_OK > OP_TXN_WRITE_COMMIT);

/// Generic success (payload: `u64` sequence — snapshot for begin, commit
/// sequence for commit).
pub const ST_TXN_OK: u8 = 16;
/// A value follows (`vlen u16` + bytes).
pub const ST_TXN_VALUE: u8 = 17;
/// Key absent.
pub const ST_TXN_MISS: u8 = 18;
/// Commit validation failed: first committer won, the transaction rolled
/// back.
pub const ST_TXN_CONFLICT: u8 = 19;
/// Scan results follow (`count u16`, then per record: major 16 + minor
/// 16 + `vlen u16` + bytes).
pub const ST_TXN_SCAN: u8 = 20;
/// The transaction id has no live working set (crashed server or typo) —
/// the client should restart the transaction.
pub const ST_TXN_UNKNOWN: u8 = 21;
/// Malformed frame, working-set limit, or store full.
pub const ST_TXN_ERROR: u8 = 22;

/// Begin-flag bit: this begin retries a transaction that previously
/// aborted with a conflict (drives the `txn_conflict_retries` counter).
pub const FLAG_RETRY: u8 = 1;

/// One decoded transaction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Start a transaction with a client-chosen id.
    Begin {
        /// Client-chosen transaction id (0 is reserved for auto-commit).
        txn: u64,
        /// [`FLAG_RETRY`] when retrying after a conflict.
        flags: u8,
    },
    /// Read `key`; `txn == 0` reads the stable snapshot directly.
    Read {
        /// Transaction id (0 = auto-commit read).
        txn: u64,
        /// Primary key.
        key: [u8; KEY_LEN],
    },
    /// Upsert (`val = Some`) or delete (`val = None`); `txn == 0`
    /// commits the single write immediately.
    Write {
        /// Transaction id (0 = auto-commit single-key transaction).
        txn: u64,
        /// Primary key.
        key: [u8; KEY_LEN],
        /// Secondary-index tag (zeros = unindexed).
        tag: [u8; KEY_LEN],
        /// Value, or `None` to delete.
        val: Option<Vec<u8>>,
    },
    /// Range scan: primary keys in `[lo, hi)` (`space` 0) or the members
    /// of index tags `[lo, hi]` (`space` 1).
    Scan {
        /// Transaction id (0 = stable-snapshot scan).
        txn: u64,
        /// 0 = primary order, 1 = secondary (index) order.
        space: u8,
        /// Lower bound (primary key, or index tag).
        lo: [u8; KEY_LEN],
        /// Upper bound.
        hi: [u8; KEY_LEN],
        /// Maximum records returned.
        limit: u16,
    },
    /// Validate + publish.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Drop the working set.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// Begin, then read, in one round trip.
    BeginRead {
        /// Client-chosen transaction id.
        txn: u64,
        /// [`FLAG_RETRY`] when retrying after a conflict.
        flags: u8,
        /// Primary key to read under the fresh snapshot.
        key: [u8; KEY_LEN],
    },
    /// Write, then commit, in one round trip.
    WriteCommit {
        /// Transaction id.
        txn: u64,
        /// Primary key.
        key: [u8; KEY_LEN],
        /// Secondary-index tag.
        tag: [u8; KEY_LEN],
        /// Value, or `None` to delete.
        val: Option<Vec<u8>>,
    },
}

/// Sentinel `vlen` encoding a delete in write frames.
const VLEN_DELETE: u16 = 0xffff;

fn take<const N: usize>(buf: &[u8], at: usize) -> Option<[u8; N]> {
    buf.get(at..at + N)?.try_into().ok()
}

fn take_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(take::<8>(buf, at)?))
}

fn take_u16(buf: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_le_bytes(take::<2>(buf, at)?))
}

fn put_val(out: &mut Vec<u8>, val: &Option<Vec<u8>>) {
    match val {
        Some(v) => {
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            out.extend_from_slice(v);
        }
        None => out.extend_from_slice(&VLEN_DELETE.to_le_bytes()),
    }
}

fn parse_val(buf: &[u8], at: usize) -> Option<(Option<Vec<u8>>, usize)> {
    let vlen = take_u16(buf, at)?;
    if vlen == VLEN_DELETE {
        return Some((None, at + 2));
    }
    let vlen = vlen as usize;
    if vlen > VAL_CAP {
        return None;
    }
    let v = buf.get(at + 2..at + 2 + vlen)?.to_vec();
    Some((Some(v), at + 2 + vlen))
}

impl TxnOp {
    /// Encodes the request frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            TxnOp::Begin { txn, flags } => {
                out.push(OP_TXN_BEGIN);
                out.extend_from_slice(&txn.to_le_bytes());
                out.push(*flags);
            }
            TxnOp::Read { txn, key } => {
                out.push(OP_TXN_READ);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(key);
            }
            TxnOp::Write { txn, key, tag, val } => {
                out.push(OP_TXN_WRITE);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(tag);
                put_val(&mut out, val);
            }
            TxnOp::Scan { txn, space, lo, hi, limit } => {
                out.push(OP_TXN_SCAN);
                out.extend_from_slice(&txn.to_le_bytes());
                out.push(*space);
                out.extend_from_slice(lo);
                out.extend_from_slice(hi);
                out.extend_from_slice(&limit.to_le_bytes());
            }
            TxnOp::Commit { txn } => {
                out.push(OP_TXN_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            TxnOp::Abort { txn } => {
                out.push(OP_TXN_ABORT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            TxnOp::BeginRead { txn, flags, key } => {
                out.push(OP_TXN_BEGIN_READ);
                out.extend_from_slice(&txn.to_le_bytes());
                out.push(*flags);
                out.extend_from_slice(key);
            }
            TxnOp::WriteCommit { txn, key, tag, val } => {
                out.push(OP_TXN_WRITE_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(tag);
                put_val(&mut out, val);
            }
        }
        out
    }

    /// Decodes a request frame; `None` on any malformed input (wrong
    /// opcode, truncation, oversized value, trailing garbage).
    pub fn decode(buf: &[u8]) -> Option<TxnOp> {
        let op = *buf.first()?;
        let txn = take_u64(buf, 1)?;
        let exact = |end: usize| if buf.len() == end { Some(()) } else { None };
        match op {
            OP_TXN_BEGIN => {
                let flags = *buf.get(9)?;
                exact(10)?;
                Some(TxnOp::Begin { txn, flags })
            }
            OP_TXN_READ => {
                let key = take::<KEY_LEN>(buf, 9)?;
                exact(9 + KEY_LEN)?;
                Some(TxnOp::Read { txn, key })
            }
            OP_TXN_WRITE | OP_TXN_WRITE_COMMIT => {
                let key = take::<KEY_LEN>(buf, 9)?;
                let tag = take::<KEY_LEN>(buf, 9 + KEY_LEN)?;
                let (val, end) = parse_val(buf, 9 + 2 * KEY_LEN)?;
                exact(end)?;
                Some(if op == OP_TXN_WRITE {
                    TxnOp::Write { txn, key, tag, val }
                } else {
                    TxnOp::WriteCommit { txn, key, tag, val }
                })
            }
            OP_TXN_SCAN => {
                let space = *buf.get(9)?;
                if space > 1 {
                    return None;
                }
                let lo = take::<KEY_LEN>(buf, 10)?;
                let hi = take::<KEY_LEN>(buf, 10 + KEY_LEN)?;
                let limit = take_u16(buf, 10 + 2 * KEY_LEN)?;
                exact(12 + 2 * KEY_LEN)?;
                Some(TxnOp::Scan { txn, space, lo, hi, limit })
            }
            OP_TXN_COMMIT => {
                exact(9)?;
                Some(TxnOp::Commit { txn })
            }
            OP_TXN_ABORT => {
                exact(9)?;
                Some(TxnOp::Abort { txn })
            }
            OP_TXN_BEGIN_READ => {
                let flags = *buf.get(9)?;
                let key = take::<KEY_LEN>(buf, 10)?;
                exact(10 + KEY_LEN)?;
                Some(TxnOp::BeginRead { txn, flags, key })
            }
            _ => None,
        }
    }
}

/// One scan result row on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRow {
    /// Major key part (primary key, or index tag).
    pub major: [u8; KEY_LEN],
    /// Minor key part (zeros for primary rows; the member key for index
    /// rows).
    pub minor: [u8; KEY_LEN],
    /// Value bytes.
    pub val: Vec<u8>,
}

impl ScanRow {
    /// Builds a wire row from a store record.
    pub fn from_record(r: &Record) -> ScanRow {
        let mut major = [0u8; KEY_LEN];
        let mut minor = [0u8; KEY_LEN];
        major.copy_from_slice(&r.ckey[1..1 + KEY_LEN]);
        minor.copy_from_slice(&r.ckey[1 + KEY_LEN..1 + 2 * KEY_LEN]);
        ScanRow { major, minor, val: r.val.clone() }
    }
}

/// One decoded transaction response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnResp {
    /// Success; `seq` is the snapshot (begin) or commit sequence.
    Ok {
        /// Sequence number (snapshot or commit).
        seq: u64,
    },
    /// Read hit.
    Value {
        /// The value bytes.
        val: Vec<u8>,
    },
    /// Read miss.
    Miss,
    /// Commit aborted: first committer won.
    Conflict,
    /// Scan results.
    Scan {
        /// The returned rows, in key order.
        rows: Vec<ScanRow>,
    },
    /// No live working set under that id.
    UnknownTxn,
    /// Malformed frame / limit / store full.
    Error,
}

impl TxnResp {
    /// Encodes the response into `out` (appends; caller clears).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            TxnResp::Ok { seq } => {
                out.push(ST_TXN_OK);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            TxnResp::Value { val } => {
                out.push(ST_TXN_VALUE);
                out.extend_from_slice(&(val.len() as u16).to_le_bytes());
                out.extend_from_slice(val);
            }
            TxnResp::Miss => out.push(ST_TXN_MISS),
            TxnResp::Conflict => out.push(ST_TXN_CONFLICT),
            TxnResp::Scan { rows } => {
                out.push(ST_TXN_SCAN);
                out.extend_from_slice(&(rows.len() as u16).to_le_bytes());
                for r in rows {
                    out.extend_from_slice(&r.major);
                    out.extend_from_slice(&r.minor);
                    out.extend_from_slice(&(r.val.len() as u16).to_le_bytes());
                    out.extend_from_slice(&r.val);
                }
            }
            TxnResp::UnknownTxn => out.push(ST_TXN_UNKNOWN),
            TxnResp::Error => out.push(ST_TXN_ERROR),
        }
    }

    /// Encodes the response as an owned frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a response frame; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<TxnResp> {
        let exact = |end: usize| if buf.len() == end { Some(()) } else { None };
        match *buf.first()? {
            ST_TXN_OK => {
                let seq = take_u64(buf, 1)?;
                exact(9)?;
                Some(TxnResp::Ok { seq })
            }
            ST_TXN_VALUE => {
                let vlen = take_u16(buf, 1)? as usize;
                if vlen > VAL_CAP {
                    return None;
                }
                let val = buf.get(3..3 + vlen)?.to_vec();
                exact(3 + vlen)?;
                Some(TxnResp::Value { val })
            }
            ST_TXN_MISS => {
                exact(1)?;
                Some(TxnResp::Miss)
            }
            ST_TXN_CONFLICT => {
                exact(1)?;
                Some(TxnResp::Conflict)
            }
            ST_TXN_SCAN => {
                let count = take_u16(buf, 1)? as usize;
                let mut at = 3;
                let mut rows = Vec::with_capacity(count.min(256));
                for _ in 0..count {
                    let major = take::<KEY_LEN>(buf, at)?;
                    let minor = take::<KEY_LEN>(buf, at + KEY_LEN)?;
                    let vlen = take_u16(buf, at + 2 * KEY_LEN)? as usize;
                    if vlen > VAL_CAP {
                        return None;
                    }
                    let vo = at + 2 * KEY_LEN + 2;
                    let val = buf.get(vo..vo + vlen)?.to_vec();
                    rows.push(ScanRow { major, minor, val });
                    at = vo + vlen;
                }
                exact(at)?;
                Some(TxnResp::Scan { rows })
            }
            ST_TXN_UNKNOWN => {
                exact(1)?;
                Some(TxnResp::UnknownTxn)
            }
            ST_TXN_ERROR => {
                exact(1)?;
                Some(TxnResp::Error)
            }
            _ => None,
        }
    }
}

/// Maps an engine error to its wire status.
pub fn error_resp(e: TxnError) -> TxnResp {
    match e {
        TxnError::Conflict => TxnResp::Conflict,
        TxnError::UnknownTxn => TxnResp::UnknownTxn,
        TxnError::Full | TxnError::Limit | TxnError::Io => TxnResp::Error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(b: u8) -> [u8; KEY_LEN] {
        [b; KEY_LEN]
    }

    #[test]
    fn ops_roundtrip() {
        let ops = vec![
            TxnOp::Begin { txn: 7, flags: FLAG_RETRY },
            TxnOp::Read { txn: 7, key: k(1) },
            TxnOp::Write { txn: 7, key: k(1), tag: k(2), val: Some(vec![1, 2, 3]) },
            TxnOp::Write { txn: 7, key: k(1), tag: k(0), val: None },
            TxnOp::Scan { txn: 0, space: 1, lo: k(0), hi: k(9), limit: 25 },
            TxnOp::Commit { txn: 7 },
            TxnOp::Abort { txn: 7 },
            TxnOp::BeginRead { txn: 8, flags: 0, key: k(5) },
            TxnOp::WriteCommit { txn: 8, key: k(5), tag: k(6), val: Some(vec![9]) },
        ];
        for op in ops {
            let enc = op.encode();
            assert_eq!(TxnOp::decode(&enc), Some(op.clone()), "{op:?}");
            // Every strict prefix must be rejected.
            for cut in 0..enc.len() {
                assert!(TxnOp::decode(&enc[..cut]).is_none(), "prefix {cut} of {op:?}");
            }
            // Trailing garbage must be rejected.
            let mut long = enc.clone();
            long.push(0);
            assert!(TxnOp::decode(&long).is_none(), "trailing byte on {op:?}");
        }
    }

    #[test]
    fn resps_roundtrip() {
        let resps = vec![
            TxnResp::Ok { seq: 42 },
            TxnResp::Value { val: vec![1, 2, 3] },
            TxnResp::Miss,
            TxnResp::Conflict,
            TxnResp::Scan {
                rows: vec![
                    ScanRow { major: k(1), minor: k(0), val: vec![5] },
                    ScanRow { major: k(2), minor: k(3), val: vec![] },
                ],
            },
            TxnResp::UnknownTxn,
            TxnResp::Error,
        ];
        for r in resps {
            let enc = r.encode();
            assert_eq!(TxnResp::decode(&enc), Some(r.clone()), "{r:?}");
            for cut in 0..enc.len() {
                assert!(TxnResp::decode(&enc[..cut]).is_none(), "prefix {cut} of {r:?}");
            }
        }
    }

    #[test]
    fn oversized_values_reject() {
        let mut frame = TxnOp::Write { txn: 1, key: k(1), tag: k(0), val: Some(vec![0; 4]) }.encode();
        // Rewrite vlen to something absurd.
        let at = 9 + 2 * KEY_LEN;
        frame[at..at + 2].copy_from_slice(&1000u16.to_le_bytes());
        assert!(TxnOp::decode(&frame).is_none());
    }

}
