//! The transaction durability gate: a checkpoint callback that tracks
//! which committed sequence is covered by a persistent checkpoint.
//!
//! The store itself needs no callback — it lives in checkpointed memory
//! and every commit is one selector flip, so the checkpoint image is
//! always transaction-consistent for free. What *does* need host-side
//! tracking is the durability frontier the §5 oracle checks against:
//!
//! * [`TxnGate::committed_seq`] — the sequence visible on the stable
//!   root right now (may still be volatile);
//! * [`TxnGate::durable_seq`] — the highest sequence captured by a
//!   *committed* checkpoint round. A crash can never lose a transaction
//!   `<= durable_seq`, and the NIC's commit gate guarantees a client
//!   only ever *sees* a commit acknowledgement once its sequence is
//!   durable.
//!
//! The gate follows the NIC-callback idiom: it reads the store header
//! through a [`HostIo`] into the service vmspace at each epoch flip
//! (that snapshot is exactly what the round captures, because the flip
//! happens inside the grace window), promotes the snapshot to durable
//! when the round commits, and resyncs from the restored header after a
//! rollback — also dropping the service's volatile working sets, since
//! uncommitted transactions are supposed to die with the crash.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treesls_checkpoint::CkptCallback;
use treesls_extsync::port::HostIo;

use crate::service::TxnService;
use crate::store::TxnStore;

/// Checkpoint-gated durability tracking for one transaction store.
pub struct TxnGate {
    io: HostIo,
    store_base: u64,
    service: Arc<TxnService>,
    /// Store sequence snapshotted at the epoch flip (what the in-flight
    /// round will capture). `u64::MAX` = no snapshot pending.
    epoch_seq: AtomicU64,
    /// Highest store sequence covered by a committed checkpoint.
    durable_seq: AtomicU64,
}

impl std::fmt::Debug for TxnGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnGate")
            .field("store_base", &self.store_base)
            .field("durable_seq", &self.durable_seq)
            .finish_non_exhaustive()
    }
}

impl TxnGate {
    /// New gate reading the store at `store_base` through `io`, resetting
    /// `service`'s working sets on restore.
    pub fn new(io: HostIo, store_base: u64, service: Arc<TxnService>) -> TxnGate {
        TxnGate {
            io,
            store_base,
            service,
            epoch_seq: AtomicU64::new(u64::MAX),
            durable_seq: AtomicU64::new(0),
        }
    }

    fn read_seq(&self) -> Option<u64> {
        let store = TxnStore::attach(&self.io, self.store_base).ok()??;
        store.meta(&self.io).ok().map(|m| m.seq)
    }

    /// The commit sequence visible on the stable root right now (possibly
    /// not yet durable). `None` until the store is formatted.
    pub fn committed_seq(&self) -> Option<u64> {
        self.read_seq()
    }

    /// The highest commit sequence covered by a committed checkpoint
    /// round. Transactions at or below this can never be lost.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq.load(Ordering::SeqCst)
    }
}

impl CkptCallback for TxnGate {
    fn on_epoch(&self, _version: u64) {
        // Inside the grace-held flip window: the sequence read here is
        // exactly what the round's image captures (no commit can land
        // between this read and the flip).
        if let Some(seq) = self.read_seq() {
            self.epoch_seq.store(seq, Ordering::SeqCst);
        }
    }

    fn on_checkpoint(&self, _version: u64) {
        let snap = self.epoch_seq.swap(u64::MAX, Ordering::SeqCst);
        if snap != u64::MAX {
            self.durable_seq.store(snap, Ordering::SeqCst);
            self.io.kernel().metrics.set_txn_durable(snap);
        }
    }

    fn on_restore(&self, _version: u64) {
        // Uncommitted working sets die with the crash; the durable
        // frontier resyncs to whatever sequence the restored image holds
        // (which is ≥ every acknowledgement any client ever saw, by the
        // NIC commit gate).
        self.service.reset_working_sets();
        let seq = self.read_seq().unwrap_or(0);
        self.epoch_seq.store(u64::MAX, Ordering::SeqCst);
        self.durable_seq.store(seq, Ordering::SeqCst);
        self.io.kernel().metrics.set_txn_durable(seq);
    }
}
