//! TreeSLS — a whole-system persistent microkernel with tree-structured
//! state checkpoint on emulated NVM.
//!
//! This crate is the public facade over the TreeSLS reproduction stack
//! (`treesls-nvm`, `treesls-pmem-alloc`, `treesls-kernel`,
//! `treesls-checkpoint`, `treesls-extsync`). A [`System`] is one emulated
//! machine: boot it, spawn processes whose threads run re-entrant
//! [`Program`]s, start the cores and the millisecond checkpoint timer, and
//! at any point pull the plug with [`System::crash`] and bring everything
//! back with [`System::recover`] — applications resume from the last
//! committed checkpoint with no persistence code of their own.
//!
//! ```
//! use treesls::{System, SystemConfig};
//!
//! let mut sys = System::boot(SystemConfig::small());
//! sys.start();
//! sys.checkpoint_now().unwrap();
//! sys.stop();
//! ```

pub mod crashtest;
pub mod process;
pub mod system;

pub use crashtest::{
    enumerate_crashes, enumerate_site_crashes, enumerate_torn_crashes, run_with_crash_schedule,
    run_with_crash_schedule_ex, CrashRun, CrashScenario, EnumerationReport, FaultEnv,
};
pub use process::{ProcessHandle, ProcessSpec, RegionSpec, ThreadSpec};
pub use system::{System, SystemConfig};

// Re-export the layers a downstream user needs.
pub use treesls_checkpoint::{
    crash as crash_kernel, restore as restore_kernel, CheckpointManager, CkptCallback,
    CrashImage, HybridRoundStats, QuarantinedPage, RecoveryReport, RestoreReport, ScrubReport,
    StwBreakdown,
};
pub use treesls_extsync as extsync;
pub use treesls_net as net;
pub use treesls_obs::{
    EventKind, FlightEvent, FlightRecorder, Json, JsonError, MetricsRegistry, MetricsSnapshot,
    PauseStats, SLOT_LEN,
};
pub use treesls_kernel::cap::CapRights;
pub use treesls_kernel::kernel::LatencyProfile;
pub use treesls_kernel::object::ObjType;
pub use treesls_kernel::pmo::PmoKind;
pub use treesls_kernel::program::{Program, ProgramRegistry, StepOutcome, UserCtx};
pub use treesls_kernel::thread::ThreadContext;
pub use treesls_kernel::types::{KernelError, ObjId, Vaddr, Vpn};
pub use treesls_kernel::{Kernel, KernelConfig};
pub use treesls_nvm::PAGE_SIZE;
