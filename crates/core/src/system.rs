//! The `System` facade: one emulated TreeSLS machine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use treesls_checkpoint::{crash as crash_kernel, restore as restore_kernel};
use treesls_checkpoint::{CheckpointManager, CrashImage, RestoreReport, StwBreakdown};
use treesls_kernel::cores::{CoreSet, StwController};
use treesls_kernel::object::ObjectBody;
use treesls_kernel::program::{Program, ProgramRegistry};
use treesls_kernel::thread::ThreadState;
use treesls_kernel::types::{KernelError, ObjId, Vaddr};
use treesls_kernel::{Kernel, KernelConfig};

use crate::process::{ProcessHandle, ProcessSpec};

/// Configuration of a whole emulated machine.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Kernel/memory configuration.
    pub kernel: KernelConfig,
    /// Number of simulated CPU cores.
    pub cores: usize,
    /// Program steps a core runs per scheduling slice.
    pub quantum: usize,
    /// Periodic checkpoint interval; `None` disables the timer (manual
    /// checkpoints only). The paper's headline configuration is 1 ms.
    pub checkpoint_interval: Option<Duration>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            kernel: KernelConfig::default(),
            cores: 4,
            quantum: 32,
            checkpoint_interval: Some(Duration::from_millis(1)),
        }
    }
}

impl SystemConfig {
    /// A small configuration for tests: 2 cores, 16 MiB NVM, manual
    /// checkpoints.
    pub fn small() -> Self {
        Self {
            kernel: KernelConfig { nvm_frames: 4096, dram_pages: 256, ..KernelConfig::default() },
            cores: 2,
            quantum: 16,
            checkpoint_interval: None,
        }
    }
}

/// The periodic checkpoint timer (the "leader core" loop).
struct CkptTimer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl CkptTimer {
    fn start(mgr: Arc<CheckpointManager>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ckpt-leader".into())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                while !stop2.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(interval));
                        continue;
                    }
                    let _ = mgr.checkpoint();
                    next += interval;
                    // Do not try to catch up after long stalls.
                    if next < Instant::now() {
                        next = Instant::now() + interval;
                    }
                }
            })
            .expect("spawn checkpoint timer");
        Self { stop, handle: Some(handle) }
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            h.join().expect("checkpoint timer panicked");
        }
    }
}

/// One emulated TreeSLS machine.
pub struct System {
    kernel: Arc<Kernel>,
    stw: Arc<StwController>,
    mgr: Arc<CheckpointManager>,
    cores: Option<CoreSet>,
    timer: Option<CkptTimer>,
    config: SystemConfig,
}

impl System {
    /// Boots a fresh machine (formats the emulated NVM).
    pub fn boot(config: SystemConfig) -> System {
        let kernel = Kernel::boot(config.kernel.clone());
        Self::assemble(kernel, config)
    }

    fn assemble(kernel: Arc<Kernel>, config: SystemConfig) -> System {
        let stw = Arc::new(StwController::new());
        let mgr = CheckpointManager::new(Arc::clone(&kernel), Arc::clone(&stw));
        System { kernel, stw, mgr, cores: None, timer: None, config }
    }

    /// The kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The checkpoint manager.
    pub fn manager(&self) -> &Arc<CheckpointManager> {
        &self.mgr
    }

    /// The program registry.
    pub fn programs(&self) -> &ProgramRegistry {
        &self.kernel.programs
    }

    /// Registers a program.
    pub fn register_program(&self, name: &str, program: Arc<dyn Program>) {
        self.kernel.programs.register(name, program);
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Starts the cores and (if configured) the checkpoint timer.
    pub fn start(&mut self) {
        if self.cores.is_none() {
            self.cores = Some(CoreSet::start(
                Arc::clone(&self.kernel),
                Arc::clone(&self.stw),
                self.config.cores,
                self.config.quantum,
            ));
        }
        if self.timer.is_none() {
            if let Some(interval) = self.config.checkpoint_interval {
                self.timer = Some(CkptTimer::start(Arc::clone(&self.mgr), interval));
            }
        }
    }

    /// Stops the checkpoint timer and the cores (in that order).
    pub fn stop(&mut self) {
        if let Some(t) = self.timer.take() {
            t.stop();
        }
        if let Some(c) = self.cores.take() {
            c.stop();
        }
    }

    /// Takes one checkpoint synchronously.
    pub fn checkpoint_now(&self) -> Result<StwBreakdown, KernelError> {
        self.mgr.checkpoint()
    }

    /// One consistent observability snapshot of the whole machine.
    ///
    /// Merges the kernel's [`MetricsRegistry`](treesls_obs::MetricsRegistry)
    /// (checkpoint/hybrid/ext-sync counters and the pause histogram) with
    /// the fault counters, the NVM device counters and the allocator
    /// journal stats that live outside the registry. Snapshots are plain
    /// values: diff two with [`MetricsSnapshot::since`](
    /// treesls_obs::MetricsSnapshot::since) to scope counters to an
    /// interval, or serialize with `to_json()`.
    pub fn metrics_snapshot(&self) -> treesls_obs::MetricsSnapshot {
        let mut snap = self.kernel.metrics.snapshot();
        let faults = self.kernel.stats.snapshot();
        snap.write_faults = faults.write_faults;
        snap.minor_faults = faults.minor_faults;
        snap.cow_copies = faults.cow_copies;
        let nvm = self.kernel.pers.dev.stats().snapshot();
        snap.nvm_bytes_written = nvm.bytes_written;
        snap.nvm_bytes_read = nvm.bytes_read;
        snap.nvm_page_copies = nvm.page_copies;
        snap.journal_high_water = self.kernel.pers.alloc.journal_high_water();
        snap.journal_truncated = self.kernel.pers.alloc.journal_truncated();
        snap
    }

    /// Spawns a process from a spec.
    pub fn spawn(&self, spec: &ProcessSpec) -> Result<ProcessHandle, KernelError> {
        let kernel = &self.kernel;
        let cap_group = kernel.create_cap_group(&spec.name)?;
        let vmspace = kernel.create_vmspace(cap_group)?;
        let mut pmos = Vec::with_capacity(spec.regions.len());
        for r in &spec.regions {
            let pmo = kernel.create_pmo(cap_group, r.npages, r.kind)?;
            kernel.map_region(vmspace, r.base, r.npages, pmo, 0, r.perm)?;
            pmos.push(pmo);
        }
        let mut threads = Vec::with_capacity(spec.threads.len());
        for t in &spec.threads {
            threads.push(kernel.create_thread(cap_group, vmspace, &t.program, t.ctx)?);
        }
        Ok(ProcessHandle { cap_group, vmspace, pmos, threads })
    }

    /// Reads process memory (host-side convenience).
    pub fn read_mem(&self, vmspace: ObjId, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        self.kernel.vm_read(vmspace, Vaddr(addr), buf)
    }

    /// Writes process memory (host-side convenience).
    pub fn write_mem(&self, vmspace: ObjId, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        self.kernel.vm_write(vmspace, Vaddr(addr), data)
    }

    /// Returns `true` once `thread` has exited.
    pub fn thread_exited(&self, thread: ObjId) -> bool {
        match self.kernel.object(thread) {
            Ok(o) => {
                let body = o.body.read();
                matches!(&*body, ObjectBody::Thread(t) if t.state == ThreadState::Exited)
            }
            Err(_) => true,
        }
    }

    /// Blocks until every thread in `threads` exits or `timeout` elapses;
    /// returns `true` on success.
    pub fn join_threads(&self, threads: &[ObjId], timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if threads.iter().all(|&t| self.thread_exited(t)) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Pulls the plug: stops everything and discards all volatile state,
    /// returning only what the NVM holds.
    pub fn crash(mut self) -> CrashImage {
        self.stop();
        let kernel = Arc::clone(&self.kernel);
        drop(self);
        crash_kernel(kernel)
    }

    /// Recovers a machine from a crash image.
    ///
    /// `register_programs` re-registers the application programs (like
    /// reloading binaries after reboot). Cores and the timer are *not*
    /// started; call [`start`](Self::start) once external-synchrony
    /// callbacks are re-registered and
    /// [`CheckpointManager::fire_restore_callbacks`] has run.
    pub fn recover(
        image: CrashImage,
        config: SystemConfig,
        register_programs: impl FnOnce(&ProgramRegistry),
    ) -> Result<(System, RestoreReport), KernelError> {
        let (kernel, report) = restore_kernel(image, config.kernel.clone(), register_programs)?;
        Ok((Self::assemble(kernel, config), report))
    }
}

impl Drop for System {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("version", &self.kernel.pers.global_version())
            .field("cores", &self.config.cores)
            .field("running", &self.cores.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{ProcessSpec, ThreadSpec};
    use treesls_kernel::program::{StepOutcome, UserCtx};

    struct Bump;
    impl Program for Bump {
        fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
            let n = ctx.reg(1);
            if ctx.reg(2) >= n {
                return StepOutcome::Exited;
            }
            let v = ctx.read_u64(0).unwrap();
            ctx.write_u64(0, v + 1).unwrap();
            ctx.set_reg(2, ctx.reg(2) + 1);
            StepOutcome::Ready
        }
    }

    #[test]
    fn boot_spawn_run_join() {
        let mut sys = System::boot(SystemConfig::small());
        sys.register_program("bump", Arc::new(Bump));
        let p = sys
            .spawn(&ProcessSpec::new("worker").heap(8).thread(ThreadSpec::new("bump").reg(1, 500)))
            .unwrap();
        sys.start();
        assert!(sys.join_threads(&p.threads, Duration::from_secs(10)));
        sys.stop();
        let mut buf = [0u8; 8];
        sys.read_mem(p.vmspace, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 500);
    }

    #[test]
    fn periodic_checkpoints_run_alongside_workload() {
        let mut cfg = SystemConfig::small();
        cfg.checkpoint_interval = Some(Duration::from_millis(1));
        let mut sys = System::boot(cfg);
        sys.register_program("bump", Arc::new(Bump));
        let p = sys
            .spawn(&ProcessSpec::new("w").heap(8).thread(ThreadSpec::new("bump").reg(1, 20_000)))
            .unwrap();
        sys.start();
        assert!(sys.join_threads(&p.threads, Duration::from_secs(30)));
        sys.stop();
        // Multiple checkpoints committed while the workload ran.
        assert!(sys.kernel().pers.global_version() >= 2);
        let mut buf = [0u8; 8];
        sys.read_mem(p.vmspace, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 20_000);
    }

    #[test]
    fn crash_recover_roundtrip_via_facade() {
        let mut sys = System::boot(SystemConfig::small());
        sys.register_program("bump", Arc::new(Bump));
        let p = sys
            .spawn(&ProcessSpec::new("w").heap(8).thread(ThreadSpec::new("bump").reg(1, 100)))
            .unwrap();
        sys.start();
        assert!(sys.join_threads(&p.threads, Duration::from_secs(10)));
        sys.stop();
        sys.checkpoint_now().unwrap();
        let image = sys.crash();
        let (sys2, report) =
            System::recover(image, SystemConfig::small(), |r| r.register("bump", Arc::new(Bump)))
                .unwrap();
        assert_eq!(report.version, 1);
        // The counter survived at its checkpointed value.
        let vs = {
            let objects = sys2.kernel().objects.read();
            let mut found = None;
            for (id, o) in objects.iter() {
                if o.otype == treesls_kernel::object::ObjType::VmSpace {
                    // Only one non-root process exists.
                    found = Some(id);
                }
            }
            found.unwrap()
        };
        let mut buf = [0u8; 8];
        sys2.read_mem(vs, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 100);
    }
}
