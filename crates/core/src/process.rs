//! Declarative process construction.
//!
//! A [`ProcessSpec`] describes one user-space process: its memory regions
//! (ordinary data PMOs and eternal PMOs for driver state), and its threads
//! with their programs and initial register contexts. [`System::spawn`]
//! materializes the spec into the capability tree.
//!
//! [`System::spawn`]: crate::System::spawn

use treesls_kernel::cap::CapRights;
use treesls_kernel::pmo::PmoKind;
use treesls_kernel::thread::ThreadContext;
use treesls_kernel::types::{ObjId, Vpn};

/// One memory region of a process.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// First virtual page.
    pub base: Vpn,
    /// Length in pages.
    pub npages: u64,
    /// Ordinary (rolled-back) or eternal (crash-surviving) memory.
    pub kind: PmoKind,
    /// Access permissions.
    pub perm: CapRights,
}

impl RegionSpec {
    /// An ordinary read-write data region.
    pub fn data(base: Vpn, npages: u64) -> Self {
        Self { base, npages, kind: PmoKind::Data, perm: CapRights::ALL }
    }

    /// An eternal region (ring buffers, driver state; §5 of the paper).
    pub fn eternal(base: Vpn, npages: u64) -> Self {
        Self { base, npages, kind: PmoKind::Eternal, perm: CapRights::ALL }
    }
}

/// One thread of a process.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Program registry key.
    pub program: String,
    /// Initial register context.
    pub ctx: ThreadContext,
}

impl ThreadSpec {
    /// A thread with a zeroed context.
    pub fn new(program: impl Into<String>) -> Self {
        Self { program: program.into(), ctx: ThreadContext::new() }
    }

    /// Sets an initial register value.
    pub fn reg(mut self, i: usize, v: u64) -> Self {
        self.ctx.regs[i] = v;
        self
    }
}

/// A process description consumed by [`System::spawn`].
///
/// [`System::spawn`]: crate::System::spawn
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Process name (diagnostics, Table 2 census).
    pub name: String,
    /// Memory regions; must not overlap.
    pub regions: Vec<RegionSpec>,
    /// Threads to create (all enqueued immediately).
    pub threads: Vec<ThreadSpec>,
}

impl ProcessSpec {
    /// Starts a spec with the given name and no regions or threads.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), regions: Vec::new(), threads: Vec::new() }
    }

    /// Adds a `npages`-page data heap at virtual page 0.
    pub fn heap(mut self, npages: u64) -> Self {
        self.regions.push(RegionSpec::data(Vpn(0), npages));
        self
    }

    /// Adds a region.
    pub fn region(mut self, region: RegionSpec) -> Self {
        self.regions.push(region);
        self
    }

    /// Adds a thread.
    pub fn thread(mut self, thread: ThreadSpec) -> Self {
        self.threads.push(thread);
        self
    }
}

/// Handles to the kernel objects of a spawned process.
#[derive(Debug, Clone)]
pub struct ProcessHandle {
    /// The process cap group.
    pub cap_group: ObjId,
    /// The process VM space.
    pub vmspace: ObjId,
    /// PMOs, in `regions` order.
    pub pmos: Vec<ObjId>,
    /// Threads, in `threads` order.
    pub threads: Vec<ObjId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_accumulates() {
        let spec = ProcessSpec::new("kv")
            .heap(128)
            .region(RegionSpec::eternal(Vpn(1000), 4))
            .thread(ThreadSpec::new("server").reg(1, 42));
        assert_eq!(spec.name, "kv");
        assert_eq!(spec.regions.len(), 2);
        assert_eq!(spec.regions[0].kind, PmoKind::Data);
        assert_eq!(spec.regions[1].kind, PmoKind::Eternal);
        assert_eq!(spec.threads.len(), 1);
        assert_eq!(spec.threads[0].ctx.regs[1], 42);
    }
}
