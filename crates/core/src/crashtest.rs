//! Deterministic crash-schedule testing: run a workload, pull the plug at
//! a chosen NVM write or named crash site, recover, and check invariants.
//!
//! This is the systematic version of the paper's §7.2 fault injection
//! ("we manually crash and reboot the system while running these
//! programs"): instead of crashing at arbitrary wall-clock points, the
//! [`treesls_nvm::CrashSchedule`] cuts execution at an *exact* NVM write
//! index or crash-site occurrence, so every interesting interleaving of
//! the checkpoint protocol can be enumerated and replayed byte-for-byte.
//!
//! A scenario runs single-threaded: cores are never started, programs are
//! stepped inline with [`treesls_kernel::cores::run_slice`], and
//! checkpoints are taken with [`System::checkpoint_now`]. With no timer
//! threads and no scheduler, the sequence of NVM writes is a pure function
//! of the scenario, which is what makes `crash at write i` reproducible.
//!
//! A failure is reported as `(seed = the scenario, site/write index)`; to
//! reproduce, re-run [`run_with_crash_schedule`] with the same
//! [`CrashPoint`].

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::Once;

use treesls_checkpoint::RestoreReport;
use treesls_kernel::program::ProgramRegistry;
use treesls_nvm::{CrashPoint, InjectedCrash, PersistMode, SiteHit};

use crate::system::{System, SystemConfig};

/// Persistence-domain behaviour for one crash run (the fault environment
/// the "power failure" happens in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEnv {
    /// Persistence mode active during the workload phase.
    pub mode: PersistMode,
    /// Seed deciding which unfenced lines the failing power domain loses
    /// at the cut (see [`treesls_nvm::NvmDevice::settle_crash`]);
    /// `u64::MAX` drops *every* pending line — the adversarial worst
    /// case. Irrelevant under [`PersistMode::Eadr`] (nothing is pending).
    pub settle_seed: u64,
}

impl FaultEnv {
    /// Today's hardware assumption: flush-on-fail, nothing is ever lost.
    pub fn eadr() -> Self {
        Self { mode: PersistMode::Eadr, settle_seed: 0 }
    }

    /// ADR with the given reorder window, losing every unfenced line at
    /// the crash.
    pub fn adr_worst(reorder_window: usize) -> Self {
        Self { mode: PersistMode::Adr { reorder_window }, settle_seed: u64::MAX }
    }
}

/// One crash-injection workload.
///
/// The harness owns the system lifecycle; the scenario provides the
/// pieces that differ per workload:
///
/// * [`setup`](CrashScenario::setup) boots programs/processes and **must
///   commit at least one checkpoint** (the recovery floor — a crash
///   before any commit has nothing to restore to);
/// * [`workload`](CrashScenario::workload) is the phase under test: every
///   NVM write it performs is a candidate crash point;
/// * [`verify`](CrashScenario::verify) is the oracle, called on the
///   recovered system.
///
/// `State` carries oracle data (expected snapshots, observed replies)
/// across the crash — it lives on the host side of the "power failure",
/// like a client's view of the server.
pub trait CrashScenario {
    /// Host-side oracle state surviving the crash.
    type State;

    /// The machine configuration (used for boot and for recovery).
    fn config(&self) -> SystemConfig;

    /// Boots processes and takes the initial checkpoint.
    fn setup(&self, sys: &mut System) -> Self::State;

    /// The workload phase; crashes are injected inside this call.
    fn workload(&self, sys: &mut System, st: &mut Self::State);

    /// Re-registers programs after reboot (the "binaries on disk").
    fn programs(&self, reg: &ProgramRegistry);

    /// Re-wires host-side attachments (network ports, callbacks) to the
    /// recovered system, before the restore callbacks fire.
    fn reattach(&self, _sys: &mut System, _st: &mut Self::State) {}

    /// The consistency oracle, run on the recovered system.
    fn verify(
        &self,
        sys: &mut System,
        st: &mut Self::State,
        report: &RestoreReport,
    ) -> Result<(), String>;
}

/// Outcome of one crash-schedule run.
#[derive(Debug)]
pub struct CrashRun {
    /// Whether the armed crash actually fired (`false` means the workload
    /// completed before reaching the scheduled point; the plug was pulled
    /// after completion instead).
    pub crashed: bool,
    /// The recovery report.
    pub report: RestoreReport,
}

/// Results of a crash-point enumeration.
#[derive(Debug, Default)]
pub struct EnumerationReport {
    /// NVM writes (page + metadata) performed by one clean workload run.
    pub writes: u64,
    /// Crash-site trace of the clean run, in order.
    pub sites: Vec<SiteHit>,
    /// Crash runs executed.
    pub runs: usize,
    /// Runs in which the scheduled crash fired before completion.
    pub injected: usize,
    /// `(crash point description, error)` for every failed run.
    pub failures: Vec<(String, String)>,
}

impl EnumerationReport {
    /// Panics with a readable summary if any run failed.
    pub fn assert_clean(&self) {
        if !self.failures.is_empty() {
            let mut msg = format!(
                "{} of {} crash runs failed ({} writes, {} site hits):\n",
                self.failures.len(),
                self.runs,
                self.writes,
                self.sites.len()
            );
            for (point, err) in &self.failures {
                msg.push_str(&format!("  at {point}: {err}\n"));
            }
            panic!("{msg}");
        }
    }
}

/// Suppresses the default panic-hook noise for [`InjectedCrash`] unwinds
/// (an enumeration triggers thousands of them); real panics still print.
fn quiet_injected_crash_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs `scenario` once, crashing at `point` (or never, if `None` or the
/// workload finishes first), then recovers and verifies.
///
/// The flow is: boot → setup → arm → workload (the injected crash unwinds
/// out of it) → disarm → [`System::crash`] → [`System::recover`] →
/// reattach → restore callbacks → [`CheckpointManager::verify_checkpoint`]
/// → scenario oracle. The schedule is disarmed before recovery because
/// recovery legitimately writes NVM (allocator rebuild, version-tag
/// repair) and must not trip the fuse.
///
/// [`CheckpointManager::verify_checkpoint`]:
/// treesls_checkpoint::CheckpointManager::verify_checkpoint
pub fn run_with_crash_schedule<S: CrashScenario>(
    scenario: &S,
    point: Option<CrashPoint>,
) -> Result<CrashRun, String> {
    run_with_crash_schedule_ex(scenario, point, FaultEnv::eadr())
}

/// [`run_with_crash_schedule`] under an explicit fault environment: the
/// workload runs in `env.mode`, and — when the crash fires — the device
/// [settles](treesls_nvm::NvmDevice::settle_crash) with `env.settle_seed`,
/// losing a seed-chosen subset of the unfenced reorder window before
/// recovery begins. Recovery itself always runs under eADR (a healthy
/// replacement power domain).
pub fn run_with_crash_schedule_ex<S: CrashScenario>(
    scenario: &S,
    point: Option<CrashPoint>,
    env: FaultEnv,
) -> Result<CrashRun, String> {
    quiet_injected_crash_panics();
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    let dev = std::sync::Arc::clone(&sys.kernel().pers.dev);
    let sched = std::sync::Arc::clone(dev.crash_schedule());
    dev.set_persist_mode(env.mode);
    if let Some(p) = point {
        sched.arm(p);
    }
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| scenario.workload(&mut sys, &mut st)));
    sched.disarm();
    let crashed = match run {
        Ok(()) => false,
        Err(payload) => {
            if payload.downcast_ref::<InjectedCrash>().is_none() {
                // A genuine bug in the workload, not an injected crash.
                std::panic::resume_unwind(payload);
            }
            true
        }
    };
    if crashed {
        // Power failure: the failing domain loses a seed-chosen subset of
        // the lines that were never fenced.
        dev.settle_crash(env.settle_seed);
    } else {
        // Clean completion: an orderly shutdown drains everything.
        dev.persist_barrier();
    }
    dev.set_persist_mode(PersistMode::Eadr);
    let image = sys.crash();
    let (mut sys2, report) = System::recover(image, scenario.config(), |r| scenario.programs(r))
        .map_err(|e| format!("recovery failed: {e:?}"))?;
    scenario.reattach(&mut sys2, &mut st);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.manager()
        .verify_checkpoint()
        .map_err(|e| format!("verify_checkpoint after restore: {e}"))?;
    scenario.verify(&mut sys2, &mut st, &report)?;
    Ok(CrashRun { crashed, report })
}

impl System {
    /// Convenience entry point for [`run_with_crash_schedule`]: runs one
    /// scenario to the scheduled crash point, recovers, and verifies.
    ///
    /// An associated function (not a method) because the scenario's
    /// system is consumed by the simulated power failure mid-run.
    pub fn run_with_crash_schedule<S: CrashScenario>(
        scenario: &S,
        point: Option<CrashPoint>,
    ) -> Result<CrashRun, String> {
        run_with_crash_schedule(scenario, point)
    }
}

/// Dry-runs `scenario` (no crash) to measure the workload phase, returning
/// its NVM write count and crash-site trace.
pub fn measure<S: CrashScenario>(scenario: &S) -> (u64, Vec<SiteHit>) {
    let (writes, sites, _) = measure_with_trace(scenario);
    (writes, sites)
}

/// [`measure`] plus the full per-write trace (offset and length of every
/// NVM store), which torn-write enumeration uses to derive each write's
/// tear classes.
pub fn measure_with_trace<S: CrashScenario>(
    scenario: &S,
) -> (u64, Vec<SiteHit>, Vec<treesls_nvm::WriteRec>) {
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    let sched = std::sync::Arc::clone(sys.kernel().pers.dev.crash_schedule());
    let before = sched.counts().total();
    sched.start_trace();
    sched.start_write_trace();
    scenario.workload(&mut sys, &mut st);
    let sites = sched.take_trace();
    let trace = sched.take_write_trace();
    let writes = sched.counts().total() - before;
    (writes, sites, trace)
}

/// Exhaustively replays `scenario`, crashing at every `stride`-th NVM
/// write index of the workload phase (`stride == 1` covers every single
/// write — the acceptance mode; CI smoke jobs pass a larger stride).
pub fn enumerate_crashes<S: CrashScenario>(scenario: &S, stride: u64) -> EnumerationReport {
    assert!(stride >= 1, "stride must be at least 1");
    let (writes, sites) = measure(scenario);
    let mut report =
        EnumerationReport { writes, sites, ..Default::default() };
    let mut i = 1;
    while i <= writes {
        report.runs += 1;
        match run_with_crash_schedule(scenario, Some(CrashPoint::AnyWrite(i - 1))) {
            Ok(r) => {
                if r.crashed {
                    report.injected += 1;
                }
            }
            Err(e) => report.failures.push((format!("write {i}/{writes}"), e)),
        }
        i += stride;
    }
    report
}

/// Exhaustively replays `scenario` under the **torn-write model**: for
/// every `stride`-th NVM write of the workload phase and every cache-line
/// tear class of that write (cut 0 = nothing applied, cut *k* = the
/// prefix up to the *k*-th interior 64-byte boundary applied), the fuse
/// fires *mid-write* and the run recovers and verifies.
///
/// `env.mode` selects the persistence model; under
/// [`PersistMode::Adr`] each `(write, cut)` pair is additionally replayed
/// once per seed in `drop_seeds`, losing a different subset of the
/// unfenced reorder window each time. Under [`PersistMode::Eadr`] pass a
/// single seed (the window is always empty).
pub fn enumerate_torn_crashes<S: CrashScenario>(
    scenario: &S,
    stride: u64,
    env_mode: PersistMode,
    drop_seeds: &[u64],
) -> EnumerationReport {
    assert!(stride >= 1, "stride must be at least 1");
    assert!(!drop_seeds.is_empty(), "need at least one settle seed");
    let (writes, sites, trace) = measure_with_trace(scenario);
    let mut report = EnumerationReport { writes, sites, ..Default::default() };
    let mut skip = 0u64;
    while (skip as usize) < trace.len() {
        let rec = trace[skip as usize];
        for cut in 0..=rec.tear_cuts() {
            for &seed in drop_seeds {
                report.runs += 1;
                let point = CrashPoint::TornWrite { skip, cut };
                let env = FaultEnv { mode: env_mode, settle_seed: seed };
                match run_with_crash_schedule_ex(scenario, Some(point), env) {
                    Ok(r) => {
                        if r.crashed {
                            report.injected += 1;
                        }
                    }
                    Err(e) => report.failures.push((
                        format!(
                            "torn write {skip}/{} cut {cut}/{} seed {seed:#x} \
                             ({:?} off {} len {})",
                            trace.len(),
                            rec.tear_cuts(),
                            rec.kind,
                            rec.off,
                            rec.len
                        ),
                        e,
                    )),
                }
            }
        }
        skip += stride;
    }
    report
}

/// Replays `scenario`, crashing at every occurrence of every named crash
/// site the clean run traverses (`crash_site!` markers across the
/// checkpoint manager, allocator journal, persistence commit, and ring
/// callbacks).
pub fn enumerate_site_crashes<S: CrashScenario>(scenario: &S) -> EnumerationReport {
    let (writes, sites) = measure(scenario);
    let mut occurrences: HashMap<&'static str, u64> = HashMap::new();
    for hit in &sites {
        *occurrences.entry(hit.name).or_default() += 1;
    }
    let mut names: Vec<_> = occurrences.into_iter().collect();
    names.sort();
    let mut report =
        EnumerationReport { writes, sites, ..Default::default() };
    for (name, count) in names {
        for skip in 0..count {
            report.runs += 1;
            let point = CrashPoint::Site { name: name.to_string(), skip };
            match run_with_crash_schedule(scenario, Some(point)) {
                Ok(r) => {
                    if r.crashed {
                        report.injected += 1;
                    }
                }
                Err(e) => report.failures.push((format!("site {name}#{skip}"), e)),
            }
        }
    }
    report
}
