//! Deterministic crash-schedule testing: run a workload, pull the plug at
//! a chosen NVM write or named crash site, recover, and check invariants.
//!
//! This is the systematic version of the paper's §7.2 fault injection
//! ("we manually crash and reboot the system while running these
//! programs"): instead of crashing at arbitrary wall-clock points, the
//! [`treesls_nvm::CrashSchedule`] cuts execution at an *exact* NVM write
//! index or crash-site occurrence, so every interesting interleaving of
//! the checkpoint protocol can be enumerated and replayed byte-for-byte.
//!
//! A scenario runs single-threaded: cores are never started, programs are
//! stepped inline with [`treesls_kernel::cores::run_slice`], and
//! checkpoints are taken with [`System::checkpoint_now`]. With no timer
//! threads and no scheduler, the sequence of NVM writes is a pure function
//! of the scenario, which is what makes `crash at write i` reproducible.
//!
//! A failure is reported as `(seed = the scenario, site/write index)`; to
//! reproduce, re-run [`run_with_crash_schedule`] with the same
//! [`CrashPoint`].

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::Once;

use treesls_checkpoint::RestoreReport;
use treesls_kernel::program::ProgramRegistry;
use treesls_nvm::{CrashPoint, InjectedCrash, SiteHit};

use crate::system::{System, SystemConfig};

/// One crash-injection workload.
///
/// The harness owns the system lifecycle; the scenario provides the
/// pieces that differ per workload:
///
/// * [`setup`](CrashScenario::setup) boots programs/processes and **must
///   commit at least one checkpoint** (the recovery floor — a crash
///   before any commit has nothing to restore to);
/// * [`workload`](CrashScenario::workload) is the phase under test: every
///   NVM write it performs is a candidate crash point;
/// * [`verify`](CrashScenario::verify) is the oracle, called on the
///   recovered system.
///
/// `State` carries oracle data (expected snapshots, observed replies)
/// across the crash — it lives on the host side of the "power failure",
/// like a client's view of the server.
pub trait CrashScenario {
    /// Host-side oracle state surviving the crash.
    type State;

    /// The machine configuration (used for boot and for recovery).
    fn config(&self) -> SystemConfig;

    /// Boots processes and takes the initial checkpoint.
    fn setup(&self, sys: &mut System) -> Self::State;

    /// The workload phase; crashes are injected inside this call.
    fn workload(&self, sys: &mut System, st: &mut Self::State);

    /// Re-registers programs after reboot (the "binaries on disk").
    fn programs(&self, reg: &ProgramRegistry);

    /// Re-wires host-side attachments (network ports, callbacks) to the
    /// recovered system, before the restore callbacks fire.
    fn reattach(&self, _sys: &mut System, _st: &mut Self::State) {}

    /// The consistency oracle, run on the recovered system.
    fn verify(
        &self,
        sys: &mut System,
        st: &mut Self::State,
        report: &RestoreReport,
    ) -> Result<(), String>;
}

/// Outcome of one crash-schedule run.
#[derive(Debug)]
pub struct CrashRun {
    /// Whether the armed crash actually fired (`false` means the workload
    /// completed before reaching the scheduled point; the plug was pulled
    /// after completion instead).
    pub crashed: bool,
    /// The recovery report.
    pub report: RestoreReport,
}

/// Results of a crash-point enumeration.
#[derive(Debug, Default)]
pub struct EnumerationReport {
    /// NVM writes (page + metadata) performed by one clean workload run.
    pub writes: u64,
    /// Crash-site trace of the clean run, in order.
    pub sites: Vec<SiteHit>,
    /// Crash runs executed.
    pub runs: usize,
    /// Runs in which the scheduled crash fired before completion.
    pub injected: usize,
    /// `(crash point description, error)` for every failed run.
    pub failures: Vec<(String, String)>,
}

impl EnumerationReport {
    /// Panics with a readable summary if any run failed.
    pub fn assert_clean(&self) {
        if !self.failures.is_empty() {
            let mut msg = format!(
                "{} of {} crash runs failed ({} writes, {} site hits):\n",
                self.failures.len(),
                self.runs,
                self.writes,
                self.sites.len()
            );
            for (point, err) in &self.failures {
                msg.push_str(&format!("  at {point}: {err}\n"));
            }
            panic!("{msg}");
        }
    }
}

/// Suppresses the default panic-hook noise for [`InjectedCrash`] unwinds
/// (an enumeration triggers thousands of them); real panics still print.
fn quiet_injected_crash_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs `scenario` once, crashing at `point` (or never, if `None` or the
/// workload finishes first), then recovers and verifies.
///
/// The flow is: boot → setup → arm → workload (the injected crash unwinds
/// out of it) → disarm → [`System::crash`] → [`System::recover`] →
/// reattach → restore callbacks → [`CheckpointManager::verify_checkpoint`]
/// → scenario oracle. The schedule is disarmed before recovery because
/// recovery legitimately writes NVM (allocator rebuild, version-tag
/// repair) and must not trip the fuse.
///
/// [`CheckpointManager::verify_checkpoint`]:
/// treesls_checkpoint::CheckpointManager::verify_checkpoint
pub fn run_with_crash_schedule<S: CrashScenario>(
    scenario: &S,
    point: Option<CrashPoint>,
) -> Result<CrashRun, String> {
    quiet_injected_crash_panics();
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    let sched = std::sync::Arc::clone(sys.kernel().pers.dev.crash_schedule());
    if let Some(p) = point {
        sched.arm(p);
    }
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| scenario.workload(&mut sys, &mut st)));
    sched.disarm();
    let crashed = match run {
        Ok(()) => false,
        Err(payload) => {
            if payload.downcast_ref::<InjectedCrash>().is_none() {
                // A genuine bug in the workload, not an injected crash.
                std::panic::resume_unwind(payload);
            }
            true
        }
    };
    let image = sys.crash();
    let (mut sys2, report) = System::recover(image, scenario.config(), |r| scenario.programs(r))
        .map_err(|e| format!("recovery failed: {e:?}"))?;
    scenario.reattach(&mut sys2, &mut st);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.manager()
        .verify_checkpoint()
        .map_err(|e| format!("verify_checkpoint after restore: {e}"))?;
    scenario.verify(&mut sys2, &mut st, &report)?;
    Ok(CrashRun { crashed, report })
}

impl System {
    /// Convenience entry point for [`run_with_crash_schedule`]: runs one
    /// scenario to the scheduled crash point, recovers, and verifies.
    ///
    /// An associated function (not a method) because the scenario's
    /// system is consumed by the simulated power failure mid-run.
    pub fn run_with_crash_schedule<S: CrashScenario>(
        scenario: &S,
        point: Option<CrashPoint>,
    ) -> Result<CrashRun, String> {
        run_with_crash_schedule(scenario, point)
    }
}

/// Dry-runs `scenario` (no crash) to measure the workload phase, returning
/// its NVM write count and crash-site trace.
pub fn measure<S: CrashScenario>(scenario: &S) -> (u64, Vec<SiteHit>) {
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    let sched = std::sync::Arc::clone(sys.kernel().pers.dev.crash_schedule());
    let before = sched.counts().total();
    sched.start_trace();
    scenario.workload(&mut sys, &mut st);
    let sites = sched.take_trace();
    let writes = sched.counts().total() - before;
    (writes, sites)
}

/// Exhaustively replays `scenario`, crashing at every `stride`-th NVM
/// write index of the workload phase (`stride == 1` covers every single
/// write — the acceptance mode; CI smoke jobs pass a larger stride).
pub fn enumerate_crashes<S: CrashScenario>(scenario: &S, stride: u64) -> EnumerationReport {
    assert!(stride >= 1, "stride must be at least 1");
    let (writes, sites) = measure(scenario);
    let mut report =
        EnumerationReport { writes, sites, ..Default::default() };
    let mut i = 1;
    while i <= writes {
        report.runs += 1;
        match run_with_crash_schedule(scenario, Some(CrashPoint::AnyWrite(i - 1))) {
            Ok(r) => {
                if r.crashed {
                    report.injected += 1;
                }
            }
            Err(e) => report.failures.push((format!("write {i}/{writes}"), e)),
        }
        i += stride;
    }
    report
}

/// Replays `scenario`, crashing at every occurrence of every named crash
/// site the clean run traverses (`crash_site!` markers across the
/// checkpoint manager, allocator journal, persistence commit, and ring
/// callbacks).
pub fn enumerate_site_crashes<S: CrashScenario>(scenario: &S) -> EnumerationReport {
    let (writes, sites) = measure(scenario);
    let mut occurrences: HashMap<&'static str, u64> = HashMap::new();
    for hit in &sites {
        *occurrences.entry(hit.name).or_default() += 1;
    }
    let mut names: Vec<_> = occurrences.into_iter().collect();
    names.sort();
    let mut report =
        EnumerationReport { writes, sites, ..Default::default() };
    for (name, count) in names {
        for skip in 0..count {
            report.runs += 1;
            let point = CrashPoint::Site { name: name.to_string(), skip };
            match run_with_crash_schedule(scenario, Some(point)) {
                Ok(r) => {
                    if r.crashed {
                        report.injected += 1;
                    }
                }
                Err(e) => report.failures.push((format!("site {name}#{skip}"), e)),
            }
        }
    }
    report
}
