//! A transparently persistent key-value server.
//!
//! The scenario from the paper's introduction: an in-memory cache server
//! (memcached-style) that gains durability with **zero persistence code**
//! simply by running on TreeSLS. External clients talk to it through the
//! machine-local network port; every acknowledged write survives power
//! failures.
//!
//! ```sh
//! cargo run --release --example persistent_kv
//! ```

use std::time::Duration;

use treesls::{System, SystemConfig};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};

fn main() {
    let mut config = SystemConfig::small();
    config.kernel.nvm_frames = 65_536; // 256 MiB emulated NVM
    config.checkpoint_interval = Some(Duration::from_millis(1));
    let mut sys = System::boot(config);

    // One command deploys a 2-shard KV server behind ring buffers.
    let dep = deploy_kv(&sys, 2, 4096, 256, false, ShardGeometry::default());
    sys.start();

    println!("KV server up: 2 shards, 1 ms whole-system checkpoints");
    let t0 = std::time::Instant::now();
    let n = 5_000u64;
    for i in 0..n {
        let op = KvOp::Set {
            key: make_key(format!("user:{i}").as_bytes()),
            value: format!("profile-data-{i}").into_bytes(),
        };
        // The user id doubles as the flow id: the NIC's RSS hash steers
        // each user to a fixed shard.
        let resp = dep
            .nic
            .call(i, &op.encode(), Duration::from_secs(5))
            .expect("ring")
            .reply()
            .expect("response");
        assert!(matches!(KvResp::decode(&resp), Some(KvResp::Ok(None))));
    }
    let dt = t0.elapsed();
    println!(
        "stored {n} keys in {dt:?} ({:.0} ops/s), every one covered by a checkpoint within 1 ms",
        n as f64 / dt.as_secs_f64()
    );

    // Read a few back.
    for i in [0u64, 777, 4999] {
        let op = KvOp::Get { key: make_key(format!("user:{i}").as_bytes()) };
        let resp = dep
            .nic
            .call(i, &op.encode(), Duration::from_secs(5))
            .expect("ring")
            .reply()
            .expect("response");
        match KvResp::decode(&resp) {
            Some(KvResp::Ok(Some(v))) => {
                println!("user:{i} -> {}", String::from_utf8_lossy(&v));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    println!(
        "checkpoints taken: {}",
        sys.kernel().pers.global_version()
    );
    sys.stop();
}
