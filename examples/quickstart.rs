//! Quickstart: boot a TreeSLS machine, run a program under millisecond
//! checkpointing, pull the plug, and watch it recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use treesls::{
    ProcessSpec, Program, StepOutcome, System, SystemConfig, ThreadSpec, UserCtx,
};

/// A program that appends squares to an in-memory log: slot `i` receives
/// `i*i`. All of its state is process memory plus one register.
struct Squares;

impl Program for Squares {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let i = ctx.reg(1);
        if i >= 10_000 {
            return StepOutcome::Exited;
        }
        ctx.write_u64(8 * i, i * i).unwrap();
        ctx.set_reg(1, i + 1);
        StepOutcome::Ready
    }
}

fn main() {
    // Boot with 1 ms whole-system checkpoints — the paper's headline rate.
    let mut config = SystemConfig::small();
    config.checkpoint_interval = Some(Duration::from_millis(1));
    let mut sys = System::boot(config.clone());
    sys.register_program("squares", Arc::new(Squares));
    let proc = sys
        .spawn(&ProcessSpec::new("quickstart").heap(32).thread(ThreadSpec::new("squares")))
        .expect("spawn");

    sys.start();
    // Let it run mid-way, then simulate a power failure.
    std::thread::sleep(Duration::from_millis(30));
    sys.stop();
    let mut buf = [0u8; 8];
    sys.read_mem(proc.vmspace, 0, &mut buf).unwrap();
    println!("before crash: version={}", sys.kernel().pers.global_version());

    let image = sys.crash();
    println!("power failure! recovering from NVM ...");
    let (mut sys, report) =
        System::recover(image, config, |r| r.register("squares", Arc::new(Squares)))
            .expect("recover");
    println!(
        "recovered to checkpoint {} in {:?} ({} objects, {} pages)",
        report.version, report.duration, report.objects, report.pages
    );

    // The program resumes exactly where the last checkpoint left it.
    sys.start();
    let threads: Vec<_> = {
        let k = sys.kernel();
        let objects = k.objects.read();
        let ids = objects
            .iter()
            .filter(|(_, o)| o.otype == treesls::ObjType::Thread)
            .map(|(id, _)| id)
            .collect();
        drop(objects);
        ids
    };
    assert!(sys.join_threads(&threads, Duration::from_secs(30)));
    sys.stop();

    // Verify every square is correct.
    let vs = {
        let k = sys.kernel();
        let objects = k.objects.read();
        let id = objects
            .iter()
            .find(|(_, o)| o.otype == treesls::ObjType::VmSpace)
            .map(|(id, _)| id)
            .expect("vmspace");
        drop(objects);
        id
    };
    for i in [0u64, 1, 99, 1234, 9999] {
        let mut b = [0u8; 8];
        sys.read_mem(vs, 8 * i, &mut b).unwrap();
        assert_eq!(u64::from_le_bytes(b), i * i, "slot {i}");
    }
    println!("all 10,000 squares verified after crash + recovery ✓");
}
