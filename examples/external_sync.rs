//! External synchrony in action (§5 of the paper).
//!
//! Shows the `visible_writer` discipline live: with external synchrony on,
//! a client's acknowledged write is *guaranteed* checkpointed — crash the
//! machine right after the acknowledgement and the data is always there.
//! With it off, an acknowledgement races the checkpoint and the write can
//! vanish.
//!
//! ```sh
//! cargo run --release --example external_sync
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls::{Program, System, SystemConfig};
use treesls_apps::wire::{make_key, KvOp};
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};

fn config() -> SystemConfig {
    let mut c = SystemConfig::small();
    c.kernel.nvm_frames = 65_536;
    c.checkpoint_interval = Some(Duration::from_millis(1));
    c
}

fn main() {
    let mut sys = System::boot(config());
    let dep = deploy_kv(&sys, 1, 1024, 128, /* ext_sync = */ true, ShardGeometry::default());
    sys.start();
    let nic = &dep.nic;

    // Measure the ext-sync latency: roughly one checkpoint interval.
    let mut worst = Duration::ZERO;
    let mut sum = Duration::ZERO;
    let n = 200;
    for i in 0..n {
        let op = KvOp::Set {
            key: make_key(format!("k{i}").as_bytes()),
            value: b"v".to_vec(),
        };
        let t0 = Instant::now();
        nic.call(i as u64, &op.encode(), Duration::from_secs(5))
            .unwrap()
            .reply()
            .expect("ack");
        let dt = t0.elapsed();
        sum += dt;
        worst = worst.max(dt);
    }
    println!(
        "{n} externally synchronized SETs: mean {:?}, worst {:?} (≈ checkpoint interval)",
        sum / n, worst
    );

    // The acknowledgement is a durability receipt: crash now and verify.
    let op = KvOp::Set { key: make_key(b"receipt"), value: b"durable".to_vec() };
    nic.call(0, &op.encode(), Duration::from_secs(5)).unwrap().reply().expect("ack");
    println!("SET 'receipt' acknowledged — pulling the plug NOW");
    sys.stop();
    let programs: Vec<(String, Arc<dyn Program>)> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|name| sys.programs().get(&name).map(|p| (name, p)))
        .collect();
    let image = sys.crash();
    let (sys2, report) = System::recover(image, config(), move |r| {
        for (n, p) in programs {
            r.register(&n, p);
        }
    })
    .expect("recover");
    println!("recovered to version {}", report.version);

    // Look the value up directly in the restored server's memory.
    let vs = {
        let k = sys2.kernel();
        let objects = k.objects.read();
        let id = objects
            .iter()
            .filter(|(_, o)| o.otype == treesls::ObjType::VmSpace)
            .map(|(id, _)| id)
            .find(|&id| {
                let o = k.object(id).unwrap();
                let body = o.body.read();
                let yes = matches!(&*body,
                    treesls_kernel::object::ObjectBody::VmSpace(v) if v.regions.len() >= 2);
                drop(body);
                yes
            })
            .expect("server vmspace");
        drop(objects);
        id
    };
    let io = treesls::extsync::HostIo::new(Arc::clone(sys2.kernel()), vs);
    let table = treesls_apps::hashkv::HashKv::attach(&io, 0).expect("restored table");
    let v = table.get(&io, &make_key(b"receipt")).unwrap();
    assert_eq!(v, Some(b"durable".to_vec()), "acknowledged write was lost!");
    println!("'receipt' = 'durable' survived the crash — external synchrony held ✓");
}
