//! Crash-loop torture: a bank-transfer workload crash-looped five times.
//!
//! Demonstrates whole-system consistency: transfers move money between two
//! accounts whose invariant (constant total) must hold at *every* recovery
//! point, no matter when the power fails — the paper's promise that a
//! restored system is always a consistent checkpoint image, never a torn
//! intermediate state.
//!
//! Each recovery prints its [`RecoveryReport`] — the integrity evidence of
//! the torn-write/media-fault model (checksummed commit records, per-page
//! CRCs, journal-tail truncation). The final round tears the newest commit
//! record on purpose to show a *degraded* recovery: the system falls back
//! one generation and says so, instead of serving a torn checkpoint.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::sync::Arc;
use std::time::Duration;

use treesls::{
    ProcessSpec, Program, ProgramRegistry, RecoveryReport, StepOutcome, System, SystemConfig,
    ThreadSpec, UserCtx,
};
use treesls_kernel::kernel::global_meta;

const TOTAL: u64 = 1_000_000;
const ACCT_A: u64 = 0;
const ACCT_B: u64 = 8;
const TRANSFERS_DONE: u64 = 16;

/// Moves a pseudo-random amount between two accounts each step.
///
/// Both balances are updated within one step — one syscall-boundary span —
/// so every checkpoint (and hence every recovery point) sees the invariant
/// intact. The same discipline a real application needs on real TreeSLS:
/// multi-word invariants must not straddle a kernel entry while
/// intermediate.
struct Bank;

impl Program for Bank {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        if ctx.pc() == 0 {
            ctx.write_u64(ACCT_A, TOTAL).unwrap();
            ctx.write_u64(ACCT_B, 0).unwrap();
            ctx.write_u64(TRANSFERS_DONE, 0).unwrap();
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let done = ctx.read_u64(TRANSFERS_DONE).unwrap();
        if done >= 300_000 {
            return StepOutcome::Exited;
        }
        let rng = treesls_apps::server::xorshift64(ctx.reg(3).max(1));
        ctx.set_reg(3, rng);
        let a = ctx.read_u64(ACCT_A).unwrap();
        let b = ctx.read_u64(ACCT_B).unwrap();
        let amount = rng % 1000;
        let (na, nb) = if rng.is_multiple_of(2) && a >= amount {
            (a - amount, b + amount)
        } else if b >= amount {
            (a + amount, b - amount)
        } else {
            (a, b)
        };
        ctx.write_u64(ACCT_A, na).unwrap();
        ctx.write_u64(ACCT_B, nb).unwrap();
        ctx.write_u64(TRANSFERS_DONE, done + 1).unwrap();
        StepOutcome::Ready
    }
}

fn register(r: &ProgramRegistry) {
    r.register("bank", Arc::new(Bank));
}

fn config() -> SystemConfig {
    let mut c = SystemConfig::small();
    c.checkpoint_interval = Some(Duration::from_millis(1));
    c
}

/// One line of integrity evidence: what recovery verified, what it had to
/// fall back on, and what it refused to serve.
fn describe(r: &RecoveryReport) -> String {
    if r.is_clean() {
        format!("clean ({} page images verified)", r.pages_verified)
    } else {
        format!(
            "DEGRADED: commit fell back={}, invalid slots={}, pages verified={}, \
             pages fell back={}, quarantined={}, journal records truncated={}",
            r.commit.fell_back,
            r.commit.invalid_slots,
            r.pages_verified,
            r.pages_fell_back,
            r.quarantined.len(),
            r.journal_records_truncated
        )
    }
}

/// Reads the two balances and the transfer counter from the restored heap.
fn read_accounts(sys: &System) -> (u64, u64, u64) {
    let vs = {
        let k = sys.kernel();
        let objects = k.objects.read();
        let id = objects
            .iter()
            .find(|(_, o)| o.otype == treesls::ObjType::VmSpace)
            .map(|(id, _)| id)
            .expect("vmspace");
        drop(objects);
        id
    };
    let mut buf = [0u8; 24];
    sys.read_mem(vs, 0, &mut buf).unwrap();
    let a = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    let b = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let done = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    (a, b, done)
}

fn main() {
    let mut sys = System::boot(config());
    register(sys.programs());
    sys.spawn(&ProcessSpec::new("bank").heap(4).thread(ThreadSpec::new("bank"))).unwrap();

    for round in 1..=5 {
        sys.start();
        std::thread::sleep(Duration::from_millis(50));
        sys.stop();
        let image = sys.crash();
        let (s2, report) = System::recover(image, config(), register).expect("recover");
        sys = s2;
        // Check the invariant at the recovery point.
        let (a, b, done) = read_accounts(&sys);
        assert_eq!(a + b, TOTAL, "invariant broken at recovery!");
        println!(
            "crash {round}: recovered to version {} — {done} transfers, A={a} B={b}, A+B={} ✓",
            report.version,
            a + b
        );
        println!("         integrity: {}", describe(&report.recovery));
    }

    // A periodic scrub pass proves the media still matches every stored
    // checksum before the next recovery has to depend on it.
    let scrub = sys.manager().scrub();
    println!(
        "scrub: {} images verified, {} corrupt, {} invalid commit slots",
        scrub.pages_scanned,
        scrub.corrupt_pages.len(),
        scrub.invalid_commit_slots
    );
    assert!(scrub.is_clean());

    // Final round: tear the newest commit record (a torn-write/media
    // fault at the recovery anchor). Recovery must fall back to the
    // previous generation — with the invariant intact — and report the
    // degradation instead of hiding it.
    let before = sys.kernel().pers.global_version();
    let image = sys.crash();
    image.dev.flip_meta_bit(global_meta::slot_off(before) + global_meta::REC_VERSION, 0);
    let (sys, report) = System::recover(image, config(), register).expect("degraded recover");
    let (a, b, done) = read_accounts(&sys);
    assert_eq!(a + b, TOTAL, "invariant broken after torn commit!");
    assert!(report.recovery.commit.fell_back);
    assert_eq!(report.version, before - 1);
    println!(
        "torn commit: v{before} record corrupted → recovered to version {} — \
         {done} transfers, A+B={} ✓",
        report.version,
        a + b
    );
    println!("         integrity: {}", describe(&report.recovery));
    println!("invariant held across 5 power failures and one torn commit record");
}
