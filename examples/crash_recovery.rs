//! Crash-loop torture: a bank-transfer workload crash-looped five times.
//!
//! Demonstrates whole-system consistency: transfers move money between two
//! accounts whose invariant (constant total) must hold at *every* recovery
//! point, no matter when the power fails — the paper's promise that a
//! restored system is always a consistent checkpoint image, never a torn
//! intermediate state.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::sync::Arc;
use std::time::Duration;

use treesls::{
    ProcessSpec, Program, ProgramRegistry, StepOutcome, System, SystemConfig, ThreadSpec, UserCtx,
};

const TOTAL: u64 = 1_000_000;
const ACCT_A: u64 = 0;
const ACCT_B: u64 = 8;
const TRANSFERS_DONE: u64 = 16;

/// Moves a pseudo-random amount between two accounts each step.
///
/// Both balances are updated within one step — one syscall-boundary span —
/// so every checkpoint (and hence every recovery point) sees the invariant
/// intact. The same discipline a real application needs on real TreeSLS:
/// multi-word invariants must not straddle a kernel entry while
/// intermediate.
struct Bank;

impl Program for Bank {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        if ctx.pc() == 0 {
            ctx.write_u64(ACCT_A, TOTAL).unwrap();
            ctx.write_u64(ACCT_B, 0).unwrap();
            ctx.write_u64(TRANSFERS_DONE, 0).unwrap();
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let done = ctx.read_u64(TRANSFERS_DONE).unwrap();
        if done >= 300_000 {
            return StepOutcome::Exited;
        }
        let rng = treesls_apps::server::xorshift64(ctx.reg(3).max(1));
        ctx.set_reg(3, rng);
        let a = ctx.read_u64(ACCT_A).unwrap();
        let b = ctx.read_u64(ACCT_B).unwrap();
        let amount = rng % 1000;
        let (na, nb) = if rng % 2 == 0 && a >= amount {
            (a - amount, b + amount)
        } else if b >= amount {
            (a + amount, b - amount)
        } else {
            (a, b)
        };
        ctx.write_u64(ACCT_A, na).unwrap();
        ctx.write_u64(ACCT_B, nb).unwrap();
        ctx.write_u64(TRANSFERS_DONE, done + 1).unwrap();
        StepOutcome::Ready
    }
}

fn register(r: &ProgramRegistry) {
    r.register("bank", Arc::new(Bank));
}

fn config() -> SystemConfig {
    let mut c = SystemConfig::small();
    c.checkpoint_interval = Some(Duration::from_millis(1));
    c
}

fn main() {
    let mut sys = System::boot(config());
    register(sys.programs());
    sys.spawn(&ProcessSpec::new("bank").heap(4).thread(ThreadSpec::new("bank"))).unwrap();

    for round in 1..=5 {
        sys.start();
        std::thread::sleep(Duration::from_millis(50));
        sys.stop();
        let image = sys.crash();
        let (s2, report) = System::recover(image, config(), register).expect("recover");
        sys = s2;
        // Check the invariant at the recovery point.
        let vs = {
            let k = sys.kernel();
            let objects = k.objects.read();
            let id = objects
                .iter()
                .find(|(_, o)| o.otype == treesls::ObjType::VmSpace)
                .map(|(id, _)| id)
                .expect("vmspace");
            drop(objects);
            id
        };
        let mut buf = [0u8; 24];
        sys.read_mem(vs, 0, &mut buf).unwrap();
        let a = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let b = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let done = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        assert_eq!(a + b, TOTAL, "invariant broken at recovery!");
        println!(
            "crash {round}: recovered to version {} — {done} transfers, A={a} B={b}, A+B={} ✓",
            report.version,
            a + b
        );
    }
    println!("invariant held across 5 power failures");
}
