//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external crates it uses are vendored as minimal shims. Only
//! the surface actually used by the TreeSLS crates is provided:
//!
//! * [`Mutex`] / [`MutexGuard`] — `new`, `lock`, `try_lock`, `into_inner`
//! * [`RwLock`] with [`RwLockReadGuard`] / [`RwLockWriteGuard`]
//! * [`Condvar`] — `wait_for`, `notify_one`, `notify_all`
//!
//! Semantics match parking_lot where it differs from std: locks are **not**
//! poisoned by panics (a thread that panicked while holding a guard simply
//! releases it). That behaviour is load-bearing for the crash-injection
//! harness, which unwinds out of checkpoint code while locks are held and
//! then discards the volatile state anyway.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock that ignores poisoning, like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Attempts to acquire the lock without blocking; `None` if contended.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait_for`] can
/// temporarily take it (std's `wait_timeout` consumes the guard by value).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock that ignores poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Outcome of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard's
    /// mutex while waiting.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_is_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
