//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Provides just enough for `benches/micro.rs` to compile and produce
//! useful timings without registry access: [`Criterion`] with the builder
//! knobs the workspace uses, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple mean over timed batches — no outlier analysis, no HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), config: self.clone() };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Per-benchmark measurement context.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    config: Criterion,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_end = Instant::now() + self.config.warm_up_time;
        let iters_per_sample;
        loop {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed().max(Duration::from_nanos(1));
            if Instant::now() >= warm_end {
                // Aim each sample at ~1/sample_size of the measurement window.
                let per_sample =
                    self.config.measurement_time / (self.config.sample_size as u32);
                iters_per_sample =
                    (per_sample.as_nanos() / dt.as_nanos()).clamp(1, 1 << 20) as u64;
                break;
            }
        }
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / (iters_per_sample as u32));
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / (self.samples.len() as u32);
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{name:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function (subset: the `name/config/targets`
/// form only).
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }
}
