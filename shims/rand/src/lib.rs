//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! Provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen` (for
//! `f64`/`u32`/`u64`/`bool`) and `gen_range` over integer ranges. The
//! generator is xoshiro256**-style (xorshift128+ with a splitmix64 seeder):
//! statistically fine for workload generation and property tests, not for
//! cryptography.

/// Seeding support (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a deterministically seeded generator.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible uniformly from one 64-bit draw (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Maps a uniform `u64` onto `Self`.
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

impl Standard for f64 {
    fn from_u64(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Picks a value in `[lo, hi)` from one uniform draw.
    fn sample_range(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((bits as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// Samples uniformly from the half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self.next_u64(), range.start, range.end)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic non-cryptographic generator (xorshift128+).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s0 = splitmix64(&mut sm);
            let mut s1 = splitmix64(&mut sm);
            if s0 == 0 && s1 == 0 {
                s1 = 1;
            }
            StdRng { s0, s1 }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

/// Everything a typical `use rand::prelude::*` expects.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = r.gen_range(0..3);
            seen[v as usize] = true;
            let u = r.gen_range(10u64..20);
            assert!((10..20).contains(&u));
            let s = r.gen_range(0usize..5);
            assert!(s < 5);
        }
        assert!(seen.iter().all(|&b| b), "all of 0..3 reachable");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = StdRng::seed_from_u64(1);
        assert!(draw(&mut r) < 100);
    }
}
