//! The deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro.

/// Configuration for a property test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected as uninteresting (does not fail the test).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// The deterministic RNG handed to strategies.
///
/// Seeded from the test name and case index, so a failure message's
/// `(name, case)` pair is enough to reproduce the exact inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed ^ 0x5DEE_CE66_D1CE_CAFE }
    }

    /// Returns the next 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Runs the configured number of cases for one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Self { config, name }
    }

    /// Runs `f` once per case, panicking on the first `Fail`.
    ///
    /// `Reject` outcomes are skipped without counting against the property
    /// (but do consume a case slot, unlike real proptest — good enough for
    /// this workspace, which never rejects).
    pub fn run<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(self.name);
        for case in 0..self.config.cases {
            let mut rng = TestRng::from_seed(base ^ (case as u64).wrapping_mul(0x9E37_79B9));
            match f(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{}' failed at case {case}/{}: {msg} \
                         (deterministic; re-run reproduces this case)",
                        self.name, self.config.cases
                    );
                }
            }
        }
    }
}
