//! The [`Strategy`] trait and primitive strategy combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type from a deterministic RNG.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// returns the value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous collections
    /// (e.g. [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { generate: Box::new(move |rng| self.generate(rng)) }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_usize(0, self.options.len());
        self.options[i].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("options", &self.options.len()).finish()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as $t;
                self.start.wrapping_add(off)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
