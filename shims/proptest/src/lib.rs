//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds in environments without crates.io access, so this
//! shim provides the slice of proptest the test suites use: the
//! [`proptest!`] macro, strategies over integer ranges / tuples / `Just` /
//! [`collection::vec`] / [`option::of`] / [`any`], `prop_map`,
//! [`prop_oneof!`], the `prop_assert*` macros, [`ProptestConfig`](test_runner::ProptestConfig), and
//! [`TestCaseError`](test_runner::TestCaseError).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its seed and case index
//!   instead of a minimized input. Re-running the test reproduces it
//!   (generation is deterministic per test name + case index).
//! * Uniform generation only; no bias toward boundary values.

pub mod strategy;
pub mod test_runner;

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `len` and elements
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_usize(self.len.start, self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for generating `Option`s.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` or `Some` of the inner strategy's value.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(inner)` about three quarters of the time, `None`
    /// otherwise (mirrors proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value from raw randomness.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy for [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts two expressions are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`", left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b, c) in (0u8..5, 10u64..20, any::<u32>())) {
            prop_assert!(a < 5);
            prop_assert!((10..20).contains(&b));
            let _ = c;
        }

        #[test]
        fn vec_and_option(
            v in crate::collection::vec(0u64..100, 1..50),
            o in crate::option::of(0u64..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 100));
            if let Some(x) = o {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u8..3).prop_map(|v| v as u64),
            Just(99u64),
        ]) {
            prop_assert!(x < 3 || x == 99, "unexpected {}", x);
        }
    }

    #[test]
    fn failing_case_reports_instead_of_succeeding() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4), "always_fails");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.run(|_rng| Err(TestCaseError::fail("boom")))
        }));
        assert!(r.is_err(), "failing property must panic the test");
    }

    #[test]
    fn deterministic_generation_per_name() {
        use crate::strategy::Strategy;
        let gen_all = || {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "det");
            let mut out = Vec::new();
            runner.run(|rng| {
                out.push((0u64..1 << 40).generate(rng));
                Ok(())
            });
            out
        };
        assert_eq!(gen_all(), gen_all());
    }
}
